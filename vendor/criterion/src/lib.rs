//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io. This crate keeps the
//! criterion macro/API surface the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — and measures
//! with a plain calibrated wall-clock loop: run the closure until ~100 ms
//! elapse, report mean ns/iteration. No statistics, no HTML reports; good
//! enough to spot order-of-magnitude regressions in the simulator's hot
//! structures.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark.
const TARGET: Duration = Duration::from_millis(100);

/// The benchmark driver handed to each registered function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Runs one timed closure.
#[derive(Debug, Default)]
pub struct Bencher {
    last: Option<Duration>,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count to the target window,
    /// then records the mean time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) -> Duration {
        // Calibration: double the batch until it takes ≥ 1% of the window.
        let mut batch = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET / 100 || batch >= 1 << 30 {
                break elapsed / (batch as u32).max(1);
            }
            batch *= 2;
        };
        // Measurement: as many batches as fit the window.
        let runs = (TARGET.as_nanos() / per_iter.as_nanos().max(1)) as u64 / batch.max(1);
        let runs = runs.clamp(1, 1 << 30);
        let t = Instant::now();
        for _ in 0..runs * batch {
            black_box(f());
        }
        // Mean via f64 nanos, floored at 1 ns: integer Duration division
        // truncates sub-nanosecond means to zero (a release-mode closure
        // can be cheaper than 1 ns), and a 0 ns report reads as "not
        // measured" rather than "very fast".
        let iters = (runs * batch).max(1);
        let mean_ns = (t.elapsed().as_nanos() as f64 / iters as f64).max(1.0);
        let mean = Duration::from_nanos(mean_ns.ceil() as u64);
        self.last = Some(mean);
        mean
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        match b.last {
            Some(d) => println!("{id:<40} {:>12.1} ns/iter", d.as_nanos() as f64),
            None => println!("{id:<40} (no measurement)"),
        }
        self
    }

    /// Starts a named group (sample-size knobs are accepted and ignored).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { c: self }
    }
}

/// A benchmark group (flat in this stand-in).
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and runs one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        self.c.bench_function(id.as_ref(), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Groups benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        // black_box on the bound keeps release builds from const-folding
        // the whole closure to a sub-nanosecond constant.
        let d = b.iter(|| (0..black_box(1000u64)).sum::<u64>());
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn sub_nanosecond_closures_still_report_nonzero() {
        let mut b = Bencher::default();
        // Even a closure release mode folds to a constant must not report
        // a 0 ns mean.
        let d = b.iter(|| 1u64 + 1);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = false;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("x", |b| {
            b.iter(|| 2 * 2);
        });
        g.finish();
    }
}
