//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and nothing in this
//! workspace actually serializes through serde — the derives exist so the
//! public types keep the conventional API shape. This crate provides the
//! `Serialize`/`Deserialize` names in both the macro namespace (no-op
//! derives from the sibling `serde_derive` stub) and the trait namespace,
//! so `use serde::{Deserialize, Serialize}` behaves as with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never used as a bound here).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (never used as a bound here).
pub trait Deserialize<'de> {}
