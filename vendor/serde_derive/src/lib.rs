//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its value types for
//! API compatibility, but never serializes through serde (reports are
//! rendered by hand). The build environment has no access to crates.io, so
//! these derive macros accept the same syntax and emit no code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
