//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io. This crate reimplements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute) generating `#[test]` functions that run the body over
//!   `cases` deterministic random inputs;
//! * strategies: half-open integer ranges, tuples of strategies,
//!   [`collection::vec`], [`num::u64::ANY`], [`option::of`];
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from real proptest: inputs are drawn from a fixed-seed PRNG
//! (seeded from the test name, so every run and every machine sees the same
//! cases) and failing cases are not shrunk — the failing input is in the
//! panic message instead.

/// Deterministic input source for generated test cases.
pub mod rng {
    /// SplitMix64 — plenty for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from the test name (stable across runs).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// The strategy abstraction: something that can generate a value.
pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::Range;

    /// A generator of test inputs.
    pub trait Strategy {
        /// The generated input type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u128) - (self.start as u128);
                    assert!(span > 0, "empty range strategy");
                    let off = ((rng.next_u64() as u128 * span) >> 64) as u64;
                    self.start + off as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

/// Collection strategies.
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Whole-domain numeric strategies.
pub mod num {
    /// Strategies over `u64`.
    pub mod u64 {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;

        /// The full-domain `u64` strategy type.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Any `u64` whatsoever.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;
            fn generate(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy yielding `None` 25% of the time, `Some(inner)` otherwise.
    #[derive(Clone, Debug)]
    pub struct OfStrategy<S> {
        inner: S,
    }

    /// An optional value drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// How the generated `#[test]` runs its cases.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __dbg = format!(concat!($("  ", stringify!($arg), " = {:?}\n"),+), $(&$arg),+);
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {}/{} failed with inputs:\n{}",
                        __case + 1,
                        __config.cases,
                        __dbg
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (failing input is reported).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::rng::TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::rng::TestRng::from_name("lens");
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..4, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself must expand, loop, and pass arguments through.
        #[allow(clippy::len_zero)]
        fn macro_smoke(x in 0u32..10, v in crate::collection::vec(0usize..3, 0..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len() < 4, true);
            prop_assert_ne!(x, 10);
        }
    }
}
