//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! exactly the subset the workspace uses: [`rngs::SmallRng`] (xoshiro256++,
//! the same algorithm real `rand 0.8` uses on 64-bit targets, seeded with
//! SplitMix64 like `SeedableRng::seed_from_u64`), the [`Rng`] extension
//! methods `gen_range` (half-open integer and float ranges) and `gen_bool`,
//! and the [`SeedableRng`] constructor trait.
//!
//! Determinism is the only contract the simulator relies on: identical
//! seeds yield identical streams on every platform, forever. Statistical
//! quality is inherited from xoshiro256++.

use std::ops::Range;

/// Random number generators.
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as recommended by the xoshiro authors (and done by real rand).
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        rngs::SmallRng { s }
    }
}

/// Types `gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` using `bits` (a fresh 64-bit word).
    fn from_bits(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_bits(bits: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128);
                debug_assert!(span > 0, "gen_range requires a non-empty range");
                // Widening multiply: maps the 64-bit word onto [0, span)
                // without modulo bias worth caring about at these spans.
                let off = ((bits as u128 * span) >> 64) as u64;
                lo + off as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn from_bits(bits: u64, lo: Self, hi: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

/// The generator extension methods the workspace uses.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let bits = self.next_u64();
        T::from_bits(bits, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl Rng for rngs::SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
