//! Sharded-serving acceptance tests:
//!
//! * **Shard-map properties** (proptest) — every peer derives the same
//!   owner for the same key whatever its vantage point or flag order;
//!   keys spread over the peer set within loose balance bounds; and
//!   removing one peer reassigns only the keys that peer owned (the
//!   minimal-movement property of rendezvous hashing);
//! * **Two-peer scatter/gather** — a replication + compare sweep submitted
//!   to either peer of a two-peer cluster produces a report and compare
//!   digest **bit-identical** to a standalone server's, with every cell
//!   simulated exactly once cluster-wide (the sum of per-peer cache
//!   misses equals the cell count);
//! * **Owner loss** — killing the peer that owns the compared pair while
//!   the job is in flight degrades to local simulation on the surviving
//!   peer: the job still completes, bit-identical to standalone.

use std::collections::HashMap;
use std::time::Duration;

use malec_serve::client::Client;
use malec_serve::json::{parse, Value};
use malec_serve::server::{ServeOptions, Server, ServerHandle};
use malec_serve::{cache_key, parse_spec, ShardMap};
use proptest::prelude::*;

/// Three config groups, four shared replicate seeds, an explicit compared
/// pair: two ownership clusters (the pair routes as one, `Base2ld1st` as a
/// singleton), twelve cells.
const SHARD_SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
     [sweep]\nconfigs = [\"Base1ldst\", \"Base2ld1st\", \"MALEC\"]\ninsts = 2000\nseed = 5\nseeds = 4\n\
     [compare]\nbaseline = \"Base1ldst\"\ncandidate = \"MALEC\"\n";

fn serve(opts: ServeOptions) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", opts)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// The per-cell content of a report — everything except timing.
fn report_cells(report: &str) -> String {
    let v = parse(report).expect("report is valid JSON");
    format!("{:?}", v.get("cells").expect("cells array"))
}

/// The content digest of a compare report (excludes paths and timing).
fn compare_digest_of(report: &str) -> String {
    let v = parse(report).expect("compare report is valid JSON");
    v.get("digest")
        .and_then(Value::as_str)
        .expect("digest field")
        .to_owned()
}

/// Runs `SHARD_SPEC` on a standalone server: the ground truth every
/// cluster run must match bit for bit.
fn standalone_reference() -> (String, String) {
    let server = serve(ServeOptions {
        workers: Some(2),
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string());
    let job = client.submit(SHARD_SPEC).expect("submit");
    let view = client.wait(job, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.state, "done");
    assert_eq!(view.cells, 12, "3 configs x 4 replicate seeds");
    let cells = report_cells(&client.report(job).expect("report"));
    let digest = compare_digest_of(&client.compare(job).expect("compare"));
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    (cells, digest)
}

/// Binds two servers on ephemeral ports and installs the same two-address
/// shard map in both (addresses are only known after binding, so this is
/// the programmatic equivalent of `serve --peers A,B` on each).
fn two_peer_cluster() -> (ServerHandle, ServerHandle, String, String) {
    let a = Server::bind_with("127.0.0.1:0", two_worker_opts()).expect("bind a");
    let b = Server::bind_with("127.0.0.1:0", two_worker_opts()).expect("bind b");
    let addr_a = a.local_addr().expect("addr a").to_string();
    let addr_b = b.local_addr().expect("addr b").to_string();
    let peers = [addr_a.clone(), addr_b.clone()];
    a.engine()
        .set_shard(ShardMap::new(peers.clone(), &addr_a).expect("map a"));
    b.engine()
        .set_shard(ShardMap::new(peers, &addr_b).expect("map b"));
    (
        a.spawn().expect("spawn a"),
        b.spawn().expect("spawn b"),
        addr_a,
        addr_b,
    )
}

fn two_worker_opts() -> ServeOptions {
    ServeOptions {
        workers: Some(2),
        ..ServeOptions::default()
    }
}

#[test]
fn two_peer_cluster_matches_standalone_and_simulates_each_cell_once() {
    let (want_cells, want_digest) = standalone_reference();
    let (ha, hb, addr_a, addr_b) = two_peer_cluster();
    let ca = Client::new(addr_a.clone());
    let cb = Client::new(addr_b.clone());

    // Both peers advertise the same sorted peer set.
    let mut expect = vec![addr_a.clone(), addr_b.clone()];
    expect.sort();
    assert_eq!(ca.peers().expect("peers of a"), expect);
    assert_eq!(cb.peers().expect("peers of b"), expect);

    // Submit through peer A: the front door scatters remotely-owned
    // clusters and gathers their cells back.
    let job = ca.submit(SHARD_SPEC).expect("submit via a");
    let view = ca.wait(job, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.state, "done", "{:?}", view.error);
    assert_eq!(view.cells, 12);
    assert_eq!(view.failed, 0);

    let got_cells = report_cells(&ca.report(job).expect("report"));
    assert_eq!(
        got_cells, want_cells,
        "gathered report must be bit-identical"
    );
    let got_digest = compare_digest_of(&ca.compare(job).expect("compare"));
    assert_eq!(
        got_digest, want_digest,
        "compare digest must be bit-identical"
    );

    // Exactly-once simulation cluster-wide: a miss is counted where a
    // simulation starts, so the per-peer miss counts must sum to the cell
    // count — whatever the (deterministic) ownership split was.
    let sa = ca.cache_stats().expect("stats a");
    let sb = cb.cache_stats().expect("stats b");
    assert_eq!(
        sa.misses + sb.misses,
        12,
        "each cell simulated exactly once cluster-wide (a: {}, b: {})",
        sa.misses,
        sb.misses
    );

    // Submitting the identical spec through the *other* peer answers
    // entirely from the cluster's caches: zero new simulations anywhere.
    let again = cb.submit(SHARD_SPEC).expect("submit via b");
    let view = cb
        .wait(again, Duration::from_secs(120))
        .expect("wait again");
    assert_eq!(view.state, "done", "{:?}", view.error);
    assert_eq!(
        view.simulated, 0,
        "resubmission simulates nothing: {view:?}"
    );
    assert_eq!(
        report_cells(&cb.report(again).expect("report via b")),
        want_cells,
        "either front door serves the same bytes"
    );
    let sa = ca.cache_stats().expect("stats a");
    let sb = cb.cache_stats().expect("stats b");
    assert_eq!(sa.misses + sb.misses, 12, "still no duplicate simulations");

    ca.shutdown().expect("shutdown a");
    cb.shutdown().expect("shutdown b");
    ha.join().expect("clean exit a");
    hb.join().expect("clean exit b");
}

#[test]
fn killing_the_pair_owner_mid_job_falls_back_to_local_simulation() {
    let (want_cells, _) = standalone_reference();
    let (ha, hb, addr_a, addr_b) = two_peer_cluster();

    // Work out which peer owns the compared pair's cluster (it routes by
    // the baseline's replicate-0 key) and submit to the *other* one, so
    // the scatter path genuinely crosses the wire before we cut it.
    let spec = parse_spec(SHARD_SPEC).expect("spec");
    let resolved = spec.resolve_compare().expect("resolved pair");
    let route = cache_key(
        &spec.configs[resolved.baseline],
        &spec.scenario,
        spec.insts,
        spec.seed,
        0,
    );
    let map = ShardMap::new([addr_a.clone(), addr_b.clone()], &addr_a).expect("map");
    let owner = map.owner(route).as_str().to_owned();
    let (door, owner_handle, door_handle) = if owner == addr_a {
        (addr_b.clone(), ha, hb)
    } else {
        (addr_a.clone(), hb, ha)
    };

    let client = Client::new(door.clone());
    let job = client.submit(SHARD_SPEC).expect("submit via non-owner");
    // Give the scatter a moment to reach the owner, then kill it. Every
    // window is safe: whether the forward, the wait, or the record fetch
    // dies, the gather thread falls back to simulating locally.
    std::thread::sleep(Duration::from_millis(25));
    malec_serve::http::request(owner.as_str(), "POST", "/v1/shutdown?mode=abort", b"")
        .expect("abort the owner");
    owner_handle.join().expect("owner exits");

    let view = client.wait(job, Duration::from_secs(120)).expect("wait");
    assert_eq!(
        view.state, "done",
        "owner loss must not fail the job: {:?}",
        view.error
    );
    assert_eq!(view.failed, 0);
    assert_eq!(
        report_cells(&client.report(job).expect("report")),
        want_cells,
        "degraded run is still bit-identical to standalone"
    );

    client.shutdown().expect("shutdown survivor");
    door_handle.join().expect("clean exit");
}

/// Deterministic 64-bit mixer (splitmix64) for spreading proptest seeds
/// into well-distributed synthetic cache keys.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn synthetic_key(seed: u64, i: u64) -> u128 {
    (u128::from(mix(seed ^ i)) << 64) | u128::from(mix(i.wrapping_add(seed)))
}

fn peer_set(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:4173")).collect()
}

proptest! {
    /// Same key + same peer set => same owner, from every peer's vantage
    /// point — the property that makes sharding coordination-free.
    #[test]
    fn every_vantage_point_agrees_on_the_owner(seed in 0u64..1_000_000_000, n in 2usize..6) {
        let peers = peer_set(n);
        for i in 0..32 {
            let key = synthetic_key(seed, i);
            let owners: Vec<String> = peers
                .iter()
                .map(|p| {
                    ShardMap::new(peers.clone(), p)
                        .expect("valid set")
                        .owner(key)
                        .as_str()
                        .to_owned()
                })
                .collect();
            prop_assert!(
                owners.windows(2).all(|w| w[0] == w[1]),
                "key {key:032x} got owners {owners:?}"
            );
        }
    }

    /// Ownership spreads over the peer set: over 512 well-mixed keys and 4
    /// peers, every peer owns a sane share (expected 128; the bounds are
    /// ~6 sigma, so a systematic skew fails and statistical noise never
    /// does).
    #[test]
    fn keys_balance_over_the_peer_set(seed in 0u64..1_000_000_000) {
        let peers = peer_set(4);
        let map = ShardMap::new(peers.clone(), &peers[0]).expect("valid set");
        let mut counts: HashMap<String, usize> = HashMap::new();
        for i in 0..512 {
            *counts
                .entry(map.owner(synthetic_key(seed, i)).as_str().to_owned())
                .or_insert(0) += 1;
        }
        for p in &peers {
            let share = counts.get(p).copied().unwrap_or(0);
            prop_assert!(
                (64..=256).contains(&share),
                "peer {p} owns {share}/512 keys: {counts:?}"
            );
        }
    }

    /// Minimal movement: removing one peer reassigns only the keys that
    /// peer owned — every other key keeps its owner. (Read in reverse,
    /// adding a peer steals keys only for itself.)
    #[test]
    fn removing_a_peer_moves_only_its_own_keys(seed in 0u64..1_000_000_000, n in 3usize..6) {
        let peers = peer_set(n);
        let full = ShardMap::new(peers.clone(), &peers[0]).expect("full set");
        let shrunk = ShardMap::new(peers[..n - 1].to_vec(), &peers[0]).expect("shrunk set");
        let removed = &peers[n - 1];
        for i in 0..256 {
            let key = synthetic_key(seed, i);
            let before = full.owner(key).as_str();
            if before != removed {
                prop_assert_eq!(
                    before,
                    shrunk.owner(key).as_str(),
                    "key {:032x} moved although its owner survived", key
                );
            }
        }
    }
}
