//! "Shape" tests: the qualitative results of the paper's evaluation must
//! hold — who wins, by roughly what factor, and where the outliers are.
//! These run a reduced sweep (a representative benchmark subset at a modest
//! instruction budget), so the tolerances are generous; the full-figure
//! benches use the complete suite.

use malec_core::report::geo_mean;
use malec_harness::{all_benchmarks, SimConfig, Simulator, WayDetermination};

const INSTS: u64 = 30_000;
const SEED: u64 = 2013;

fn subset() -> Vec<malec_harness::BenchmarkProfile> {
    let names = [
        "gzip", "mcf", "gap", "twolf", "swim", "mgrid", "art", "equake", "djpeg", "h263dec",
        "mpeg4enc",
    ];
    all_benchmarks()
        .into_iter()
        .filter(|b| names.contains(&b.name))
        .collect()
}

struct Sweep {
    base1: Vec<malec_harness::RunSummary>,
    base2: Vec<malec_harness::RunSummary>,
    malec: Vec<malec_harness::RunSummary>,
}

fn sweep() -> Sweep {
    let benches = subset();
    let run_all = |cfg: SimConfig| -> Vec<malec_harness::RunSummary> {
        benches
            .iter()
            .map(|p| Simulator::new(cfg.clone()).run(p, INSTS, SEED))
            .collect()
    };
    Sweep {
        base1: run_all(SimConfig::base1ldst()),
        base2: run_all(SimConfig::base2ld1st()),
        malec: run_all(SimConfig::malec()),
    }
}

fn norm(
    series: &[malec_harness::RunSummary],
    base: &[malec_harness::RunSummary],
    f: impl Fn(&malec_harness::RunSummary) -> f64,
) -> f64 {
    let ratios: Vec<f64> = series.iter().zip(base).map(|(s, b)| f(s) / f(b)).collect();
    geo_mean(&ratios)
}

#[test]
fn headline_shape_performance_and_energy() {
    let s = sweep();

    // Performance: both MALEC and Base2ld1st clearly beat Base1ldst...
    let t_base2 = norm(&s.base2, &s.base1, |r| r.core.cycles as f64);
    let t_malec = norm(&s.malec, &s.base1, |r| r.core.cycles as f64);
    assert!(t_base2 < 0.95, "Base2 speedup missing: {t_base2}");
    assert!(t_malec < 0.95, "MALEC speedup missing: {t_malec}");
    // ... and MALEC lands within a few percent of Base2ld1st (paper: 1%).
    assert!(
        (t_malec - t_base2).abs() < 0.05,
        "MALEC must track Base2: {t_malec} vs {t_base2}"
    );

    // Energy: Base2 well above, MALEC well below Base1ldst.
    let e_base2 = norm(&s.base2, &s.base1, |r| r.total_energy());
    let e_malec = norm(&s.malec, &s.base1, |r| r.total_energy());
    assert!(
        e_base2 > 1.25,
        "Base2 must pay a big energy premium: {e_base2}"
    );
    assert!(e_malec < 0.90, "MALEC must save energy: {e_malec}");
    // MALEC vs Base2: the paper's headline -48%.
    let rel = e_malec / e_base2;
    assert!(
        rel < 0.65,
        "MALEC should be far below Base2 in energy: {rel}"
    );

    // Dynamic energy ordering: Base2 > Base1 > MALEC.
    let d_base2 = norm(&s.base2, &s.base1, |r| r.energy.dynamic);
    let d_malec = norm(&s.malec, &s.base1, |r| r.energy.dynamic);
    assert!(d_base2 > 1.2, "Base2 dynamic premium: {d_base2}");
    assert!(d_malec < 0.85, "MALEC dynamic saving: {d_malec}");
}

#[test]
fn mcf_is_the_miss_and_speedup_outlier() {
    let benches = subset();
    let s = sweep();
    let idx = |name: &str| {
        benches
            .iter()
            .position(|b| b.name == name)
            .expect("in subset")
    };
    let mcf = idx("mcf");

    // ~7x the average miss rate. The subset deliberately includes the other
    // high-miss benchmarks (art, mgrid), so compare against the median of
    // the rest rather than their mean.
    let rates: Vec<f64> = s.malec.iter().map(|r| r.l1_miss_rate).collect();
    let mut others: Vec<f64> = rates
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != mcf)
        .map(|(_, r)| *r)
        .collect();
    others.sort_by(f64::total_cmp);
    let median_others = others[others.len() / 2];
    assert!(
        rates[mcf] > 3.0 * median_others,
        "mcf must be a big miss outlier: {} vs median {}",
        rates[mcf],
        median_others
    );
    // (mgrid/art may transiently rival mcf at short instruction budgets, so
    // the outlier check is against the median, not the maximum.)

    // Smallest speedup of the subset.
    let speedup = |i: usize| s.base1[i].core.cycles as f64 / s.malec[i].core.cycles as f64;
    let mcf_speedup = speedup(mcf);
    let best = (0..benches.len())
        .filter(|&i| i != mcf)
        .map(speedup)
        .fold(f64::MIN, f64::max);
    assert!(
        mcf_speedup < best - 0.1,
        "mcf speedup {mcf_speedup} should trail the best {best}"
    );
}

#[test]
fn media_decoders_show_the_biggest_gains() {
    let benches = subset();
    let s = sweep();
    let idx = |name: &str| {
        benches
            .iter()
            .position(|b| b.name == name)
            .expect("in subset")
    };
    let speedup = |i: usize| s.base1[i].core.cycles as f64 / s.malec[i].core.cycles as f64;
    // djpeg/h263dec ≈ 30% in the paper; at minimum they must beat the
    // subset's non-media benchmarks.
    let media = speedup(idx("djpeg")).min(speedup(idx("h263dec")));
    for name in ["gzip", "mcf", "swim", "art"] {
        assert!(
            media > speedup(idx(name)),
            "media speedup {media} must exceed {name}'s {}",
            speedup(idx(name))
        );
    }
    assert!(media > 1.2, "djpeg/h263dec should gain >20%: {media}");
}

#[test]
fn way_table_coverage_beats_every_wdu() {
    let p = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "gzip")
        .expect("gzip exists");
    let coverage = |wd: WayDetermination| {
        Simulator::new(SimConfig::malec().with_way_determination(wd))
            .run(&p, INSTS, SEED)
            .interface
            .coverage()
    };
    let wt = coverage(WayDetermination::WayTables);
    let wt_nofb = coverage(WayDetermination::WayTablesNoFeedback);
    let wdu8 = coverage(WayDetermination::Wdu(8));
    let wdu16 = coverage(WayDetermination::Wdu(16));
    let wdu32 = coverage(WayDetermination::Wdu(32));
    assert!(wt > 0.85, "WT coverage should be high: {wt}");
    assert!(wt >= wt_nofb, "feedback can only help: {wt} vs {wt_nofb}");
    assert!(
        wt > wdu32 && wdu32 >= wdu16 && wdu16 >= wdu8,
        "coverage ordering broken: wt={wt} wdu32={wdu32} wdu16={wdu16} wdu8={wdu8}"
    );
}

#[test]
fn mgrid_gets_no_merging_but_equake_does() {
    let benches = subset();
    let s = sweep();
    let idx = |name: &str| {
        benches
            .iter()
            .position(|b| b.name == name)
            .expect("in subset")
    };
    let mgrid = s.malec[idx("mgrid")].interface.merge_ratio();
    let equake = s.malec[idx("equake")].interface.merge_ratio();
    assert!(mgrid < 0.03, "line-stride mgrid must not merge: {mgrid}");
    assert!(equake > 0.2, "equake must merge heavily: {equake}");
}

#[test]
fn merging_is_what_saves_mcf_energy() {
    let p = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "mcf")
        .expect("mcf exists");
    let with = Simulator::new(SimConfig::malec()).run(&p, INSTS, SEED);
    let without = Simulator::new(SimConfig::malec().with_load_merging(false)).run(&p, INSTS, SEED);
    assert!(
        with.energy.dynamic < without.energy.dynamic,
        "merging must save mcf dynamic energy: {} vs {}",
        with.energy.dynamic,
        without.energy.dynamic
    );
}
