//! Fault-tolerance acceptance tests for the `malec-serve` batch service,
//! driven by the deterministic failpoint registry (`malec_serve::fault`):
//!
//! * **Chaos convergence** — the replication sweep spec run under a seeded
//!   fault schedule (a worker panic, a torn cache append, an injected 500)
//!   with a retrying client converges to a report whose per-cell content is
//!   **bit-identical** to a fault-free run of the same spec;
//! * **Crash-safe recovery** — a proptest over arbitrary cache-log damage
//!   (byte flips and truncation within the last three records): recovery
//!   never panics, never serves a corrupt record, and always preserves the
//!   longest valid prefix — both in the in-memory map and on disk;
//! * **Graceful drain** — `POST /v1/shutdown` lets in-flight jobs complete
//!   and flushes the cache log before the process exits (the regression
//!   test for the shutdown bugfix), while `?mode=abort` returns promptly
//!   even with slow cells in flight;
//! * **Bounded job map** — terminal jobs expire once past the retention
//!   count, and expired ids answer 404;
//! * **Warm restart after a crash mid-append** — garbage appended to the
//!   log (a torn final record) is dropped on reopen and every intact
//!   record still serves.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use malec_serve::client::{Client, RetryPolicy};
use malec_serve::fault::Faults;
use malec_serve::http::request;
use malec_serve::json::parse;
use malec_serve::server::{ServeOptions, Server, ServerHandle};
use malec_serve::ResultCache;
use proptest::prelude::*;

/// The multi-seed replication sweep (mirrors
/// `examples/scenarios/replication.toml`): one config, four replicate
/// seeds — four cells.
const REPLICATION_SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
     [sweep]\nconfigs = [\"MALEC\"]\ninsts = 20000\nseed = 2013\nseeds = 4\n";

/// A small two-cell spec for lifecycle tests.
const SMALL_SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"tlb_thrash\"\n\
     [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 1500\nseed = 7\n";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("malec_faults_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn serve(opts: ServeOptions) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", opts)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// The per-cell content of a server report — everything except timing.
fn report_cells(report: &str) -> String {
    let v = parse(report).expect("report is valid JSON");
    format!("{:?}", v.get("cells").expect("cells array"))
}

// ---------------------------------------------------------------------------
// Chaos convergence
// ---------------------------------------------------------------------------

/// The replication sweep under a seeded fault schedule — one worker panic
/// (fails the job), one torn cache append (rolled back in place), one
/// injected HTTP 500 (absorbed by the client's retry policy) — must
/// converge, via idempotent resubmission, to a report bit-identical to a
/// fault-free run. Completed cells are cached across the failure, so the
/// resubmission re-simulates only the panicked cell.
#[test]
fn chaos_schedule_converges_to_the_fault_free_report() {
    // Ground truth: a fault-free server.
    let clean = serve(ServeOptions {
        workers: Some(2),
        ..ServeOptions::default()
    });
    let truth = Client::new(clean.addr().to_string());
    let job = truth.submit(REPLICATION_SPEC).expect("submit");
    let view = truth.wait(job, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.state, "done");
    assert_eq!(view.cells, 4, "1 config x 4 replicate seeds");
    let want = report_cells(&truth.report(job).expect("report"));
    truth.shutdown().expect("shutdown");
    clean.join().expect("clean exit");

    // The same sweep under fire.
    let dir = tmp_dir("chaos");
    let faults = Faults::disarmed();
    faults.arm("worker.panic", 2, None); // the 2nd simulated cell panics
    faults.arm("cache.append.torn", 1, Some(9)); // the 1st append tears mid-record
    faults.arm("http.respond.500", 2, None); // the 2nd HTTP response is damaged
    let server = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(dir.join("results.cache")),
        faults: std::sync::Arc::clone(&faults),
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string()).with_retry(RetryPolicy::retries(3));

    let view = client
        .run_to_completion(REPLICATION_SPEC, Duration::from_secs(120), 3)
        .expect("resubmission rides out the injected faults");
    assert_eq!(view.state, "done");
    assert_eq!(view.pending, 0);
    assert!(
        view.served_without_simulation() >= 3,
        "cells that completed before the panic are reused, not re-run: {view:?}"
    );
    assert_eq!(faults.fired_total(), 3, "every scheduled fault fired");

    // Provenance differs (simulated vs cached); the content may not.
    let got = report_cells(&client.report(view.job).expect("report"));
    assert_eq!(
        got, want,
        "chaos run must be bit-identical to the clean run"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Crash-safe cache recovery (proptest)
// ---------------------------------------------------------------------------

/// A pristine cache log plus its record boundaries, built once: offsets of
/// each record start and the log's total length.
struct PristineLog {
    bytes: Vec<u8>,
    /// Byte offset where each record starts (after the 5-byte header).
    starts: Vec<usize>,
}

fn pristine_log() -> &'static PristineLog {
    static LOG: OnceLock<PristineLog> = OnceLock::new();
    LOG.get_or_init(|| {
        let dir = tmp_dir("pristine");
        let path = dir.join("pristine.cache");
        std::fs::remove_file(&path).ok();
        let server = serve(ServeOptions {
            workers: Some(2),
            cache_path: Some(path.clone()),
            ..ServeOptions::default()
        });
        let client = Client::new(server.addr().to_string());
        let view = client
            .wait(
                client.submit(REPLICATION_SPEC).expect("submit"),
                Duration::from_secs(120),
            )
            .expect("wait");
        assert_eq!(view.state, "done");
        client.shutdown().expect("shutdown"); // drain flushes the log
        server.join().expect("clean exit");

        let bytes = std::fs::read(&path).expect("read log");
        std::fs::remove_dir_all(&dir).ok();

        // Walk the record frames: key u128 | ver u8 | len u32 | sum u64 | body.
        let mut starts = Vec::new();
        let mut off = 5; // magic + version
        while off < bytes.len() {
            starts.push(off);
            let len =
                u32::from_le_bytes(bytes[off + 17..off + 21].try_into().expect("len")) as usize;
            off += 16 + 1 + 4 + 8 + len;
        }
        assert_eq!(off, bytes.len(), "log parses to a whole number of records");
        assert_eq!(starts.len(), 4, "4 replicate cells, 4 records");
        PristineLog { bytes, starts }
    })
}

/// End offset of record `i` (== start of record `i + 1`).
fn record_end(log: &PristineLog, i: usize) -> usize {
    log.starts.get(i + 1).copied().unwrap_or(log.bytes.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary damage confined to the last three records — any number of
    /// single-bit flips plus an optional truncation — must recover the
    /// longest valid prefix: `open` succeeds, loads exactly the records
    /// before the earliest damaged byte, and truncates the file to that
    /// prefix so no corrupt byte survives on disk either.
    #[test]
    fn prop_cache_log_damage_recovers_the_longest_valid_prefix(
        flips in proptest::collection::vec((0usize..3, 0usize..10_000, 0u32..8), 0..4),
        cut in proptest::option::of(0usize..10_000),
    ) {
        let log = pristine_log();
        let n = log.starts.len();
        let window_start = log.starts[n - 3];
        let mut damaged = log.bytes.clone();

        // Earliest damaged offset decides how many records survive.
        let mut first_damage = damaged.len();
        for &(rec, byte, bit) in &flips {
            let rec = n - 3 + rec;
            let (start, end) = (log.starts[rec], record_end(log, rec));
            let off = start + byte % (end - start);
            damaged[off] ^= 1u8 << bit;
            first_damage = first_damage.min(off);
        }
        if let Some(cut) = cut {
            let off = window_start + cut % (damaged.len() - window_start);
            damaged.truncate(off);
            first_damage = first_damage.min(off);
        }
        let expect = log.starts.iter().filter(|&&s| record_end_at(log, s) <= first_damage).count();

        let dir = tmp_dir("prop");
        let path = dir.join("damaged.cache");
        std::fs::write(&path, &damaged).expect("write damaged log");
        let cache = ResultCache::open(&path).expect("recovery must not refuse the log");
        prop_assert_eq!(
            cache.stats().loaded as usize,
            expect,
            "longest valid prefix: damage at byte {}", first_damage
        );
        drop(cache);
        let salvaged = std::fs::read(&path).expect("reread");
        let good_end = log.starts.get(expect).copied().unwrap_or(log.bytes.len());
        prop_assert_eq!(
            salvaged.as_slice(),
            &log.bytes[..good_end],
            "the file is truncated to the pristine prefix — no corrupt byte survives"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// End offset of the record starting at `s`.
fn record_end_at(log: &PristineLog, s: usize) -> usize {
    let i = log
        .starts
        .iter()
        .position(|&x| x == s)
        .expect("a record start");
    record_end(log, i)
}

// ---------------------------------------------------------------------------
// Graceful drain and abort (the shutdown bugfix regression)
// ---------------------------------------------------------------------------

/// `POST /v1/shutdown` must let in-flight jobs complete and flush the
/// cache log before exiting: a cold reopen of the cache sees every cell,
/// and a restarted server serves the resubmission without simulating.
#[test]
fn graceful_drain_completes_inflight_jobs_and_flushes_the_log() {
    let dir = tmp_dir("drain");
    let cache_path = dir.join("results.cache");

    let faults = Faults::disarmed();
    faults.arm("engine.cell.slow", 1, Some(150)); // shutdown races a busy cell
    let server = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(cache_path.clone()),
        faults,
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string());
    client.submit(SMALL_SPEC).expect("submit");
    // No wait: the drain itself must finish the work.
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    let cache = ResultCache::open(&cache_path).expect("reopen");
    assert_eq!(
        cache.stats().loaded,
        2,
        "both cells completed and persisted before exit"
    );
    drop(cache);

    // Restart warm: the same spec costs zero simulations.
    let server = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(cache_path),
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string());
    let view = client
        .wait(
            client.submit(SMALL_SPEC).expect("resubmit"),
            Duration::from_secs(60),
        )
        .expect("wait");
    assert_eq!(view.simulated, 0, "warm restart serves from the log");
    assert_eq!(view.cached, 2);
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

/// `?mode=abort` is the escape hatch: it drops queued work instead of
/// draining it. The cell a worker is *currently* simulating still finishes
/// (workers are joined, never killed), but the queue behind it does not —
/// with one worker and two slow cells, an abort exits after roughly one
/// cell where a drain would wait out both.
#[test]
fn abort_shutdown_skips_the_drain() {
    let faults = Faults::disarmed();
    faults.arm("engine.cell.slow", 1, Some(1_200));
    faults.arm("engine.cell.slow", 2, Some(1_200));
    let server = serve(ServeOptions {
        workers: Some(1),
        faults,
        ..ServeOptions::default()
    });
    let addr = server.addr();
    let client = Client::new(addr.to_string());
    client.submit(SMALL_SPEC).expect("submit");
    std::thread::sleep(Duration::from_millis(50)); // let the worker pick cell 1

    let begin = Instant::now();
    let (status, body) = request(addr, "POST", "/v1/shutdown?mode=abort", b"").expect("abort");
    assert_eq!(status, 200, "{body}");
    server.join().expect("exit");
    assert!(
        begin.elapsed() < Duration::from_secs(2),
        "abort must not drain the queued second cell (took {:?})",
        begin.elapsed()
    );
}

// ---------------------------------------------------------------------------
// Bounded job map
// ---------------------------------------------------------------------------

/// Terminal jobs expire once past the retention count; expired ids answer
/// 404 while the newest jobs still resolve.
#[test]
fn terminal_jobs_expire_and_answer_404() {
    let server = serve(ServeOptions {
        workers: Some(2),
        retain_done: 1,
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string());
    let first = client.submit(SMALL_SPEC).expect("submit");
    client.wait(first, Duration::from_secs(60)).expect("wait");
    let second = client.submit(SMALL_SPEC).expect("resubmit");
    client.wait(second, Duration::from_secs(60)).expect("wait");
    // Submitting a third job sweeps the terminal backlog past the cap.
    let third = client.submit(SMALL_SPEC).expect("third");
    client.wait(third, Duration::from_secs(60)).expect("wait");

    let err = client.status(first).expect_err("first job expired");
    assert!(err.contains("404"), "{err}");
    client.status(third).expect("the newest job still resolves");
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
}

// ---------------------------------------------------------------------------
// Warm restart after a crash mid-append
// ---------------------------------------------------------------------------

/// A crash mid-append leaves a torn final record. Reopening drops exactly
/// the tear and a restarted server still serves every intact record.
#[test]
fn crash_mid_append_recovers_warm_on_restart() {
    let dir = tmp_dir("crash");
    let cache_path = dir.join("results.cache");

    let server = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(cache_path.clone()),
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string());
    let view = client
        .wait(
            client.submit(SMALL_SPEC).expect("submit"),
            Duration::from_secs(60),
        )
        .expect("wait");
    assert_eq!(view.simulated, 2);
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    // The "crash": a record torn off mid-write (a plausible key + length
    // header, body cut short), as `kill -9` mid-append would leave it.
    let intact = std::fs::metadata(&cache_path).expect("meta").len();
    let mut torn = vec![0xABu8; 16]; // key
    torn.push(2); // key-version byte
    torn.extend_from_slice(&400u32.to_le_bytes()); // claims 400 body bytes
    torn.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes()); // sum
    torn.extend_from_slice(&[0x55; 37]); // ...but only 37 arrived
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .append(true)
        .open(&cache_path)
        .expect("open log")
        .write_all(&torn)
        .expect("tear");

    let server = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(cache_path.clone()),
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string());
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.loaded, 2, "every intact record survives the tear");
    let view = client
        .wait(
            client.submit(SMALL_SPEC).expect("resubmit"),
            Duration::from_secs(60),
        )
        .expect("wait");
    assert_eq!(view.simulated, 0, "warm restart after the crash");
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    assert_eq!(
        std::fs::metadata(&cache_path).expect("meta").len(),
        intact,
        "reopen truncated exactly the torn record"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Stall failpoints (http.read.stall, cache.sync.stall)
// ---------------------------------------------------------------------------

/// `http.read.stall` holds a connection handler before it reads the
/// request. The point injects latency, not loss: the stalled request must
/// still be answered correctly, the delay must be visible as wall-clock
/// latency on exactly the armed hit, and later requests ride through.
#[test]
fn read_stall_delays_exactly_one_request_without_dropping_it() {
    let faults = Faults::disarmed();
    faults.arm("http.read.stall", 1, Some(250)); // 1st connection stalls 250ms
    let server = serve(ServeOptions {
        workers: Some(1),
        faults: std::sync::Arc::clone(&faults),
        ..ServeOptions::default()
    });
    let addr = server.addr().to_string();

    let t0 = Instant::now();
    let (status, _) = request(&addr, "GET", "/v1/healthz", b"").expect("stalled request completes");
    assert_eq!(status, 200);
    assert!(
        t0.elapsed() >= Duration::from_millis(250),
        "the armed stall must show up as latency, got {:?}",
        t0.elapsed()
    );

    let (status, _) = request(&addr, "GET", "/v1/healthz", b"").expect("unstalled request");
    assert_eq!(status, 200);
    assert_eq!(faults.fired("http.read.stall"), 1, "one-shot trigger");
    assert!(
        faults.hits("http.read.stall") >= 2,
        "every connection is checked"
    );

    let client = Client::new(addr);
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
}

/// `cache.sync.stall` splits the `/v1/cache/sync` stream into two flushed
/// halves with a delay between them. A peer warming up across the stall
/// must still receive every record intact — the receiver's per-record
/// verification tolerates a slow donor without dropping data.
#[test]
fn sync_stall_slows_the_stream_but_the_peer_warms_completely() {
    let dir = tmp_dir("sync_stall");
    let faults = Faults::disarmed();
    faults.arm("cache.sync.stall", 1, Some(250)); // 1st sync stalls mid-stream
    let donor = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(dir.join("donor.cache")),
        faults: std::sync::Arc::clone(&faults),
        ..ServeOptions::default()
    });
    let donor_client = Client::new(donor.addr().to_string());
    let job = donor_client.submit(SMALL_SPEC).expect("submit");
    let view = donor_client
        .wait(job, Duration::from_secs(60))
        .expect("wait");
    assert_eq!(view.simulated, 2, "donor populated its cache");

    let peer = Server::bind_with(
        "127.0.0.1:0",
        ServeOptions {
            workers: Some(1),
            ..ServeOptions::default()
        },
    )
    .expect("bind peer");
    let t0 = Instant::now();
    let report = peer
        .engine()
        .warm_from(&donor.addr().to_string())
        .expect("warm-up succeeds across the stall");
    assert!(
        t0.elapsed() >= Duration::from_millis(250),
        "the stall sat in the middle of the stream, got {:?}",
        t0.elapsed()
    );
    assert_eq!(report.records, 2, "{report:?}");
    assert_eq!(
        report.inserted, 2,
        "no record lost to the stall: {report:?}"
    );
    assert!(report.damaged.is_none(), "{report:?}");
    assert_eq!(faults.fired("cache.sync.stall"), 1);

    donor_client.shutdown().expect("shutdown donor");
    donor.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}
