//! Acceptance tests for the multi-seed replication engine:
//!
//! * a `seeds = 8` sweep reports mean ± 95 % CI per metric and is
//!   **bit-reproducible** across runs and across serial vs parallel
//!   execution;
//! * replicate 0 is the legacy single-seed path — the same cell digest a
//!   `seeds = 1` run produces;
//! * replicates dedupe **per replicate** through the `malec-serve` result
//!   cache: resubmitting a 4-seed spec at 8 seeds simulates exactly the 4
//!   new replicates;
//! * CI-driven early stopping measurably reduces the replicate count on a
//!   low-variance scenario and reports the savings.

use std::path::PathBuf;
use std::time::Duration;

use malec_cli::run::run_parsed_spec;
use malec_core::digest::digest;
use malec_serve::client::Client;
use malec_serve::json::{parse, Value};
use malec_serve::server::Server;
use malec_serve::spec::parse_spec;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("malec_replication_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// A two-config spec with `seeds` replicates per cell.
fn spec_toml(name: &str, seeds: u32) -> String {
    format!(
        "[scenario]\nname = \"{name}\"\nmode = \"mixed\"\nblock = 24\n\
         [[scenario.part]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\nweight = 2\n\
         [[scenario.part]]\nkind = \"store_burst\"\nweight = 1\n\
         [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 3000\nseed = 17\nseeds = {seeds}\n\
         [report]\nout = \"{name}.json\"\nmtr = \"{name}.mtr\"\n"
    )
}

#[test]
fn seeds8_sweep_reports_ci_and_is_bit_reproducible_serial_vs_parallel() {
    let dir = tmp_dir("repro");
    let toml = spec_toml("rep8", 8);

    let serial = run_parsed_spec(parse_spec(&toml).expect("spec"), "inline", &dir, Some(1))
        .expect("serial run");
    let parallel = run_parsed_spec(parse_spec(&toml).expect("spec"), "inline", &dir, None)
        .expect("parallel run");
    assert_eq!(serial.workers, 1, "the cap is honored");
    assert!(serial.all_replays_match() && parallel.all_replays_match());

    // Every replicate of every config is bit-identical across fan-outs.
    assert_eq!(serial.replicates.len(), 2);
    for (s_reps, p_reps) in serial.replicates.iter().zip(&parallel.replicates) {
        assert_eq!(s_reps.len(), 8, "all 8 seeds ran");
        for (a, b) in s_reps.iter().zip(p_reps) {
            assert_eq!(
                digest(a),
                digest(b),
                "worker scheduling must not leak into replicate results"
            );
        }
    }
    // And the aggregated statistics match to the bit.
    for (sc, pc) in serial.cells.iter().zip(&parallel.cells) {
        let (ss, ps) = (sc.stats.as_ref().unwrap(), pc.stats.as_ref().unwrap());
        assert_eq!(ss.n, 8);
        for ((name_a, a), (name_b, b)) in ss.metrics.iter().zip(&ps.metrics) {
            assert_eq!(name_a, name_b);
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{name_a} mean");
            assert_eq!(
                a.ci95.map(f64::to_bits),
                b.ci95.map(f64::to_bits),
                "{name_a} ci"
            );
        }
    }

    // The written report carries a parseable mean ± CI block per metric.
    let report = std::fs::read_to_string(&parallel.out_path).expect("report written");
    let v = parse(&report).expect("report is valid JSON");
    assert_eq!(
        v.get("workload")
            .and_then(|w| w.get("seeds"))
            .and_then(Value::as_u64),
        Some(8)
    );
    let cells = v.get("cells").and_then(Value::as_array).expect("cells");
    assert_eq!(cells.len(), 2);
    for cell in cells {
        assert_eq!(cell.get("replicates").and_then(Value::as_u64), Some(8));
        let metrics = cell.get("metrics").expect("metrics block");
        for name in ["ipc", "energy_per_access", "l1_miss_rate"] {
            let m = metrics.get(name).unwrap_or_else(|| panic!("{name} row"));
            let mean = m.get("mean").and_then(Value::as_f64).expect("mean");
            let min = m.get("min").and_then(Value::as_f64).expect("min");
            let max = m.get("max").and_then(Value::as_f64).expect("max");
            assert!(min <= mean && mean <= max, "{name}: {min} {mean} {max}");
            assert!(
                m.get("ci95").and_then(Value::as_f64).is_some(),
                "{name}: 8 replicates produce a CI"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replicate_zero_matches_the_single_seed_run() {
    let dir = tmp_dir("compat");
    let single = run_parsed_spec(
        parse_spec(&spec_toml("one", 1)).expect("spec"),
        "inline",
        &dir,
        None,
    )
    .expect("single-seed run");
    let replicated = run_parsed_spec(
        parse_spec(&spec_toml("one", 4)).expect("spec"),
        "inline",
        &dir,
        None,
    )
    .expect("replicated run");
    for (s, r) in single.cells.iter().zip(&replicated.cells) {
        assert_eq!(
            s.digest, r.digest,
            "{}: replicate 0 must be the legacy single-seed cell, bit for bit",
            s.generated.config
        );
    }
    assert!(single.cells[0].stats.is_none(), "one seed: no stats block");
    assert_eq!(replicated.cells[0].stats.as_ref().unwrap().n, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resubmission_with_more_seeds_dedupes_per_replicate_through_the_cache() {
    let server = Server::bind("127.0.0.1:0", Some(2), None)
        .expect("bind")
        .spawn()
        .expect("spawn");
    let client = Client::new(server.addr().to_string());

    let four = client.submit(&spec_toml("svc_rep", 4)).expect("submit");
    let view = client.wait(four, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.cells, 8, "2 configs x 4 replicates");
    assert_eq!(view.simulated, 8, "cold cache simulates everything");
    let report_four = client.report(four).expect("report");

    let eight = client.submit(&spec_toml("svc_rep", 8)).expect("resubmit");
    let view = client.wait(eight, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.cells, 16, "2 configs x 8 replicates");
    assert_eq!(
        view.simulated, 8,
        "exactly the 8 new replicates simulate; the first 4 per config are cache hits"
    );
    assert_eq!(view.cached, 8);
    let report_eight = client.report(eight).expect("report");

    // Replicate 0 (the single-seed columns) is identical across both jobs.
    let digests = |report: &str| -> Vec<String> {
        parse(report)
            .expect("valid JSON")
            .get("cells")
            .and_then(Value::as_array)
            .expect("cells")
            .iter()
            .map(|c| {
                c.get("digest")
                    .and_then(Value::as_str)
                    .expect("digest")
                    .to_owned()
            })
            .collect()
    };
    assert_eq!(digests(&report_four), digests(&report_eight));

    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
}

#[test]
fn early_stopping_saves_replicates_on_a_low_variance_scenario() {
    let dir = tmp_dir("earlystop");
    // A steady-state benchmark phase is the low-variance case: its IPC
    // barely moves across seeds, so a 10% relative CI target converges at
    // (or very near) the 3-replicate minimum of a 16-seed budget.
    let toml = "[scenario]\nname = \"calm\"\n\
                [[scenario.phase]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\ninsts = 4000\n\
                [sweep]\nconfigs = [\"MALEC\"]\ninsts = 4000\nseed = 17\n\
                seeds = 16\nmin_seeds = 3\nci_target = 0.1\n";
    let outcome = run_parsed_spec(parse_spec(toml).expect("spec"), "inline", &dir, None)
        .expect("run succeeds");
    let stats = outcome.cells[0].stats.as_ref().expect("stats present");
    assert!(
        stats.n < 16,
        "early stopping must beat the 16-seed cap, used {}",
        stats.n
    );
    assert!(stats.n >= 3, "never below min_seeds");
    assert_eq!(stats.saved, 16 - stats.n, "savings are priced and reported");

    // Serial execution stops at exactly the same replicate count.
    let serial = run_parsed_spec(parse_spec(toml).expect("spec"), "inline", &dir, Some(1))
        .expect("serial run");
    assert_eq!(
        serial.cells[0].stats.as_ref().unwrap().n,
        stats.n,
        "the stopping decision is a pure prefix function, fan-out independent"
    );

    let report = std::fs::read_to_string(&outcome.out_path).expect("report");
    assert!(
        report.contains(&format!("\"replicates_saved\": {}", stats.saved)),
        "{report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
