//! Property tests for the scenario engine and the `.mtr` record/replay
//! path: every generator is a pure function of (description, seed), and
//! the binary trace format loses nothing, for arbitrary generated traces.

use proptest::prelude::*;

use malec_harness::{all_benchmarks, WorkloadGenerator};
use malec_trace::record::{read_trace, write_trace, TraceReader};
use malec_trace::scenario::{
    presets, BankConflictParams, MixPart, Phase, Scenario, SegmentKind, StoreBurstParams,
    TlbThrashParams,
};
use malec_trace::TraceInst;

/// Builds one of a family of scenarios from three small integers — the
/// proptest-friendly way to cover phased/mixed compositions of every
/// segment kind without a custom strategy type.
fn arbitrary_scenario(shape: u64, a: u32, b: u32) -> Scenario {
    let kinds = [
        SegmentKind::Benchmark(all_benchmarks()[(a as usize) % 38].clone()),
        SegmentKind::TlbThrash(TlbThrashParams {
            pages: 64 + a % 8192,
            lines_per_page: 1 + b % 4,
            load_fraction: 0.4 + f64::from(b % 50) / 100.0,
        }),
        SegmentKind::BankConflict(BankConflictParams {
            stride_lines: 1 + a % 8,
            pages: 1 + b % 32,
        }),
        SegmentKind::StoreBurst(StoreBurstParams {
            burst: 1 + a % 40,
            loads_after: b % 10,
            lines_back: 1 + a % 16,
            gap: a % 6,
            pages: 1 + b % 64,
        }),
    ];
    let k = |i: u32| kinds[(i as usize) % kinds.len()].clone();
    if shape.is_multiple_of(2) {
        Scenario::phased(
            "prop_phased",
            vec![
                Phase::new(k(a), 1 + u64::from(a % 500)),
                Phase::new(k(a + 1), 1 + u64::from(b % 500)),
                Phase::new(k(b + 2), 1 + u64::from((a ^ b) % 500)),
            ],
        )
    } else {
        Scenario::mixed(
            "prop_mixed",
            vec![
                MixPart::new(k(b), 1 + a % 4),
                MixPart::new(k(b + 1), 1 + b % 4),
                MixPart::new(k(a + 2), 1),
            ],
            1 + b % 96,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The profile generator is seed-deterministic for every benchmark.
    #[test]
    fn prop_workload_generator_seed_deterministic(
        bench_idx in 0usize..38,
        seed in 0u64..1_000_000,
    ) {
        let profile = &all_benchmarks()[bench_idx];
        let a: Vec<TraceInst> = WorkloadGenerator::new(profile, seed).take(1_500).collect();
        let b: Vec<TraceInst> = WorkloadGenerator::new(profile, seed).take(1_500).collect();
        prop_assert_eq!(a, b);
    }

    /// Every preset scenario generator is seed-deterministic, and distinct
    /// seeds produce distinct streams.
    #[test]
    fn prop_preset_scenarios_seed_deterministic(
        preset_idx in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let scenario = &presets()[preset_idx];
        let a: Vec<TraceInst> = scenario.generator(seed).take(2_000).collect();
        let b: Vec<TraceInst> = scenario.generator(seed).take(2_000).collect();
        prop_assert_eq!(&a, &b);
        let c: Vec<TraceInst> = scenario.generator(seed ^ 1).take(2_000).collect();
        prop_assert_ne!(&a, &c);
    }

    /// Arbitrary phased/mixed compositions of arbitrary segments are
    /// seed-deterministic too — determinism is structural, not a property
    /// of the presets.
    #[test]
    fn prop_arbitrary_scenarios_seed_deterministic(
        shape in 0u64..100,
        a in 0u32..10_000,
        b in 0u32..10_000,
        seed in 0u64..1_000_000,
    ) {
        let scenario = arbitrary_scenario(shape, a, b);
        let x: Vec<TraceInst> = scenario.generator(seed).take(1_500).collect();
        let y: Vec<TraceInst> = scenario.generator(seed).take(1_500).collect();
        prop_assert_eq!(x, y);
    }

    /// `.mtr` write→read roundtrips are lossless for arbitrary generated
    /// traces, through both the whole-trace and the streaming reader.
    #[test]
    fn prop_mtr_roundtrip_lossless(
        shape in 0u64..100,
        a in 0u32..10_000,
        b in 0u32..10_000,
        seed in 0u64..1_000_000,
        len in 1usize..3_000,
    ) {
        let scenario = arbitrary_scenario(shape, a, b);
        let insts: Vec<TraceInst> = scenario.generator(seed).take(len).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, insts.iter().copied()).expect("in-memory write");
        let whole = read_trace(&mut buf.as_slice()).expect("whole read");
        prop_assert_eq!(&whole, &insts);
        let streamed: Vec<TraceInst> = TraceReader::new(buf.as_slice())
            .expect("header")
            .collect::<std::io::Result<_>>()
            .expect("records");
        prop_assert_eq!(&streamed, &insts);
    }
}
