//! Acceptance and property tests for the paired-seed comparison engine:
//!
//! * **algebraic identities** (proptest): `delta_mean == mean_a − mean_b`
//!   on shared seeds; the paired CI is never wider than the
//!   independent-difference CI under positive seed correlation; swapping
//!   the two interfaces negates every delta bit-exactly, keeps the CI
//!   width, and flips every win/loss verdict;
//! * **the headline acceptance claim**: for a shared-seed replicated
//!   sweep, the paired delta CI on IPC is *strictly narrower* than the
//!   difference of the independent marginal CIs;
//! * **bit-reproducibility**: serial and `--jobs N` comparisons produce
//!   bit-identical compare reports, including under CI-driven early
//!   stopping (the paired stopping rule is a pure prefix function).

use std::path::{Path, PathBuf};

use malec_cli::compare::compare_parsed_spec;
use malec_cli::run::run_parsed_spec;
use malec_core::compare::{compare_digest, Alpha, CompareStats, PairedSample, Verdict};
use malec_core::stats::{CiMetric, Replication, StatError};
use malec_serve::json::{parse, Value};
use malec_serve::spec::parse_spec;
use proptest::prelude::*;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("malec_compare_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// A two-config paired spec over a load-rich mixed scenario.
fn spec_toml(name: &str, seeds: u32, extra_sweep: &str) -> String {
    format!(
        "[scenario]\nname = \"{name}\"\nmode = \"mixed\"\nblock = 24\n\
         [[scenario.part]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\nweight = 2\n\
         [[scenario.part]]\nkind = \"store_burst\"\nweight = 1\n\
         [compare]\nbaseline = \"Base1ldst\"\ncandidate = \"MALEC\"\nalpha = 0.05\n\
         [sweep]\ninsts = 3000\nseed = 17\nseeds = {seeds}\n{extra_sweep}\
         [report]\nout = \"{name}.json\"\nmtr = \"{name}.mtr\"\ncompare = \"{name}_compare.json\"\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Correlated sample pairs: a shared per-seed component `s_i` plus
    /// small independent noise on each side — the structure shared-seed
    /// simulation replicates actually have.
    #[test]
    fn paired_identities_hold_on_correlated_samples(
        raw in proptest::collection::vec((0u64..1_000_000, 0u64..1_000, 0u64..1_000), 2..24),
        shift in 0u64..500,
    ) {
        let mut ps = PairedSample::new();
        let mut swapped = PairedSample::new();
        for &(s, na, nb) in &raw {
            let shared = s as f64 / 997.0;
            let a = shared + na as f64 / 131.0 + shift as f64;
            let b = shared + nb as f64 / 131.0;
            ps.push(a, b);
            swapped.push(b, a);
        }
        // delta_mean == mean_a - mean_b (up to accumulation rounding).
        let scale = ps.candidate_mean().abs().max(ps.baseline_mean().abs()).max(1.0);
        prop_assert!(
            (ps.delta_mean() - (ps.candidate_mean() - ps.baseline_mean())).abs() <= 1e-9 * scale,
            "delta {} vs {} - {}", ps.delta_mean(), ps.candidate_mean(), ps.baseline_mean()
        );
        // Positive seed correlation: pairing never widens the interval.
        for alpha in [Alpha::Ten, Alpha::Five, Alpha::One] {
            let paired = ps.paired_ci(alpha).expect("n >= 2");
            let independent = ps.independent_ci(alpha).expect("n >= 2");
            prop_assert!(!paired.is_nan() && !independent.is_nan());
            prop_assert!(
                paired <= independent * (1.0 + 1e-12),
                "paired {paired} > independent {independent} under positive correlation"
            );
        }
        // Swapping the sides negates the delta bit-exactly, keeps the CI
        // width bit-exactly, and flips the oriented verdict.
        prop_assert_eq!(
            swapped.delta_mean().to_bits(),
            (-ps.delta_mean()).to_bits(),
            "sign symmetry"
        );
        prop_assert_eq!(
            swapped.paired_ci(Alpha::Five).unwrap().to_bits(),
            ps.paired_ci(Alpha::Five).unwrap().to_bits(),
            "width symmetry"
        );
        prop_assert_eq!(
            swapped.verdict(Alpha::Five, true),
            ps.verdict(Alpha::Five, true).flipped(),
            "verdict symmetry"
        );
    }
}

#[test]
fn small_pair_counts_error_instead_of_nan() {
    // n = 0 and n = 1 pinned at the test-suite level too: comparisons on
    // degenerate replicate sets surface as typed errors, never NaN.
    let empty = PairedSample::new();
    assert_eq!(empty.paired_ci(Alpha::Five), Err(StatError::Empty));
    let mut one = PairedSample::new();
    one.push(1.5, 1.0);
    assert_eq!(one.paired_ci(Alpha::Five), Err(StatError::OneSample));
    assert_eq!(one.independent_ci(Alpha::Five), Err(StatError::OneSample));
    assert!(!one.delta_mean().is_nan());
}

/// The acceptance headline: pairing provably tightens the IPC interval on
/// a real shared-seed sweep, and the delta identity links the paired view
/// to the marginal report the `run` pipeline produces.
#[test]
fn paired_ipc_ci_is_strictly_narrower_than_independent_marginals() {
    let dir = tmp_dir("narrow");
    let toml = spec_toml("cmp_narrow", 8, "");

    // The marginal view: `run` on the same spec (same seeds, same cells).
    let run = run_parsed_spec(parse_spec(&toml).expect("spec"), "inline", &dir, None)
        .expect("marginal run");
    // The paired view.
    let cmp = compare_parsed_spec(parse_spec(&toml).expect("spec"), "inline", &dir, None)
        .expect("paired run");

    let ipc = cmp.stats.metric("ipc").expect("ipc delta");
    let paired = ipc.ci.expect("8 pairs produce a CI");
    let independent = ipc.independent_ci.expect("8 pairs produce a CI");
    assert!(
        paired < independent,
        "paired CI {paired} must be strictly narrower than the independent-difference CI {independent}"
    );

    // Strictly narrower than the *difference of the independent marginal
    // CIs* from the marginal report as well (hw_a + hw_b bounds the CI of
    // a difference of independent means with these dfs from above).
    let marginal_ci = |config: usize| {
        run.cells[config]
            .stats
            .as_ref()
            .expect("replicated run has stats")
            .metric("ipc")
            .expect("ipc")
            .ci95
            .expect("8 replicates produce a CI")
    };
    let marginal_sum = marginal_ci(0) + marginal_ci(1);
    assert!(
        paired < marginal_sum,
        "paired CI {paired} must beat the summed marginal CIs {marginal_sum}"
    );

    // The paired delta mean matches the marginal means' difference: the
    // two views describe the same numbers.
    let m = |config: usize| {
        run.cells[config]
            .stats
            .as_ref()
            .unwrap()
            .metric("ipc")
            .unwrap()
            .mean
    };
    assert!((ipc.delta_mean - (m(1) - m(0))).abs() < 1e-12);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serial_and_parallel_compare_reports_are_bit_identical() {
    let dir = tmp_dir("repro");
    let toml = spec_toml("cmp_repro", 6, "");
    let serial = compare_parsed_spec(parse_spec(&toml).expect("spec"), "inline", &dir, Some(1))
        .expect("serial");
    let parallel = compare_parsed_spec(parse_spec(&toml).expect("spec"), "inline", &dir, None)
        .expect("parallel");
    assert_eq!(
        compare_digest(&serial.stats),
        compare_digest(&parallel.stats),
        "fan-out must not leak into the deltas"
    );
    // The rendered reports agree in everything but run facts (workers):
    // compare their parsed delta blocks and digests directly.
    let deltas = |json: &str| {
        let v = parse(json).expect("valid JSON");
        (
            format!("{:?}", v.get("deltas").expect("deltas")),
            v.get("digest").and_then(Value::as_str).map(str::to_owned),
        )
    };
    assert_eq!(deltas(&serial.json), deltas(&parallel.json));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paired_early_stopping_is_fanout_independent_and_saves_seeds() {
    let dir = tmp_dir("earlystop");
    // A generous paired target on a steady workload converges well before
    // the 16-seed cap; the stopping decision is a pure function of the
    // ordered pair prefix, so every fan-out stops at the same count.
    let toml = spec_toml("cmp_stop", 16, "min_seeds = 3\nci_target = 0.2\n");
    let a = compare_parsed_spec(parse_spec(&toml).expect("spec"), "inline", &dir, None)
        .expect("parallel");
    let b = compare_parsed_spec(parse_spec(&toml).expect("spec"), "inline", &dir, Some(1))
        .expect("serial");
    assert!(a.stats.n < 16, "early stopping must beat the cap");
    assert!(a.stats.n >= 3, "never below min_seeds");
    assert_eq!(a.stats.n, b.stats.n, "stop counts are fan-out independent");
    assert_eq!(a.stats.saved, 16 - a.stats.n);
    assert_eq!(
        a.baseline.len(),
        a.candidate.len(),
        "the pair grows in lockstep"
    );
    assert_eq!(compare_digest(&a.stats), compare_digest(&b.stats));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_defaults_resolve_on_plain_replicated_specs() {
    // No [compare] section at all: the Table I default configs carry the
    // default pairing (Base1ldst vs MALEC at alpha 0.05).
    let dir = tmp_dir("defaults");
    let toml = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                [sweep]\ninsts = 2000\nseed = 5\nseeds = 3\n\
                [report]\nout = \"d.json\"\nmtr = \"d.mtr\"\ncompare = \"d_compare.json\"\n";
    let cmp = compare_parsed_spec(parse_spec(toml).expect("spec"), "inline", &dir, None)
        .expect("default pairing compares");
    assert_eq!(cmp.stats.baseline, "Base1ldst");
    assert_eq!(cmp.stats.candidate, "MALEC");
    assert_eq!(cmp.stats.alpha, Alpha::Five);
    assert_eq!(cmp.stats.n, 3);

    // With a ci_target the implicit pairing is rejected — otherwise the
    // local paired stopping rule and the server's marginal rule for plain
    // specs would stop at different counts and break bit-identity.
    let toml = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                [sweep]\ninsts = 2000\nseed = 5\nseeds = 8\nci_target = 0.1\n";
    let e = compare_parsed_spec(parse_spec(toml).expect("spec"), "inline", &dir, None)
        .expect_err("implicit pairing + ci_target must fail");
    assert!(e.contains("explicit"), "{e}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verdicts_respect_alpha_ordering() {
    // Tightening alpha can only demote verdicts toward tie (the interval
    // widens), never create new wins: check on a real paired sweep.
    let scenario = malec_trace::scenario::preset_named("store_burst").expect("preset");
    let source = malec_core::ScenarioSource::Scenario(scenario);
    let run = |cfg: malec_types::SimConfig, r: u32| {
        malec_core::Simulator::new(cfg)
            .run_source(&source, 3_000, malec_core::stats::replicate_seed(7, r))
            .expect("generator sources cannot fail")
    };
    let base: Vec<_> = (0..5)
        .map(|r| run(malec_types::SimConfig::base1ldst(), r))
        .collect();
    let cand: Vec<_> = (0..5)
        .map(|r| run(malec_types::SimConfig::malec(), r))
        .collect();
    for (loose, tight) in [(Alpha::Ten, Alpha::Five), (Alpha::Five, Alpha::One)] {
        let l = CompareStats::from_pairs(&base, &cand, 5, loose);
        let t = CompareStats::from_pairs(&base, &cand, 5, tight);
        for ((name, dl), (_, dt)) in l.metrics.iter().zip(&t.metrics) {
            assert!(
                dt.verdict == dl.verdict || dt.verdict == Verdict::Tie,
                "{name}: tightening alpha flipped {:?} to {:?}",
                dl.verdict,
                dt.verdict
            );
            assert!(
                dt.ci.unwrap() > dl.ci.unwrap(),
                "{name}: tighter alpha, wider CI"
            );
        }
    }
}

#[test]
fn paired_stopping_matches_the_marginal_contract_shape() {
    // The paired rule obeys the same policy envelope the marginal rule
    // does: cap always stops, min_seeds always defers.
    let rep = Replication {
        seeds: 4,
        min_seeds: 3,
        ci_target: Some(1e-12), // unreachably tight
        metric: CiMetric::Ipc,
    };
    let scenario = malec_trace::scenario::preset_named("store_burst").expect("preset");
    let source = malec_core::ScenarioSource::Scenario(scenario);
    let run = |cfg: malec_types::SimConfig, r: u32| {
        malec_core::Simulator::new(cfg)
            .run_source(&source, 2_000, malec_core::stats::replicate_seed(7, r))
            .expect("generator sources cannot fail")
    };
    let base: Vec<_> = (0..4)
        .map(|r| run(malec_types::SimConfig::base1ldst(), r))
        .collect();
    let cand: Vec<_> = (0..4)
        .map(|r| run(malec_types::SimConfig::malec(), r))
        .collect();
    let pairs = |n: usize| base[..n].iter().zip(&cand[..n]);
    use malec_core::compare::paired_converged;
    assert!(
        !paired_converged(&rep, Alpha::Five, pairs(2)),
        "below min_seeds never stops, even with a zero-width interval"
    );
    assert!(paired_converged(&rep, Alpha::Five, pairs(4)), "cap stops");
    let no_target = Replication::fixed(4);
    assert!(!paired_converged(&no_target, Alpha::Five, pairs(2)));
}

/// Guard for the spec surface: a compare spec round-trips through the file
/// pipeline (`compare_spec_file`) exactly like the inline path.
#[test]
fn compare_spec_file_roundtrip() {
    let dir = tmp_dir("file");
    let name = "cmp_file";
    let toml = spec_toml(name, 3, "");
    let path = dir.join("spec.toml");
    std::fs::write(&path, &toml).expect("write spec");
    let cwd_neutral = parse_spec(&toml).expect("spec");
    // compare_spec_file resolves paths relative to the cwd; steer the
    // report into the tmp dir through the parsed-spec path instead.
    let inline = compare_parsed_spec(cwd_neutral, "inline", &dir, None).expect("inline");
    let from_file =
        malec_cli::compare::compare_spec_file(Path::new(&path.display().to_string()), None);
    // The file run writes its report next to the cwd; accept either
    // success (digest must match) or a clean write error — but never a
    // parse failure.
    match from_file {
        Ok(outcome) => {
            assert_eq!(
                compare_digest(&outcome.stats),
                compare_digest(&inline.stats)
            );
            std::fs::remove_file(format!("{name}_compare.json")).ok();
        }
        Err(e) => assert!(e.contains("write") || e.contains("create"), "{e}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
