//! Golden-stats equivalence test.
//!
//! Runs 3 benchmarks × {Base1ldst, MALEC} for 50 000 instructions at the
//! fixed figure seed and asserts the complete `RunSummary` — core cycles,
//! interface groups/merges/hits, every energy event counter, and the priced
//! energy down to the last mantissa bit — against values recorded from the
//! bootstrapped (pre-optimization) simulator. Any hot-path rewrite that
//! changes simulated behavior, however slightly, fails here.
//!
//! To re-record after an *intentional* behavior change:
//!
//! ```sh
//! cargo test --release -p malec-harness --test golden_stats -- --ignored --nocapture
//! ```
//!
//! and replace the `golden_cells()` body with the printed literals.

use malec_cpu::CoreStats;
use malec_energy::EnergyCounters;
use malec_harness::{all_benchmarks, InterfaceStats, RunSummary, SimConfig, Simulator};

/// The figure seed (`malec_bench::DEFAULT_SEED`).
const SEED: u64 = 2013;
/// Instruction budget per cell.
const INSTS: u64 = 50_000;
/// Benchmarks covering SPEC-INT, the mcf outlier, and MediaBench2.
const BENCHMARKS: [&str; 3] = ["gzip", "mcf", "djpeg"];

/// One recorded (benchmark × config) cell.
#[derive(Debug, PartialEq)]
struct GoldenCell {
    benchmark: &'static str,
    config: &'static str,
    core: CoreStats,
    interface: InterfaceStats,
    counters: EnergyCounters,
    energy_dynamic_bits: u64,
    energy_leakage_bits: u64,
    l1_miss_rate_bits: u64,
    l2_miss_rate_bits: u64,
    utlb_miss_rate_bits: u64,
}

fn configs() -> [(&'static str, SimConfig); 2] {
    [
        ("Base1ldst", SimConfig::base1ldst()),
        ("MALEC", SimConfig::malec()),
    ]
}

fn run_cell(bench: &str, config: &SimConfig) -> RunSummary {
    let profile = all_benchmarks()
        .into_iter()
        .find(|b| b.name == bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    Simulator::new(config.clone()).run(&profile, INSTS, SEED)
}

fn cell_of(bench: &'static str, label: &'static str, s: &RunSummary) -> GoldenCell {
    GoldenCell {
        benchmark: bench,
        config: label,
        core: s.core,
        interface: s.interface,
        counters: s.counters,
        energy_dynamic_bits: s.energy.dynamic.to_bits(),
        energy_leakage_bits: s.energy.leakage.to_bits(),
        l1_miss_rate_bits: s.l1_miss_rate.to_bits(),
        l2_miss_rate_bits: s.l2_miss_rate.to_bits(),
        utlb_miss_rate_bits: s.utlb_miss_rate.to_bits(),
    }
}

#[test]
fn summaries_match_recorded_goldens() {
    let goldens = golden_cells();
    assert_eq!(goldens.len(), BENCHMARKS.len() * configs().len());
    let mut i = 0;
    for bench in BENCHMARKS {
        for (label, config) in configs() {
            let actual = cell_of(bench, label, &run_cell(bench, &config));
            assert_eq!(
                goldens[i], actual,
                "{bench}/{label}: simulated behavior diverged from the recorded golden"
            );
            i += 1;
        }
    }
}

/// Prints the golden literals (run with `-- --ignored --nocapture`).
#[test]
#[ignore = "recorder: regenerates the golden_cells() body"]
fn record_goldens() {
    println!("fn golden_cells() -> Vec<GoldenCell> {{\n    vec![");
    for bench in BENCHMARKS {
        for (label, config) in configs() {
            let c = cell_of(bench, label, &run_cell(bench, &config));
            println!("        {c:#?},")
        }
    }
    println!("    ]\n}}");
}

#[rustfmt::skip]
fn golden_cells() -> Vec<GoldenCell> {
    vec![
        GoldenCell {
    benchmark: "gzip",
    config: "Base1ldst",
    core: CoreStats {
        cycles: 32625,
        committed: 50000,
        loads: 15137,
        stores: 7302,
        branches: 5001,
        agu_stall_cycles: 1064,
        issued_ops: 50000,
    },
    interface: InterfaceStats {
        loads_serviced: 15137,
        merged_loads: 0,
        stores_accepted: 7302,
        mbe_writes: 3148,
        groups: 0,
        group_loads: 0,
        reduced_accesses: 0,
        conventional_accesses: 16163,
        held_load_cycles: 0,
        translations: 22439,
        store_translations_shared: 0,
    },
    counters: EnergyCounters {
        l1_tag_bank_reads: 19311,
        l1_data_subblock_reads: 64652,
        l1_data_subblock_writes: 10568,
        l1_tag_bank_writes: 1068,
        utlb_lookups: 22439,
        utlb_fills: 1810,
        utlb_reverse_lookups: 0,
        tlb_lookups: 1810,
        tlb_fills: 658,
        tlb_reverse_lookups: 0,
        uwt_reads: 0,
        uwt_writes: 0,
        uwt_bit_updates: 0,
        wt_reads: 0,
        wt_writes: 0,
        wt_bit_updates: 0,
        wdu_lookups: 0,
        wdu_writes: 0,
        sb_lookups_full: 15137,
        sb_lookups_page_segment: 0,
        sb_lookups_narrow: 0,
        mb_lookups_full: 15137,
        mb_lookups_page_segment: 0,
        mb_lookups_narrow: 0,
        input_buffer_compares: 0,
        arbitration_compares: 0,
    },
    energy_dynamic_bits: 4691582811710119711,
    energy_leakage_bits: 4688701349977376424,
    l1_miss_rate_bits: 4588578377550151231,
    l2_miss_rate_bits: 4606743866027314663,
    utlb_miss_rate_bits: 4590476811821801657,
},
        GoldenCell {
    benchmark: "gzip",
    config: "MALEC",
    core: CoreStats {
        cycles: 25882,
        committed: 50000,
        loads: 15137,
        stores: 7302,
        branches: 5001,
        agu_stall_cycles: 6727,
        issued_ops: 50000,
    },
    interface: InterfaceStats {
        loads_serviced: 15137,
        merged_loads: 5156,
        stores_accepted: 7302,
        mbe_writes: 3147,
        groups: 9321,
        group_loads: 15137,
        reduced_accesses: 12610,
        conventional_accesses: 1579,
        held_load_cycles: 7979,
        translations: 17483,
        store_translations_shared: 2235,
    },
    counters: EnergyCounters {
        l1_tag_bank_reads: 1579,
        l1_data_subblock_reads: 30406,
        l1_data_subblock_writes: 10718,
        l1_tag_bank_writes: 1106,
        utlb_lookups: 17483,
        utlb_fills: 2528,
        utlb_reverse_lookups: 1829,
        tlb_lookups: 2528,
        tlb_fills: 707,
        tlb_reverse_lookups: 628,
        uwt_reads: 12416,
        uwt_writes: 1821,
        uwt_bit_updates: 2381,
        wt_reads: 1821,
        wt_writes: 2359,
        wt_bit_updates: 1027,
        wdu_lookups: 0,
        wdu_writes: 0,
        sb_lookups_full: 0,
        sb_lookups_page_segment: 9321,
        sb_lookups_narrow: 15137,
        mb_lookups_full: 0,
        mb_lookups_page_segment: 9321,
        mb_lookups_narrow: 15137,
        input_buffer_compares: 20627,
        arbitration_compares: 6488,
    },
    energy_dynamic_bits: 4688667933712383084,
    energy_leakage_bits: 4687443075238920917,
    l1_miss_rate_bits: 4590735086340034847,
    l2_miss_rate_bits: 4606449464068618955,
    utlb_miss_rate_bits: 4594377698198442586,
},
        GoldenCell {
    benchmark: "mcf",
    config: "Base1ldst",
    core: CoreStats {
        cycles: 71470,
        committed: 50000,
        loads: 15026,
        stores: 7491,
        branches: 4989,
        agu_stall_cycles: 4302,
        issued_ops: 50000,
    },
    interface: InterfaceStats {
        loads_serviced: 15026,
        merged_loads: 0,
        stores_accepted: 7491,
        mbe_writes: 4578,
        groups: 0,
        group_loads: 0,
        reduced_accesses: 0,
        conventional_accesses: 20469,
        held_load_cycles: 0,
        translations: 22517,
        store_translations_shared: 0,
    },
    counters: EnergyCounters {
        l1_tag_bank_reads: 25047,
        l1_data_subblock_reads: 81876,
        l1_data_subblock_writes: 34172,
        l1_tag_bank_writes: 6254,
        utlb_lookups: 22517,
        utlb_fills: 6817,
        utlb_reverse_lookups: 0,
        tlb_lookups: 6817,
        tlb_fills: 6227,
        tlb_reverse_lookups: 0,
        uwt_reads: 0,
        uwt_writes: 0,
        uwt_bit_updates: 0,
        wt_reads: 0,
        wt_writes: 0,
        wt_bit_updates: 0,
        wdu_lookups: 0,
        wdu_writes: 0,
        sb_lookups_full: 15026,
        sb_lookups_page_segment: 0,
        sb_lookups_narrow: 0,
        mb_lookups_full: 15026,
        mb_lookups_page_segment: 0,
        mb_lookups_narrow: 0,
        input_buffer_compares: 0,
        arbitration_compares: 0,
    },
    energy_dynamic_bits: 4695060942306090054,
    energy_leakage_bits: 4693677549257237599,
    l1_miss_rate_bits: 4599418510770706386,
    l2_miss_rate_bits: 4607153614197347945,
    utlb_miss_rate_bits: 4599125461665880281,
},
        GoldenCell {
    benchmark: "mcf",
    config: "MALEC",
    core: CoreStats {
        cycles: 65916,
        committed: 50000,
        loads: 15026,
        stores: 7491,
        branches: 4989,
        agu_stall_cycles: 6401,
        issued_ops: 50000,
    },
    interface: InterfaceStats {
        loads_serviced: 15026,
        merged_loads: 4589,
        stores_accepted: 7491,
        mbe_writes: 4578,
        groups: 10204,
        group_loads: 15026,
        reduced_accesses: 12914,
        conventional_accesses: 7549,
        held_load_cycles: 8342,
        translations: 20840,
        store_translations_shared: 1421,
    },
    counters: EnergyCounters {
        l1_tag_bank_reads: 7549,
        l1_data_subblock_reads: 65862,
        l1_data_subblock_writes: 34184,
        l1_tag_bank_writes: 6257,
        utlb_lookups: 20840,
        utlb_fills: 10790,
        utlb_reverse_lookups: 12130,
        tlb_lookups: 10790,
        tlb_fills: 7187,
        tlb_reverse_lookups: 5865,
        uwt_reads: 14770,
        uwt_writes: 3603,
        uwt_bit_updates: 14744,
        wt_reads: 3603,
        wt_writes: 9049,
        wt_bit_updates: 7405,
        wdu_lookups: 0,
        wdu_writes: 0,
        sb_lookups_full: 0,
        sb_lookups_page_segment: 10204,
        sb_lookups_narrow: 15026,
        mb_lookups_full: 0,
        mb_lookups_page_segment: 10204,
        mb_lookups_narrow: 15026,
        input_buffer_compares: 18527,
        arbitration_compares: 5528,
    },
    energy_dynamic_bits: 4695439283092129109,
    energy_leakage_bits: 4693470079927694314,
    l1_miss_rate_bits: 4601178519116962115,
    l2_miss_rate_bits: 4607149309389299965,
    utlb_miss_rate_bits: 4602838735858071776,
},
        GoldenCell {
    benchmark: "djpeg",
    config: "Base1ldst",
    core: CoreStats {
        cycles: 20387,
        committed: 50000,
        loads: 12377,
        stores: 6109,
        branches: 2576,
        agu_stall_cycles: 338,
        issued_ops: 50000,
    },
    interface: InterfaceStats {
        loads_serviced: 12377,
        merged_loads: 0,
        stores_accepted: 6109,
        mbe_writes: 2398,
        groups: 0,
        group_loads: 0,
        reduced_accesses: 0,
        conventional_accesses: 12737,
        held_load_cycles: 0,
        translations: 18486,
        store_translations_shared: 0,
    },
    counters: EnergyCounters {
        l1_tag_bank_reads: 15135,
        l1_data_subblock_reads: 50948,
        l1_data_subblock_writes: 6284,
        l1_tag_bank_writes: 372,
        utlb_lookups: 18486,
        utlb_fills: 433,
        utlb_reverse_lookups: 0,
        tlb_lookups: 433,
        tlb_fills: 60,
        tlb_reverse_lookups: 0,
        uwt_reads: 0,
        uwt_writes: 0,
        uwt_bit_updates: 0,
        wt_reads: 0,
        wt_writes: 0,
        wt_bit_updates: 0,
        wdu_lookups: 0,
        wdu_writes: 0,
        sb_lookups_full: 12377,
        sb_lookups_page_segment: 0,
        sb_lookups_narrow: 0,
        mb_lookups_full: 12377,
        mb_lookups_page_segment: 0,
        mb_lookups_narrow: 0,
        input_buffer_compares: 0,
        arbitration_compares: 0,
    },
    energy_dynamic_bits: 4689470401431110525,
    energy_leakage_bits: 4685436083008573949,
    l1_miss_rate_bits: 4582914189254680232,
    l2_miss_rate_bits: 4606504457565789591,
    utlb_miss_rate_bits: 4582408479272412424,
},
        GoldenCell {
    benchmark: "djpeg",
    config: "MALEC",
    core: CoreStats {
        cycles: 14784,
        committed: 50000,
        loads: 12377,
        stores: 6109,
        branches: 2576,
        agu_stall_cycles: 8444,
        issued_ops: 50000,
    },
    interface: InterfaceStats {
        loads_serviced: 12377,
        merged_loads: 3414,
        stores_accepted: 6109,
        mbe_writes: 2397,
        groups: 8344,
        group_loads: 12377,
        reduced_accesses: 11344,
        conventional_accesses: 435,
        held_load_cycles: 3407,
        translations: 14630,
        store_translations_shared: 2074,
    },
    counters: EnergyCounters {
        l1_tag_bank_reads: 435,
        l1_data_subblock_reads: 21278,
        l1_data_subblock_writes: 6534,
        l1_tag_bank_writes: 435,
        utlb_lookups: 14630,
        utlb_fills: 447,
        utlb_reverse_lookups: 591,
        tlb_lookups: 447,
        tlb_fills: 60,
        tlb_reverse_lookups: 109,
        uwt_reads: 10595,
        uwt_writes: 387,
        uwt_bit_updates: 542,
        wt_reads: 387,
        wt_writes: 431,
        wt_bit_updates: 169,
        wdu_lookups: 0,
        wdu_writes: 0,
        sb_lookups_full: 0,
        sb_lookups_page_segment: 8344,
        sb_lookups_narrow: 12377,
        mb_lookups_full: 0,
        mb_lookups_page_segment: 8344,
        mb_lookups_narrow: 12377,
        input_buffer_compares: 14754,
        arbitration_compares: 4268,
    },
    energy_dynamic_bits: 4684865493620790820,
    energy_leakage_bits: 4683925665976652665,
    l1_miss_rate_bits: 4585679316353839969,
    l2_miss_rate_bits: 4605298154128335959,
    utlb_miss_rate_bits: 4584463713420714787,
},
    ]
}
