//! Failure-injection and pathological-workload tests: hand-built traces
//! that stress the corners of every interface (store floods, same-line
//! floods, page thrash, branch storms, dependency chains), where bugs like
//! buffer deadlocks and lost completions would hide.

use malec_core::sim::AnyInterface;
use malec_core::ScenarioSource;
use malec_cpu::OoOCore;
use malec_harness::{benchmark_named, SimConfig, Simulator};
use malec_trace::scenario::preset_named;
use malec_trace::TraceInst;
use malec_types::addr::VAddr;

fn run(cfg: &SimConfig, trace: Vec<TraceInst>) -> malec_cpu::CoreStats {
    let iface = AnyInterface::for_config(cfg, 99);
    let mut core = OoOCore::new(cfg, iface);
    core.run(trace.into_iter())
}

fn all_configs() -> Vec<SimConfig> {
    vec![
        SimConfig::base1ldst(),
        SimConfig::base2ld1st(),
        SimConfig::malec(),
        SimConfig::malec_wide(),
    ]
}

#[test]
fn store_only_flood_does_not_deadlock() {
    // 2000 stores, no loads: SB/MB/MBE pipeline under maximum pressure.
    let trace: Vec<TraceInst> = (0..2000)
        .map(|i| TraceInst::Store {
            vaddr: VAddr::new(0x4000 + (i % 512) * 64),
            size: 4,
            data_dep: None,
        })
        .collect();
    for cfg in all_configs() {
        let stats = run(&cfg, trace.clone());
        assert_eq!(stats.committed, 2000, "{}", cfg.label());
        assert_eq!(stats.stores, 2000, "{}", cfg.label());
    }
}

#[test]
fn same_line_load_flood() {
    // 2000 loads to one cache line: maximal merging pressure for MALEC,
    // port serialization for the baselines.
    let trace: Vec<TraceInst> = (0..2000)
        .map(|i| TraceInst::Load {
            vaddr: VAddr::new(0x7000 + (i % 8) * 8),
            size: 8,
            addr_dep: None,
        })
        .collect();
    let mut cycles = Vec::new();
    for cfg in all_configs() {
        let stats = run(&cfg, trace.clone());
        assert_eq!(stats.loads, 2000, "{}", cfg.label());
        cycles.push((cfg.label(), stats.cycles));
    }
    // MALEC must beat Base1ldst on this (merging 4 loads per access).
    let base1 = cycles[0].1;
    let malec = cycles[2].1;
    assert!(
        malec < base1,
        "same-line flood should favour MALEC: {cycles:?}"
    );
}

#[test]
fn page_thrash_never_groups_but_completes() {
    // Every load on a different page: zero grouping benefit, heavy TLB
    // pressure, worst case for the Input Buffer.
    let trace: Vec<TraceInst> = (0..1500)
        .map(|i| TraceInst::Load {
            vaddr: VAddr::new((i % 900) * 4096 + (i * 8) % 4096),
            size: 4,
            addr_dep: None,
        })
        .collect();
    for cfg in all_configs() {
        let stats = run(&cfg, trace.clone());
        assert_eq!(stats.committed, 1500, "{}", cfg.label());
    }
}

#[test]
fn branch_storm_with_load_dependent_conditions() {
    let mut trace = Vec::new();
    for i in 0..500u64 {
        trace.push(TraceInst::Load {
            vaddr: VAddr::new(0x9000 + (i % 64) * 64),
            size: 4,
            addr_dep: None,
        });
        trace.push(TraceInst::Branch {
            mispredicted: i % 3 == 0,
            dep: Some(1),
        });
    }
    for cfg in all_configs() {
        let stats = run(&cfg, trace.clone());
        assert_eq!(stats.committed, 1000, "{}", cfg.label());
        assert_eq!(stats.branches, 500, "{}", cfg.label());
    }
}

#[test]
fn fully_serial_pointer_chain() {
    // Each load's address depends on the previous load: zero ILP. Total
    // cycles must scale with the chain length times the load-to-use
    // latency, for every interface.
    let trace: Vec<TraceInst> = (0..400)
        .map(|i| TraceInst::Load {
            vaddr: VAddr::new(0xB000 + (i % 32) * 64),
            size: 8,
            addr_dep: Some(1),
        })
        .collect();
    for cfg in all_configs() {
        let stats = run(&cfg, trace.clone());
        assert_eq!(stats.committed, 400, "{}", cfg.label());
        assert!(
            stats.cycles >= 400 * 3,
            "{}: serial chain finished impossibly fast ({} cycles)",
            cfg.label(),
            stats.cycles
        );
    }
}

#[test]
fn no_memory_trace_is_pure_frontend() {
    let trace: Vec<TraceInst> = (0..3000)
        .map(|_| TraceInst::Op {
            latency: 1,
            dep: None,
        })
        .collect();
    for cfg in all_configs() {
        let stats = run(&cfg, trace.clone());
        assert_eq!(stats.committed, 3000, "{}", cfg.label());
        assert_eq!(stats.loads + stats.stores, 0);
        // Identical front-ends: cycle counts must match across interfaces.
    }
    let a = run(&SimConfig::base1ldst(), trace.clone());
    let b = run(&SimConfig::malec(), trace);
    assert_eq!(
        a.cycles, b.cycles,
        "non-memory code must be interface-neutral"
    );
}

#[test]
fn wide_malec_beats_narrow_on_parallel_loads() {
    // Four independent same-page loads per "iteration": the Fig. 2a wide
    // parameterization (4 ld AGUs) should finish no slower than the
    // analyzed 3-AGU configuration.
    let trace: Vec<TraceInst> = (0..2000)
        .map(|i| TraceInst::Load {
            vaddr: VAddr::new(0xD000 + (i % 4) * 64 + ((i / 4) % 16) * 8),
            size: 4,
            addr_dep: None,
        })
        .collect();
    let narrow = run(&SimConfig::malec(), trace.clone());
    let wide = run(&SimConfig::malec_wide(), trace);
    assert!(
        wide.cycles <= narrow.cycles,
        "wide {} vs narrow {}",
        wide.cycles,
        narrow.cycles
    );
}

/// Runs a preset scenario under `cfg` through the full simulator.
fn run_scenario(cfg: SimConfig, scenario: &str, insts: u64) -> malec_core::RunSummary {
    let s = preset_named(scenario).unwrap_or_else(|| panic!("unknown preset {scenario}"));
    Simulator::new(cfg)
        .run_source(&ScenarioSource::Scenario(s), insts, 99)
        .expect("generator sources cannot fail")
}

#[test]
fn uwt_coverage_collapses_under_tlb_thrash() {
    // Way determination rides on translation locality: the uWT is coupled
    // to the uTLB, so a page pool far beyond the TLB starves it of usable
    // way info. A cache-friendly benchmark covers most accesses; the
    // thrash scenario must collapse that, while the model keeps running.
    let friendly = Simulator::new(SimConfig::malec()).run(
        &benchmark_named("gzip").expect("gzip exists"),
        20_000,
        99,
    );
    let thrashed = run_scenario(SimConfig::malec(), "tlb_thrash", 20_000);
    assert!(
        friendly.interface.coverage() > 0.7,
        "gzip coverage should be high: {}",
        friendly.interface.coverage()
    );
    assert!(
        thrashed.interface.coverage() < 0.3,
        "TLB thrash must collapse uWT coverage: {}",
        thrashed.interface.coverage()
    );
    assert!(
        thrashed.utlb_miss_rate > 5.0 * friendly.utlb_miss_rate.max(0.01),
        "thrash uTLB miss rate {} vs gzip {}",
        thrashed.utlb_miss_rate,
        friendly.utlb_miss_rate
    );
}

#[test]
fn merge_rate_rises_under_same_line_bursts() {
    // The store-burst pattern reads each just-written line repeatedly, so
    // MALEC's load merging should service a large share of loads from a
    // concurrent same-line access; the bank-conflict pattern never touches
    // the same line twice in a row and is the natural control.
    let bursty = run_scenario(SimConfig::malec(), "store_burst", 20_000);
    let strided = run_scenario(SimConfig::malec(), "bank_conflict", 20_000);
    assert!(
        bursty.interface.merge_ratio() > 0.2,
        "same-line bursts must merge: {}",
        bursty.interface.merge_ratio()
    );
    assert!(
        bursty.interface.merge_ratio() > 4.0 * strided.interface.merge_ratio().max(0.001),
        "burst merge ratio {} vs bank-conflict {}",
        bursty.interface.merge_ratio(),
        strided.interface.merge_ratio()
    );
}

#[test]
fn store_bursts_never_deadlock_any_interface() {
    // SB(24) → MB(4) draining under sustained same-line store pressure is
    // where a lost wakeup or a full-buffer livelock would hide. Burst
    // length is pushed past the store buffer's 24 entries with no gap at
    // all; the core panics after 100k commit-less cycles, so completion IS
    // the proof of forward progress.
    use malec_trace::scenario::{Scenario, SegmentKind, StoreBurstParams};
    let flood = Scenario::single(
        "store_flood",
        SegmentKind::StoreBurst(StoreBurstParams {
            burst: 32,
            loads_after: 2,
            lines_back: 8,
            gap: 0,
            pages: 16,
        }),
    );
    for cfg in all_configs() {
        let label = cfg.label();
        let s = Simulator::new(cfg)
            .run_source(&ScenarioSource::Scenario(flood.clone()), 12_000, 99)
            .expect("generator sources cannot fail");
        assert_eq!(s.core.committed, 12_000, "{label}");
        assert!(s.core.stores > 9_000, "{label}: flood is store-dominated");
    }
    // The preset (balanced) variant must also complete everywhere.
    for cfg in all_configs() {
        let label = cfg.label();
        let s = run_scenario(cfg, "store_burst", 12_000);
        assert_eq!(s.core.committed, 12_000, "{label}");
        assert!(s.core.stores > 2_000, "{label}: bursts persist");
    }
}

#[test]
fn bank_conflicts_serialize_the_single_ported_baseline() {
    // Stride-4-lines loads all land in one bank. Base2ld1st's extra read
    // port cannot help inside one bank either, but MALEC's grouping can
    // still batch same-page accesses; nobody may deadlock or lose ops.
    for cfg in all_configs() {
        let label = cfg.label();
        let s = run_scenario(cfg, "bank_conflict", 10_000);
        assert_eq!(s.core.committed, 10_000, "{label}");
    }
}

#[test]
fn mixed_sizes_and_subblock_crossers() {
    // 16-byte accesses that straddle sub-block boundaries.
    let trace: Vec<TraceInst> = (0..800)
        .map(|i| {
            if i % 2 == 0 {
                TraceInst::Load {
                    vaddr: VAddr::new(0xF008 + (i % 16) * 24),
                    size: 16,
                    addr_dep: None,
                }
            } else {
                TraceInst::Store {
                    vaddr: VAddr::new(0xF808 + (i % 16) * 24),
                    size: 16,
                    data_dep: None,
                }
            }
        })
        .collect();
    for cfg in all_configs() {
        let stats = run(&cfg, trace.clone());
        assert_eq!(stats.committed, 800, "{}", cfg.label());
    }
}
