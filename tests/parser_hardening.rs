//! Parser-hardening property suite for the hand-rolled `malec-serve`
//! parsers, mirroring the TraceReader corruption-hardening tests of PR 3:
//! the TOML spec parser, the JSON reader and the spec layer must return
//! `Ok`/`Err` on **arbitrary byte-string inputs** — never panic, never
//! overflow the stack, never allocate unboundedly.

use malec_serve::json;
use malec_serve::spec::parse_spec;
use malec_serve::toml;
use proptest::prelude::*;

/// Expands draws of `u64` words into raw bytes (the vendored proptest has
/// no byte-vector strategy; eight bytes per word is plenty of entropy).
fn bytes_of(words: &[u64]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// TOML-ish fragments that reach the parser's deeper paths (headers,
/// arrays of tables, strings, escapes, comments, malformed stubs).
const TOML_FRAGMENTS: [&str; 16] = [
    "[scenario]",
    "[[scenario.phase]]",
    "[a.b.c]",
    "[[",
    "[t",
    "key = \"value\"",
    "key = \"unterminated",
    "key = [1, 2, 3]",
    "key = [\"a\", \"b\"",
    "key = 1_000_000",
    "key = 99999999999999999999999999",
    "key = \"esc \\\" \\n \\t \\\\ end\"",
    "# just a comment",
    "= 5",
    "weight = 0.5e3",
    "x = \"a # not a comment\" # real one",
];

/// JSON-ish fragments exercising containers, escapes and malformed stubs.
const JSON_FRAGMENTS: [&str; 16] = [
    "{",
    "}",
    "[",
    "]",
    ",",
    ":",
    "\"key\"",
    "\"\\u0041\"",
    "\"\\u\"",
    "\"unterminated",
    "null",
    "true",
    "fals",
    "-1.5e-3",
    "1e999",
    "{\"a\": [1, {\"b\": []}]}",
];

fn assemble(picks: &[(u8, u64)], fragments: &[&str; 16], joiner: &str) -> String {
    picks
        .iter()
        .map(|&(idx, salt)| {
            let mut piece = fragments[(idx % 16) as usize].to_owned();
            // Sprinkle raw bytes into some fragments so boundaries between
            // structure and garbage are fuzzed too.
            if salt % 5 == 0 {
                piece.push_str(&String::from_utf8_lossy(&salt.to_le_bytes()));
            }
            piece
        })
        .collect::<Vec<_>>()
        .join(joiner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The TOML parser returns a result — never panics — on arbitrary
    /// bytes decoded lossily (the service hands it request bodies).
    fn toml_never_panics_on_arbitrary_bytes(words in proptest::collection::vec(proptest::num::u64::ANY, 0..64)) {
        let bytes = bytes_of(&words);
        let text = String::from_utf8_lossy(&bytes);
        let _ = toml::parse(&text);
    }

    /// Same for structured noise assembled from TOML-shaped fragments,
    /// which reaches the table/array/string paths plain garbage misses.
    fn toml_never_panics_on_structured_noise(picks in proptest::collection::vec((0u8..16, proptest::num::u64::ANY), 0..40)) {
        let doc = assemble(&picks, &TOML_FRAGMENTS, "\n");
        let _ = toml::parse(&doc);
    }

    /// The full spec layer (TOML parse + semantic validation) is panic-free
    /// on the same inputs — a bad spec over HTTP must always become a 400.
    fn spec_never_panics_on_structured_noise(picks in proptest::collection::vec((0u8..16, proptest::num::u64::ANY), 0..40)) {
        let doc = assemble(&picks, &TOML_FRAGMENTS, "\n");
        let _ = parse_spec(&doc);
    }

    /// The JSON reader is panic-free on arbitrary bytes (the CLI client
    /// hands it whatever a server returns).
    fn json_never_panics_on_arbitrary_bytes(words in proptest::collection::vec(proptest::num::u64::ANY, 0..64)) {
        let bytes = bytes_of(&words);
        let text = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&text);
    }

    /// JSON-shaped noise: container tokens in hostile orders, truncated
    /// escapes, oversized numbers.
    fn json_never_panics_on_structured_noise(picks in proptest::collection::vec((0u8..16, proptest::num::u64::ANY), 0..60)) {
        let doc = assemble(&picks, &JSON_FRAGMENTS, "");
        let _ = json::parse(&doc);
    }

    /// Valid documents corrupted at one byte stay panic-free (the mirror of
    /// the TraceReader single-byte corruption suite).
    fn corrupted_valid_spec_never_panics(offset in 0usize..220, byte in 0u8..255) {
        let good = "[scenario]\nname = \"p\"\nmode = \"mixed\"\nblock = 16\n\
                    [[scenario.part]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\nweight = 2\n\
                    [[scenario.part]]\nkind = \"store_burst\"\nburst = 8\n\
                    [sweep]\nconfigs = [\"MALEC\"]\ninsts = 1000\nseeds = 4\n";
        let mut bytes = good.as_bytes().to_vec();
        let at = offset % bytes.len();
        bytes[at] = byte;
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_spec(&text);
    }
}

#[test]
fn deep_toml_table_paths_error_cleanly() {
    // A 10k-segment dotted path used to build a 10k-deep nested table
    // whose destructor overflowed the stack (found by the proptest suite
    // above); the parser now bounds table-path depth.
    let deep_path = (0..10_000).map(|_| "a").collect::<Vec<_>>().join(".");
    let doc = format!("[{deep_path}]\nx = 1\n");
    assert!(toml::parse(&doc).is_err(), "pathological depth must error");
}

#[test]
fn json_hundred_thousand_brackets_error_cleanly() {
    // The regression the depth guard exists for: one byte per recursion
    // level used to overflow a worker thread's stack.
    let doc = "[".repeat(100_000);
    assert!(json::parse(&doc).is_err(), "deep nesting must be an error");
}
