//! Cache-log lifecycle acceptance tests: size-bounded eviction, atomic
//! compaction, and `/v1/cache/sync` peer warm-up.
//!
//! * **Serving consistency (proptest)** — over arbitrary interleavings of
//!   insert, lookup, compact, and capped reopen, every key the in-memory
//!   map serves is **bit-identical** to what an uncapped cold reopen of
//!   the current log serves. Eviction may lose availability; it must never
//!   lose correctness.
//! * **Kill mid-compaction** — a compaction torn mid-rewrite (the
//!   `cache.compact.torn` failpoint is `kill -9` in miniature) leaves the
//!   old log byte-identical; a retried compaction succeeds and a restarted
//!   server still serves everything from cache.
//! * **Peer warm-up** — a fresh server warmed over `/v1/cache/sync` serves
//!   a resubmitted spec with zero simulated cells and a per-cell report
//!   bit-identical to the donor's.
//! * **Auto-compaction** — eviction under a byte cap generates dead log
//!   bytes; crossing `compact_threshold` compacts in place without any
//!   operator action.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use malec_core::digest::digest;
use malec_core::{RunSummary, ScenarioSource, Simulator};
use malec_serve::client::Client;
use malec_serve::fault::Faults;
use malec_serve::http::request;
use malec_serve::json::parse;
use malec_serve::server::{ServeOptions, Server, ServerHandle};
use malec_serve::{cache, ResultCache};
use malec_trace::scenario::preset_named;
use malec_types::SimConfig;
use proptest::prelude::*;

/// A small two-cell spec reused across the e2e tests.
const SMALL_SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"tlb_thrash\"\n\
     [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 1500\nseed = 7\n";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("malec_lifecycle_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn serve(opts: ServeOptions) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", opts)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// The per-cell content of a server report — everything except timing.
fn report_cells(report: &str) -> String {
    let v = parse(report).expect("report is valid JSON");
    format!("{:?}", v.get("cells").expect("cells array"))
}

// ---------------------------------------------------------------------------
// Serving consistency under insert/evict/compact/reopen (proptest)
// ---------------------------------------------------------------------------

/// A pool of distinct summaries, simulated once: op sequences index into
/// it instead of re-running the simulator per proptest case.
fn pool() -> &'static Vec<Arc<RunSummary>> {
    static POOL: OnceLock<Vec<Arc<RunSummary>>> = OnceLock::new();
    POOL.get_or_init(|| {
        (0..6u64)
            .map(|seed| {
                let scenario = preset_named("store_burst").expect("preset");
                Arc::new(
                    Simulator::new(SimConfig::malec())
                        .run_source(&ScenarioSource::Scenario(scenario), 2_000, seed)
                        .expect("generator sources cannot fail"),
                )
            })
            .collect()
    })
}

fn pool_key(i: usize) -> u128 {
    0xC0FF_EE00 + i as u128
}

/// The invariant: every key the capped in-memory map serves is
/// bit-identical to what an uncapped cold reopen of the current log
/// serves. (The reverse need not hold — an evicted key lives only on
/// disk until the next compaction.)
fn assert_memory_matches_disk(capped: &mut ResultCache, path: &Path) {
    let mut cold = ResultCache::open(path).expect("cold reopen of a live log");
    for i in 0..pool().len() {
        let key = pool_key(i);
        if let Some(served) = capped.lookup(key) {
            let on_disk = cold.lookup(key);
            prop_assert!(
                on_disk.is_some(),
                "key {key:#x} serves from memory but is absent from the log"
            );
            prop_assert_eq!(
                digest(&served),
                digest(&on_disk.expect("checked")),
                "key {:#x}: memory and cold reopen disagree",
                key
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings of insert / lookup (an LRU touch) /
    /// compact / capped reopen preserve the serving invariant at every
    /// step, and eviction never leaves more than the cap plus the newest
    /// record resident.
    #[test]
    fn prop_interleaved_lifecycle_preserves_serving_consistency(
        ops in proptest::collection::vec((0u8..8, 0usize..6), 1..12),
    ) {
        let samples = pool();
        // Cap at roughly two records, so inserts beyond the second evict.
        let cap: u64 = samples
            .iter()
            .take(2)
            .map(|s| cache::encode_record(0, s).len() as u64)
            .sum();

        let dir = tmp_dir("prop");
        let path = dir.join(format!("interleave_{:x}.cache", fingerprint(&ops)));
        std::fs::remove_file(&path).ok();
        let mut c = ResultCache::open(&path)
            .expect("open")
            .with_max_bytes(Some(cap));

        for &(op, i) in &ops {
            match op {
                // Weighted toward inserts: they drive eviction and dead bytes.
                0..=4 => c
                    .insert_persist(pool_key(i), Arc::clone(&samples[i]))
                    .expect("insert"),
                5 => drop(c.lookup(pool_key(i))),
                6 => drop(c.compact().expect("compact")),
                7 => {
                    c = ResultCache::open(&path)
                        .expect("reopen")
                        .with_max_bytes(Some(cap));
                }
                _ => unreachable!(),
            }
            let stats = c.stats();
            prop_assert!(
                stats.live_bytes <= cap || stats.entries == 1,
                "cap {} exceeded with {} entries resident ({} live bytes)",
                cap, stats.entries, stats.live_bytes
            );
            assert_memory_matches_disk(&mut c, &path);
        }
        drop(c);
        std::fs::remove_file(&path).ok();
    }
}

/// A stable per-case fingerprint so concurrent proptest cases never share
/// a log file.
fn fingerprint(ops: &[(u8, usize)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(op, i) in ops {
        for b in [op, i as u8] {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Kill mid-compaction
// ---------------------------------------------------------------------------

/// A compaction that dies mid-rewrite must leave the old log intact (the
/// rename never ran); the temp is swept, a retry succeeds, and a restarted
/// server serves everything warm.
#[test]
fn kill_mid_compaction_leaves_the_old_log_intact_and_a_retry_succeeds() {
    let dir = tmp_dir("torn_compact");
    let cache_path = dir.join("results.cache");

    let faults = Faults::disarmed();
    faults.arm("cache.compact.torn", 1, Some(1)); // die after 1 rewritten record
    let server = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(cache_path.clone()),
        faults,
        ..ServeOptions::default()
    });
    let addr = server.addr();
    let client = Client::new(addr.to_string());
    let view = client
        .wait(
            client.submit(SMALL_SPEC).expect("submit"),
            Duration::from_secs(60),
        )
        .expect("wait");
    assert_eq!(view.simulated, 2);
    let pristine = std::fs::read(&cache_path).expect("read log");

    // First compaction hits the failpoint mid-rewrite.
    let (status, body) = request(addr, "POST", "/v1/cache/compact", b"").expect("request");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("torn"), "{body}");
    assert_eq!(
        std::fs::read(&cache_path).expect("reread").as_slice(),
        pristine.as_slice(),
        "a torn compaction must not touch the live log"
    );

    // The retry compacts for real; the log was already fully live, so the
    // record count is unchanged.
    let (status, body) = request(addr, "POST", "/v1/cache/compact", b"").expect("request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"live_records\": 2"), "{body}");
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    // Restart on the compacted log: zero simulations.
    let server = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(cache_path),
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string());
    let view = client
        .wait(
            client.submit(SMALL_SPEC).expect("resubmit"),
            Duration::from_secs(60),
        )
        .expect("wait");
    assert_eq!(view.simulated, 0, "the compacted log serves everything");
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Peer warm-up over /v1/cache/sync
// ---------------------------------------------------------------------------

/// A fresh server warmed from a running peer serves the same spec with
/// zero simulated cells and a per-cell report bit-identical to the
/// donor's.
#[test]
fn warmed_peer_serves_the_resubmission_without_simulating() {
    let dir = tmp_dir("warm");
    let donor = serve(ServeOptions {
        workers: Some(2),
        cache_path: Some(dir.join("donor.cache")),
        ..ServeOptions::default()
    });
    let donor_client = Client::new(donor.addr().to_string());
    let job = donor_client.submit(SMALL_SPEC).expect("submit");
    let view = donor_client
        .wait(job, Duration::from_secs(60))
        .expect("wait");
    assert_eq!(view.simulated, 2);
    let want = report_cells(&donor_client.report(job).expect("report"));

    // Bind the peer, warm it to 100% *before* it serves, then spawn.
    let peer = Server::bind_with(
        "127.0.0.1:0",
        ServeOptions {
            workers: Some(2),
            cache_path: Some(dir.join("peer.cache")),
            ..ServeOptions::default()
        },
    )
    .expect("bind peer");
    let report = peer
        .engine()
        .warm_from(&donor.addr().to_string())
        .expect("warm");
    assert_eq!(report.records, 2, "{report:?}");
    assert_eq!(report.inserted, 2, "{report:?}");
    assert!(report.damaged.is_none(), "{report:?}");
    let peer = peer.spawn().expect("spawn peer");

    let peer_client = Client::new(peer.addr().to_string());
    let job = peer_client.submit(SMALL_SPEC).expect("resubmit");
    let view = peer_client
        .wait(job, Duration::from_secs(60))
        .expect("wait");
    assert_eq!(view.simulated, 0, "warm-up covered every cell: {view:?}");
    assert_eq!(view.served_without_simulation(), view.cells);
    assert_eq!(
        report_cells(&peer_client.report(job).expect("report")),
        want,
        "the warmed peer's report must be bit-identical to the donor's"
    );

    donor_client.shutdown().expect("shutdown donor");
    peer_client.shutdown().expect("shutdown peer");
    donor.join().expect("clean exit");
    peer.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Auto-compaction under an eviction cap
// ---------------------------------------------------------------------------

/// Under a byte cap, every eviction strands a dead record in the log;
/// once the dead ratio crosses `compact_threshold`, the append that
/// crossed it compacts in place — no operator in the loop.
#[test]
fn eviction_generated_dead_bytes_trigger_auto_compaction() {
    let dir = tmp_dir("auto_compact");
    let server = serve(ServeOptions {
        workers: Some(1),
        cache_path: Some(dir.join("results.cache")),
        cache_max_bytes: Some(2_000),
        compact_threshold: Some(0.5),
        ..ServeOptions::default()
    });
    let client = Client::new(server.addr().to_string());

    // Distinct seeds make distinct cells: fill well past the cap.
    for seed in 0..12u64 {
        let spec = format!(
            "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
             [sweep]\nconfigs = [\"MALEC\"]\ninsts = 1500\nseed = {seed}\n",
        );
        let view = client
            .wait(
                client.submit(&spec).expect("submit"),
                Duration::from_secs(60),
            )
            .expect("wait");
        assert_eq!(view.state, "done");
    }

    let stats = client.cache_stats().expect("stats");
    assert!(stats.evicted > 0, "the cap must have evicted: {stats:?}");
    assert!(
        stats.compactions > 0,
        "eviction-generated dead bytes must have triggered compaction: {stats:?}"
    );
    assert!(
        stats.log_bytes < stats.bytes_appended,
        "the compacted log is smaller than the sum of appends: {stats:?}"
    );
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}
