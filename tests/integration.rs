//! Cross-crate integration tests: full simulations spanning the trace
//! generator, the out-of-order core, all three interfaces, the memory
//! hierarchy and the energy model.

use malec_harness::{
    all_benchmarks, InterfaceKind, LatencyVariant, SimConfig, Simulator, WayDetermination,
};

fn profile(name: &str) -> malec_harness::BenchmarkProfile {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

#[test]
fn every_figure4_config_completes_every_suite_representative() {
    for bench in ["gzip", "swim", "cjpeg"] {
        let p = profile(bench);
        for cfg in SimConfig::figure4_set() {
            let s = Simulator::new(cfg).run(&p, 4_000, 11);
            assert_eq!(s.core.committed, 4_000, "{bench}/{}", s.config);
            assert!(s.core.cycles > 0);
            assert!(s.energy.dynamic > 0.0);
        }
    }
}

#[test]
fn determinism_across_full_stack() {
    let p = profile("vortex");
    for cfg in [
        SimConfig::base1ldst(),
        SimConfig::base2ld1st(),
        SimConfig::malec(),
    ] {
        let a = Simulator::new(cfg.clone()).run(&p, 6_000, 17);
        let b = Simulator::new(cfg).run(&p, 6_000, 17);
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.l1_miss_rate, b.l1_miss_rate);
    }
}

#[test]
fn load_store_accounting_is_conserved() {
    let p = profile("parser");
    let s = Simulator::new(SimConfig::malec()).run(&p, 10_000, 3);
    // Every committed load was serviced by the interface.
    assert_eq!(s.core.loads, s.interface.loads_serviced);
    // Every committed store entered the store buffer.
    assert_eq!(s.core.stores, s.interface.stores_accepted);
    // Merged loads are a subset of serviced loads.
    assert!(s.interface.merged_loads <= s.interface.loads_serviced);
    // Group loads equal serviced loads (every MALEC load goes via a group).
    assert_eq!(s.interface.group_loads, s.interface.loads_serviced);
}

#[test]
fn way_determination_schemes_do_not_change_timing_relevant_residency() {
    // Coverage differs wildly between schemes, but the L1 *miss rate* must
    // stay essentially identical (way determination is an energy feature;
    // only the fill restriction may move it marginally).
    let p = profile("gzip");
    let wt = Simulator::new(SimConfig::malec()).run(&p, 15_000, 3);
    let wdu = Simulator::new(SimConfig::malec().with_way_determination(WayDetermination::Wdu(16)))
        .run(&p, 15_000, 3);
    assert!(
        (wt.l1_miss_rate - wdu.l1_miss_rate).abs() < 0.02,
        "wt {} vs wdu {}",
        wt.l1_miss_rate,
        wdu.l1_miss_rate
    );
    assert!(wt.interface.coverage() > wdu.interface.coverage());
}

#[test]
fn latency_variants_order_execution_time() {
    let p = profile("gap");
    let fast = Simulator::new(SimConfig::base2ld1st().with_latency(LatencyVariant::OneCycle))
        .run(&p, 20_000, 3);
    let mid = Simulator::new(SimConfig::base2ld1st()).run(&p, 20_000, 3);
    assert!(
        fast.core.cycles < mid.core.cycles,
        "1-cycle L1 must beat 2-cycle: {} vs {}",
        fast.core.cycles,
        mid.core.cycles
    );
    let m2 = Simulator::new(SimConfig::malec()).run(&p, 20_000, 3);
    let m3 = Simulator::new(SimConfig::malec().with_latency(LatencyVariant::ThreeCycle))
        .run(&p, 20_000, 3);
    assert!(
        m2.core.cycles < m3.core.cycles,
        "2-cycle MALEC must beat 3-cycle: {} vs {}",
        m2.core.cycles,
        m3.core.cycles
    );
}

#[test]
fn interface_kind_dispatch_matches_config() {
    let s = Simulator::new(SimConfig::malec());
    assert_eq!(s.config().interface, InterfaceKind::Malec);
    let p = profile("eon");
    let run = s.run(&p, 3_000, 1);
    assert!(run.interface.groups > 0, "MALEC must form page groups");
    let base = Simulator::new(SimConfig::base1ldst()).run(&p, 3_000, 1);
    assert_eq!(base.interface.groups, 0, "baselines have no page groups");
}

#[test]
fn energy_counters_are_internally_consistent() {
    let p = profile("swim");
    let s = Simulator::new(SimConfig::malec()).run(&p, 10_000, 7);
    let c = &s.counters;
    // Reduced accesses never touch the tag arrays: tag reads must not
    // exceed conventional accesses (+ MBE writes which check tags).
    assert!(c.l1_tag_bank_reads <= s.interface.conventional_accesses + s.interface.mbe_writes);
    // Each serviced group does exactly one uTLB lookup; stores may add more.
    assert!(c.utlb_lookups >= s.interface.groups);
    // Way-table reads happen at most once per serviced group; MBE-only
    // groups (no loads) also evaluate the entry once.
    assert!(c.uwt_reads <= s.interface.groups + s.interface.mbe_writes);
    // The breakdown's structure list covers the totals.
    let dyn_sum: f64 = s.energy.structures.iter().map(|x| x.dynamic).sum();
    assert!((dyn_sum - s.energy.dynamic).abs() < 1e-6 * s.energy.dynamic.max(1.0));
}

#[test]
fn all_38_benchmarks_run_under_malec() {
    for p in all_benchmarks() {
        let s = Simulator::new(SimConfig::malec()).run(&p, 1_500, 1);
        assert_eq!(s.core.committed, 1_500, "{}", p.name);
        assert!(s.core.ipc() > 0.05, "{}: ipc {}", p.name, s.core.ipc());
    }
}
