//! Acceptance tests for `malec-analyze`, the workspace-invariant lint
//! gate (tier-1: CI runs these on every change):
//!
//! * **The workspace is clean** — all four passes over the real source
//!   tree produce zero findings (this is the deny-by-default gate: a
//!   regression anywhere in the tree fails this test, not just the CI
//!   job);
//! * **The serve lock graph is acyclic** and contains exactly the
//!   documented `cache -> in_flight` nesting;
//! * **Synthetic violations** of each lint class are detected at their
//!   exact `file:line` — reversed lock nestings form a cycle, direct
//!   `.lock()` calls, every forbidden panic form, nondeterminism in a
//!   golden crate, and each failpoint-registry mismatch;
//! * **Suppressions** silence exactly one adjacent finding, demand a
//!   written reason, and rot loudly when they no longer bite.

use std::path::Path;

use malec_analyze::{analyze, find_root, load_workspace, Report, Source, PASSES};

fn src(path: &str, text: &str) -> Source {
    Source {
        path: path.to_owned(),
        text: text.to_owned(),
    }
}

/// `(line, lint)` pairs of a report's findings, for exact-site asserts.
fn sites(report: &Report) -> Vec<(u32, &str)> {
    report
        .findings
        .iter()
        .map(|f| (f.line, f.lint.as_str()))
        .collect()
}

// ---------------------------------------------------------------------------
// The real workspace
// ---------------------------------------------------------------------------

/// The deny-by-default gate: all four passes over the actual source tree
/// must come back clean, and the suppression budget must be in use (the
/// funnel's own `.lock()` is always annotated).
#[test]
fn the_workspace_passes_all_four_lints() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let sources = load_workspace(&root).expect("load workspace");
    let report = analyze(&sources, PASSES);
    assert!(
        report.findings.is_empty(),
        "the workspace must be lint-clean:\n{}",
        report.render(false)
    );
    assert!(report.files > 50, "walked the whole tree: {}", report.files);
    assert!(
        report.suppressed >= 1,
        "the sync funnel annotation must bite"
    );
}

/// The serve lock-acquisition graph is acyclic and contains the one
/// documented nesting: `cache` is taken before `in_flight`, and nothing
/// else nests.
#[test]
fn the_serve_lock_graph_is_acyclic_with_only_the_documented_edge() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let sources = load_workspace(&root).expect("load workspace");
    let report = analyze(&sources, &["lock-order"]);
    assert!(report.findings.is_empty(), "{}", report.render(true));
    let edges: Vec<(&str, &str)> = report
        .graph
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    assert_eq!(
        edges,
        [("cache", "in_flight")],
        "the only permitted nesting is cache before in_flight"
    );
}

// ---------------------------------------------------------------------------
// Synthetic violations, detected at exact file:line
// ---------------------------------------------------------------------------

#[test]
fn reversed_lock_nestings_form_a_reported_cycle() {
    let fixture = src(
        "crates/serve/src/synthetic.rs",
        "fn ab(&self) {\n\
         \x20   let a = lock(&self.alpha);\n\
         \x20   let b = lock(&self.beta);\n\
         }\n\
         fn ba(&self) {\n\
         \x20   let b = lock(&self.beta);\n\
         \x20   let a = lock(&self.alpha);\n\
         }\n",
    );
    let report = analyze(&[fixture], &["lock-order"]);
    assert_eq!(
        sites(&report),
        [(7, "lock-order")],
        "{}",
        report.render(true)
    );
    assert!(
        report.findings[0]
            .message
            .contains("alpha -> beta -> alpha"),
        "{}",
        report.findings[0]
    );
    assert_eq!(report.graph.len(), 2, "both nestings recorded");
}

#[test]
fn scope_aware_guard_tracking_respects_drop_and_blocks() {
    // `drop(a)` releases the guard, so the second acquisition does not
    // nest; the block-scoped guard dies at `}` before beta is taken.
    let fixture = src(
        "crates/serve/src/synthetic.rs",
        "fn f(&self) {\n\
         \x20   let a = lock(&self.alpha);\n\
         \x20   drop(a);\n\
         \x20   let b = lock(&self.beta);\n\
         }\n\
         fn g(&self) {\n\
         \x20   { let a = lock(&self.alpha); }\n\
         \x20   let b = lock(&self.beta);\n\
         }\n",
    );
    let report = analyze(&[fixture], &["lock-order"]);
    assert!(report.findings.is_empty(), "{}", report.render(true));
    assert!(report.graph.is_empty(), "no nesting survives the releases");
}

#[test]
fn direct_lock_calls_are_flagged_at_their_exact_site() {
    let fixture = src(
        "crates/serve/src/synthetic.rs",
        "fn ok(&self) {\n\
         \x20   let g = lock(&self.alpha);\n\
         }\n\
         fn bad(&self) {\n\
         \x20   let g = self.alpha.lock().unwrap();\n\
         }\n",
    );
    let report = analyze(&[fixture], &["lock-order"]);
    assert_eq!(
        sites(&report),
        [(5, "lock-order")],
        "{}",
        report.render(false)
    );
    assert!(report.findings[0].message.contains("funnel"));
}

#[test]
fn panic_surface_catches_each_forbidden_form_outside_tests() {
    let fixture = src(
        "crates/serve/src/json.rs",
        "fn f(x: Option<u8>) -> u8 {\n\
         \x20   let v = x.unwrap();\n\
         \x20   if v > 250 { panic!(\"big\") }\n\
         \x20   let s = [v, 2];\n\
         \x20   s[0]\n\
         }\n\
         #[cfg(test)]\n\
         mod tests { fn t(x: Option<u8>) { x.unwrap(); } }\n",
    );
    let report = analyze(&[fixture], &["panic-surface"]);
    assert_eq!(
        sites(&report),
        [
            (2, "panic-surface"),
            (3, "panic-surface"),
            (5, "panic-surface")
        ],
        "unwrap, panic!, and indexing — and nothing from the test module:\n{}",
        report.render(false)
    );
}

#[test]
fn determinism_catches_hash_collections_wall_clock_and_env() {
    let fixture = src(
        "crates/core/src/lib.rs",
        "use std::collections::HashMap;\n\
         fn when() -> std::time::Instant { std::time::Instant::now() }\n\
         fn home() -> Option<String> { std::env::var(\"HOME\").ok() }\n",
    );
    let report = analyze(&[fixture], &["determinism"]);
    let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, [1, 2, 2, 3], "{}", report.render(false));
    assert!(report.findings.iter().all(|f| f.lint == "determinism"));
}

#[test]
fn failpoint_registry_docs_sites_and_tests_are_cross_checked() {
    let fault = src(
        "crates/serve/src/fault.rs",
        "//! | `good.point`     | delay | fine |\n\
         //! | `unarmed.point`  | delay | fine |\n\
         //! | `untested.point` | delay | fine |\n\
         //! | `stale.point`    | delay | row outlived the point |\n\
         pub const KNOWN_POINTS: &[&str] = &[\n\
         \x20   \"good.point\",\n\
         \x20   \"undoc.point\",\n\
         \x20   \"unarmed.point\",\n\
         \x20   \"untested.point\",\n\
         ];\n",
    );
    let server = src(
        "crates/serve/src/server.rs",
        "fn f(&self) {\n\
         \x20   self.faults.check(\"good.point\");\n\
         \x20   self.faults.check_delay(\"good.point\");\n\
         \x20   self.faults.check(\"undoc.point\");\n\
         \x20   self.faults.check(\"untested.point\");\n\
         \x20   self.faults.check(\"rogue.point\");\n\
         }\n",
    );
    let tests = src(
        "tests/t.rs",
        "const REFS: &[&str] = &[\"good.point@1\", \"undoc.point\", \"unarmed.point\"];\n",
    );
    let report = analyze(&[fault, server, tests], &["failpoint-coverage"]);
    let got: Vec<(&str, u32, &str)> = report
        .findings
        .iter()
        .map(|f| {
            let which = [
                "good.point",
                "undoc.point",
                "unarmed.point",
                "untested.point",
                "stale.point",
                "rogue.point",
            ]
            .into_iter()
            .find(|n| f.message.contains(n))
            .expect("finding names its point");
            (f.path.as_str(), f.line, which)
        })
        .collect();
    assert_eq!(
        got,
        [
            // Registry-anchored findings (line of KNOWN_POINTS):
            ("crates/serve/src/fault.rs", 5, "undoc.point"), // no doc row
            ("crates/serve/src/fault.rs", 5, "unarmed.point"), // no call site
            ("crates/serve/src/fault.rs", 5, "untested.point"), // no test ref
            ("crates/serve/src/fault.rs", 5, "stale.point"), // stale doc row
            // Site-anchored findings:
            ("crates/serve/src/server.rs", 3, "good.point"), // second arming site
            ("crates/serve/src/server.rs", 6, "rogue.point"), // unregistered
        ],
        "{}",
        report.render(false)
    );
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

#[test]
fn suppressions_silence_one_site_demand_a_reason_and_rot_loudly() {
    let fixture = src(
        "crates/serve/src/json.rs",
        "fn f(x: Option<u8>) -> u8 {\n\
         \x20   // analyze: allow(panic-surface) fixture invariant holds by construction\n\
         \x20   x.unwrap()\n\
         }\n\
         fn g(x: Option<u8>) -> u8 {\n\
         \x20   // analyze: allow(panic-surface)\n\
         \x20   x.unwrap()\n\
         }\n\
         // analyze: allow(determinism) nothing below ever triggers this\n\
         fn h() {}\n",
    );
    let report = analyze(&[fixture], PASSES);
    assert_eq!(
        report.suppressed,
        2,
        "both unwraps silenced:\n{}",
        report.render(false)
    );
    assert_eq!(
        sites(&report),
        [(6, "annotation"), (9, "annotation")],
        "missing reason and dead suppression are findings:\n{}",
        report.render(false)
    );
    assert!(report.findings[0].message.contains("without a reason"));
    assert!(report.findings[1].message.contains("suppresses nothing"));
}

/// A suppression only reaches its own line and the line directly below —
/// a third-line finding still fires.
#[test]
fn a_suppression_does_not_leak_past_the_next_line() {
    let fixture = src(
        "crates/serve/src/json.rs",
        "// analyze: allow(panic-surface) covers only the next line\n\
         fn f(x: Option<u8>) { x.unwrap(); }\n\
         fn g(x: Option<u8>) { x.unwrap(); }\n",
    );
    let report = analyze(&[fixture], &["panic-surface"]);
    assert_eq!(report.suppressed, 1);
    assert_eq!(
        sites(&report),
        [(3, "panic-surface")],
        "{}",
        report.render(false)
    );
}
