//! End-to-end acceptance tests for the `malec-serve` batch service:
//!
//! * a spec submitted over HTTP produces per-cell results **bit-identical**
//!   to a local `malec-cli run` of the same spec (compared by behavioral
//!   digest, which folds every counter);
//! * resubmitting an identical spec is served **entirely** from the result
//!   cache — zero cells re-simulated — and the cache stats say so;
//! * four clients submitting the same spec **concurrently** all get
//!   bit-identical reports while the in-flight deduplication keeps the
//!   total number of simulations at one per unique cell;
//! * a persisted cache survives a server restart warm;
//! * a paired `[compare]` spec submitted over HTTP yields deltas
//!   bit-identical to a local `malec-cli compare` run — including across a
//!   server restart, with **zero** cells re-simulated.

use std::path::PathBuf;
use std::time::Duration;

use malec_cli::compare::compare_parsed_spec;
use malec_cli::run::run_parsed_spec;
use malec_serve::client::Client;
use malec_serve::json::{parse, Value};
use malec_serve::server::Server;
use malec_serve::spec::parse_spec;

/// The spec both sides run. Three Table I configurations = three cells.
fn spec_toml(name: &str) -> String {
    format!(
        "[scenario]\nname = \"{name}\"\nmode = \"mixed\"\nblock = 24\n\
         [[scenario.part]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\nweight = 2\n\
         [[scenario.part]]\nkind = \"store_burst\"\nweight = 1\n\
         [sweep]\nconfigs = [\"Base1ldst\", \"Base2ld1st\", \"MALEC\"]\ninsts = 4000\nseed = 17\n\
         [report]\nout = \"{name}.json\"\nmtr = \"{name}.mtr\"\n"
    )
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("malec_service_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// The `config -> digest` pairs of a server report, in cell order.
fn report_digests(report: &str) -> Vec<(String, String)> {
    let v = parse(report).expect("report is valid JSON");
    v.get("cells")
        .and_then(Value::as_array)
        .expect("cells array")
        .iter()
        .map(|c| {
            (
                c.get("config")
                    .and_then(Value::as_str)
                    .expect("config")
                    .to_owned(),
                c.get("digest")
                    .and_then(Value::as_str)
                    .expect("digest")
                    .to_owned(),
            )
        })
        .collect()
}

#[test]
fn submitted_jobs_match_local_runs_and_resubmission_is_fully_cached() {
    let dir = tmp_dir("roundtrip");
    let cache_path = dir.join("results.cache");
    let toml = spec_toml("svc_roundtrip");

    // Local ground truth: the ordinary record → sweep → replay-verify run.
    let local = run_parsed_spec(
        parse_spec(&toml).expect("spec parses"),
        "inline",
        &dir,
        None,
    )
    .expect("local run");
    assert!(local.all_replays_match());

    let server = Server::bind("127.0.0.1:0", Some(2), Some(&cache_path))
        .expect("bind")
        .spawn()
        .expect("spawn");
    let client = Client::new(server.addr().to_string());

    // First submission: cold cache, every cell simulated — and every cell
    // digest bit-identical to the local run.
    let first = client.submit(&toml).expect("submit");
    let view = client.wait(first, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.cells, 3);
    assert_eq!(view.simulated, 3, "cold cache simulates all cells");
    let server_digests = report_digests(&client.report(first).expect("report"));
    assert_eq!(server_digests.len(), local.cells.len());
    for (cell, (config, digest)) in local.cells.iter().zip(&server_digests) {
        assert_eq!(&cell.generated.config, config, "cell order is spec order");
        assert_eq!(
            &format!("{:#018x}", cell.digest),
            digest,
            "{config}: server cell must be bit-identical to the local run"
        );
    }

    // Second submission: identical spec, zero simulations.
    let second = client.submit(&toml).expect("resubmit");
    let view = client.wait(second, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.simulated, 0, "nothing may re-simulate");
    assert_eq!(
        view.served_without_simulation(),
        view.cells,
        "the resubmission is served entirely from the result cache"
    );
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.entries, 3);
    assert!(stats.hits >= 3, "stats record the cache service: {stats:?}");
    assert_eq!(
        report_digests(&client.report(second).expect("report")),
        server_digests,
        "cached report is bit-identical to the simulated one"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    // Restart on the same cache log: still zero simulations (warm disk).
    let server = Server::bind("127.0.0.1:0", Some(2), Some(&cache_path))
        .expect("rebind")
        .spawn()
        .expect("respawn");
    let client = Client::new(server.addr().to_string());
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.loaded, 3, "the log replays on open");
    let third = client.submit(&toml).expect("submit after restart");
    let view = client.wait(third, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.simulated, 0, "restarts keep the cache warm");
    assert_eq!(
        report_digests(&client.report(third).expect("report")),
        server_digests,
        "persisted summaries are bit-identical"
    );
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paired_compare_survives_restart_and_matches_local_with_zero_resimulation() {
    let dir = tmp_dir("compare");
    let cache_path = dir.join("results.cache");
    let toml = "[scenario]\nname = \"svc_cmp\"\nmode = \"mixed\"\nblock = 24\n\
                [[scenario.part]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\nweight = 2\n\
                [[scenario.part]]\nkind = \"store_burst\"\nweight = 1\n\
                [compare]\nbaseline = \"Base1ldst\"\ncandidate = \"MALEC\"\nalpha = 0.05\n\
                [sweep]\ninsts = 4000\nseed = 17\nseeds = 4\n\
                [report]\nout = \"svc_cmp.json\"\nmtr = \"svc_cmp.mtr\"\ncompare = \"svc_cmp_compare.json\"\n";

    // Local ground truth: the `malec-cli compare` pipeline.
    let local = compare_parsed_spec(parse_spec(toml).expect("spec parses"), "inline", &dir, None)
        .expect("local compare");
    assert_eq!(local.stats.n, 4);

    // The comparative fingerprint of a compare report: its behavioral
    // digest and the parsed delta blocks (run facts like workers/wall may
    // legitimately differ between drivers).
    let fingerprint = |json: &str| {
        let v = parse(json).expect("compare report is valid JSON");
        (
            v.get("digest")
                .and_then(Value::as_str)
                .expect("digest")
                .to_owned(),
            format!("{:?}", v.get("deltas").expect("deltas")),
            v.get("workload")
                .and_then(|w| w.get("replicates"))
                .and_then(Value::as_u64)
                .expect("replicates"),
        )
    };
    let want = fingerprint(&local.json);

    // Cold server: submit the paired spec, fetch /compare.
    let server = Server::bind("127.0.0.1:0", Some(2), Some(&cache_path))
        .expect("bind")
        .spawn()
        .expect("spawn");
    let client = Client::new(server.addr().to_string());
    let first = client.submit(toml).expect("submit");
    let view = client.wait(first, Duration::from_secs(120)).expect("wait");
    assert_eq!(view.cells, 8, "2 sides x 4 shared seeds");
    assert_eq!(view.simulated, 8, "cold cache simulates everything");
    let served = client.compare(first).expect("compare");
    assert_eq!(
        fingerprint(&served),
        want,
        "served deltas must be bit-identical to the local compare"
    );
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    // Restart on the same cache log and resubmit: the comparison is
    // assembled entirely from persisted cells — zero re-simulated.
    let server = Server::bind("127.0.0.1:0", Some(2), Some(&cache_path))
        .expect("rebind")
        .spawn()
        .expect("respawn");
    let client = Client::new(server.addr().to_string());
    let second = client.submit(toml).expect("resubmit after restart");
    let view = client.wait(second, Duration::from_secs(120)).expect("wait");
    assert_eq!(
        view.simulated, 0,
        "restart + resubmission must not simulate a single cell"
    );
    assert_eq!(view.served_without_simulation(), view.cells);
    let served = client.compare(second).expect("compare after restart");
    assert_eq!(
        fingerprint(&served),
        want,
        "cache-served deltas are bit-identical to the local compare"
    );
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_overlapping_submissions_are_deduped_and_bit_identical() {
    let dir = tmp_dir("concurrent");
    let toml = spec_toml("svc_concurrent");

    // Serial local ground truth (jobs = 1: strictly serial execution).
    let local = run_parsed_spec(
        parse_spec(&toml).expect("spec parses"),
        "inline",
        &dir,
        Some(1),
    )
    .expect("serial local run");
    let expected: Vec<(String, String)> = local
        .cells
        .iter()
        .map(|c| (c.generated.config.clone(), format!("{:#018x}", c.digest)))
        .collect();

    let server = Server::bind("127.0.0.1:0", Some(4), None)
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = server.addr().to_string();

    // Four clients, same spec, simultaneously.
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let toml = toml.clone();
                scope.spawn(move || {
                    let client = Client::new(addr);
                    let job = client.submit(&toml).expect("submit");
                    client.wait(job, Duration::from_secs(120)).expect("wait");
                    client.report(job).expect("report")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for report in &reports {
        assert_eq!(
            report_digests(report),
            expected,
            "every concurrent client gets cells bit-identical to the serial local run"
        );
    }

    let client = Client::new(addr);
    let stats = client.cache_stats().expect("stats");
    assert_eq!(
        stats.misses, 3,
        "in-flight dedup: 4 overlapping jobs x 3 cells simulate each unique cell once"
    );
    assert_eq!(stats.entries, 3);
    assert_eq!(
        stats.hits + stats.coalesced,
        9,
        "the other nine cells were served without simulating"
    );
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}
