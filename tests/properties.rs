//! Property-based integration tests over the full simulator stack.

use proptest::prelude::*;

use malec_harness::{all_benchmarks, SimConfig, Simulator};
use malec_types::addr::{LineAddr, VPageId, WayId};

use malec_core::waytable::WaySlots;
use malec_mem::hierarchy::MemoryHierarchy;
use malec_mem::tlb::PageTable;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator must complete and conserve instruction counts for any
    /// benchmark and any small instruction budget.
    #[test]
    fn prop_simulation_conserves_instructions(
        bench_idx in 0usize..38,
        insts in 200u64..1_500,
        seed in 0u64..1_000,
    ) {
        let profile = &all_benchmarks()[bench_idx];
        let s = Simulator::new(SimConfig::malec()).run(profile, insts, seed);
        prop_assert_eq!(s.core.committed, insts);
        prop_assert_eq!(
            s.core.committed,
            s.core.loads + s.core.stores + s.core.branches
                + (s.core.committed - s.core.loads - s.core.stores - s.core.branches)
        );
        prop_assert!(s.core.cycles >= insts / 6, "IPC cannot exceed dispatch width");
    }

    /// Way-table contents always agree with actual cache residency: a
    /// predicted way must match where the hierarchy put the line.
    #[test]
    fn prop_waytable_residency_agreement(lines in proptest::collection::vec(0u64..4096, 1..200)) {
        let cfg = SimConfig::malec();
        let mut mem = MemoryHierarchy::for_config(&cfg);
        let mut slots: std::collections::HashMap<u64, WaySlots> = std::collections::HashMap::new();
        for raw in lines {
            let line = LineAddr::new(raw);
            let page = raw / 64;
            let lip = (raw % 64) as u8;
            let exclusion = WaySlots::new(64, 4, 4).excluded_way(lip);
            let out = mem.resolve_line(line, Some(exclusion));
            let entry = slots.entry(page).or_insert_with(|| WaySlots::new(64, 4, 4));
            if let Some(fill) = out.fill {
                if let Some(ev) = fill.evicted {
                    let epage = ev.raw() / 64;
                    let elip = (ev.raw() % 64) as u8;
                    if let Some(e) = slots.get_mut(&epage) {
                        e.clear(elip);
                    }
                    // Entry may have been replaced; re-borrow ours.
                }
                slots
                    .entry(page)
                    .or_insert_with(|| WaySlots::new(64, 4, 4))
                    .set(lip, fill.way);
            } else if let Some(way) = entry.get(lip) {
                prop_assert_eq!(way, out.way, "stale way info for line {}", raw);
            }
        }
        // Final check: every valid slot matches the cache's actual placement.
        for (page, entry) in &slots {
            for lip in 0..64u8 {
                if let Some(way) = entry.get(lip) {
                    let line = LineAddr::new(page * 64 + u64::from(lip));
                    if let Some(actual) = mem.probe_l1(line) {
                        prop_assert_eq!(way, actual);
                    }
                }
            }
        }
    }

    /// Virtual→physical translation is a function (same input, same output)
    /// and two different interfaces see identical physical placements.
    #[test]
    fn prop_translation_is_stable(vpages in proptest::collection::vec(0u64..(1 << 20), 1..64)) {
        let pt = PageTable::default();
        for v in vpages {
            let a = pt.translate(VPageId::new(v));
            let b = pt.translate(VPageId::new(v));
            prop_assert_eq!(a, b);
        }
    }

    /// Excluded ways rotate over line groups such that within any 16
    /// consecutive lines every way is excluded exactly 4 times (the paper's
    /// bank-aligned rotation).
    #[test]
    fn prop_excluded_way_rotation_is_balanced(start in 0u8..48) {
        let slots = WaySlots::new(64, 4, 4);
        let mut counts = [0u32; 4];
        for l in start..start + 16 {
            counts[slots.excluded_way(l).0 as usize] += 1;
        }
        prop_assert_eq!(counts, [4, 4, 4, 4]);
    }

    /// Energy accounting is additive: the counters of two half-runs priced
    /// separately equal the price of their sum.
    #[test]
    fn prop_energy_pricing_is_linear(
        a_reads in 0u64..1000, a_tags in 0u64..1000,
        b_reads in 0u64..1000, b_tags in 0u64..1000,
        cycles_a in 0u64..10_000, cycles_b in 0u64..10_000,
    ) {
        use malec_energy::{EnergyCounters, EnergyModel};
        let model = EnergyModel::for_config(&SimConfig::malec());
        let ca = EnergyCounters {
            l1_data_subblock_reads: a_reads,
            l1_tag_bank_reads: a_tags,
            ..Default::default()
        };
        let cb = EnergyCounters {
            l1_data_subblock_reads: b_reads,
            l1_tag_bank_reads: b_tags,
            ..Default::default()
        };
        let separate = model.evaluate(&ca, cycles_a).total() + model.evaluate(&cb, cycles_b).total();
        let combined = model.evaluate(&(ca + cb), cycles_a + cycles_b).total();
        prop_assert!((separate - combined).abs() < 1e-6 * combined.max(1.0));
    }
}

#[test]
fn way_id_bounds_are_respected_everywhere() {
    // Deterministic complement to the proptests: exhaustive check of the
    // 2-bit encoding over every line and way.
    let mut slots = WaySlots::new(64, 4, 4);
    for l in 0..64u8 {
        for w in 0..4u8 {
            let representable = slots.set(l, WayId(w));
            match slots.get(l) {
                Some(got) => {
                    assert!(representable);
                    assert_eq!(got, WayId(w));
                    assert!(got.0 < 4);
                }
                None => assert!(!representable),
            }
        }
    }
}
