//! The workload MALEC's introduction motivates: a media-decode kernel with
//! frequent, highly structured memory accesses (djpeg-style). Shows how
//! page-based grouping turns the structure into parallelism and how the
//! L1-latency variants shift the result (Fig. 4 variants).
//!
//! ```sh
//! cargo run -p malec-harness --example media_decode --release
//! ```

use malec_harness::{benchmarks_of, LatencyVariant, SimConfig, Simulator, Suite};

fn main() {
    let insts = 50_000;
    println!(
        "MediaBench2-style decode kernels, {} instructions each\n",
        insts
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "benchmark", "Base1ldst", "Base2ld1st", "MALEC", "MALEC_3cyc", "merge[%]", "cov[%]"
    );
    for profile in benchmarks_of(Suite::MediaBench2)
        .into_iter()
        .filter(|b| b.name.ends_with("dec"))
    {
        let base1 = Simulator::new(SimConfig::base1ldst()).run(&profile, insts, 3);
        let base2 = Simulator::new(SimConfig::base2ld1st()).run(&profile, insts, 3);
        let malec = Simulator::new(SimConfig::malec()).run(&profile, insts, 3);
        let malec3 = Simulator::new(SimConfig::malec().with_latency(LatencyVariant::ThreeCycle))
            .run(&profile, insts, 3);
        let pct = |c: u64| 100.0 * c as f64 / base1.core.cycles as f64;
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>8.1} {:>7.1}",
            profile.name,
            pct(base1.core.cycles),
            pct(base2.core.cycles),
            pct(malec.core.cycles),
            pct(malec3.core.cycles),
            100.0 * malec.interface.merge_ratio(),
            100.0 * malec.interface.coverage(),
        );
    }
    println!(
        "\nStructured decoder loops stride through image rows, so consecutive\n\
         loads share pages and lines: MALEC groups them behind one translation\n\
         and merges same-line loads — the paper reports ~30% speedups for\n\
         djpeg/h263dec and a 21% average improvement for MediaBench2."
    );
}
