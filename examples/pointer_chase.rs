//! The adversarial workload: mcf-style pointer chasing over a huge working
//! set. Way prediction degrades (Sec. VI-D), but load merging across a
//! node's field accesses still cuts the effective number of cache accesses —
//! the mechanism behind the paper's surprising mcf dynamic-energy result.
//!
//! ```sh
//! cargo run -p malec-harness --example pointer_chase --release
//! ```

use malec_harness::{all_benchmarks, SimConfig, Simulator};

fn main() {
    let insts = 60_000;
    let mcf = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "mcf")
        .expect("mcf profile exists");

    let base1 = Simulator::new(SimConfig::base1ldst()).run(&mcf, insts, 5);
    let malec = Simulator::new(SimConfig::malec()).run(&mcf, insts, 5);
    let malec_nomerge =
        Simulator::new(SimConfig::malec().with_load_merging(false)).run(&mcf, insts, 5);

    println!("mcf-style pointer chasing, {} instructions\n", insts);
    println!(
        "L1 miss rate:            {:5.1}%  (the paper's ~7x-average outlier)",
        100.0 * malec.l1_miss_rate
    );
    println!(
        "way-table coverage:      {:5.1}%  (streaming hurts way prediction)",
        100.0 * malec.interface.coverage()
    );
    println!(
        "merged loads:            {:5.1}%  (fields of one node share a line)",
        100.0 * malec.interface.merge_ratio()
    );
    println!();
    println!(
        "dynamic energy vs Base1ldst:   with merging {:6.1}%   without {:6.1}%",
        100.0 * malec.energy.dynamic / base1.energy.dynamic,
        100.0 * malec_nomerge.energy.dynamic / base1.energy.dynamic,
    );
    println!(
        "execution time vs Base1ldst:   with merging {:6.1}%   without {:6.1}%",
        100.0 * malec.core.cycles as f64 / base1.core.cycles as f64,
        100.0 * malec_nomerge.core.cycles as f64 / base1.core.cycles as f64,
    );
    println!(
        "\nEvery avoided duplicate access on mcf is an avoided *miss-path* access,\n\
         which is why sharing L1 data among same-line loads matters so much here\n\
         (the paper reports -51% dynamic energy with merging vs +5% without)."
    );
}
