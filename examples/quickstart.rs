//! Quickstart: simulate one benchmark under the three Table I interfaces and
//! print the headline comparison the paper is about.
//!
//! ```sh
//! cargo run -p malec-harness --example quickstart --release
//! ```

use malec_harness::{all_benchmarks, SimConfig, Simulator};

fn main() {
    let profile = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "gzip")
        .expect("gzip profile exists");
    let insts = 60_000;

    println!(
        "simulating {} instructions of `{}` …\n",
        insts, profile.name
    );
    let base1 = Simulator::new(SimConfig::base1ldst()).run(&profile, insts, 1);
    let base2 = Simulator::new(SimConfig::base2ld1st()).run(&profile, insts, 1);
    let malec = Simulator::new(SimConfig::malec()).run(&profile, insts, 1);

    println!(
        "{:<12} {:>9} {:>6} {:>12} {:>12} {:>10}",
        "config", "cycles", "IPC", "time vs B1", "energy vs B1", "coverage"
    );
    for run in [&base1, &base2, &malec] {
        println!(
            "{:<12} {:>9} {:>6.2} {:>11.1}% {:>11.1}% {:>9.1}%",
            run.config,
            run.core.cycles,
            run.core.ipc(),
            100.0 * run.core.cycles as f64 / base1.core.cycles as f64,
            100.0 * run.total_energy() / base1.total_energy(),
            100.0 * run.interface.coverage(),
        );
    }

    println!(
        "\nMALEC serviced {} page groups (mean size {:.2} loads), merged {} loads \
         ({:.1}% of serviced loads),",
        malec.interface.groups,
        malec.interface.mean_group_size(),
        malec.interface.merged_loads,
        100.0 * malec.interface.merge_ratio(),
    );
    println!(
        "and performed {} address translations vs {} for Base2ld1st.",
        malec.interface.translations, base2.interface.translations
    );
}
