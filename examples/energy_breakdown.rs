//! Per-structure energy dissection: where the L1 data memory subsystem's
//! energy actually goes under each interface, for one benchmark.
//!
//! ```sh
//! cargo run -p malec-harness --example energy_breakdown --release
//! ```

use malec_harness::{all_benchmarks, SimConfig, Simulator};

fn main() {
    let profile = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "equake")
        .expect("equake profile exists");
    let insts = 60_000;

    for cfg in [
        SimConfig::base1ldst(),
        SimConfig::base2ld1st(),
        SimConfig::malec(),
    ] {
        let run = Simulator::new(cfg).run(&profile, insts, 1);
        println!(
            "\n=== {} on `{}` — total {:.0} units ({:.0} dynamic + {:.0} leakage) ===",
            run.config,
            profile.name,
            run.total_energy(),
            run.energy.dynamic,
            run.energy.leakage
        );
        println!(
            "{:<16} {:>12} {:>12} {:>8}",
            "structure", "dynamic", "leakage", "share"
        );
        for s in &run.energy.structures {
            println!(
                "{:<16} {:>12.0} {:>12.0} {:>7.1}%",
                s.name,
                s.dynamic,
                s.leakage,
                100.0 * s.total() / run.total_energy()
            );
        }
        println!(
            "excluded (SB/MB/IB lookups, paper Sec. VI-A): {:.0} dynamic units",
            run.energy.excluded_dynamic
        );
    }
    println!(
        "\nNote how Base2ld1st pays the multi-port premium on every structure,\n\
         while MALEC adds small uWT/WT arrays but slashes tag and data activity."
    );
}
