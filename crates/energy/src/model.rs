//! Per-configuration structure instantiation and report building.
//!
//! Following Sec. VI-A of the paper, the accounted structures are the L1
//! data cache (tag and data arrays), uTLB+uWT and TLB+WT (plus the WDU when
//! it substitutes the way tables). LQ, SB and MB energy "is very similar for
//! all analyzed configurations" and is excluded from the headline totals —
//! their counters are still priced and reported separately so the
//! simplification can be inspected.

use serde::Serialize;

use malec_types::config::{PortConfig, SimConfig, WayDetermination};

use crate::counters::EnergyCounters;
use crate::sram::{CamArray, SramArray, SramParams};

/// Dynamic/leakage energy attributed to one structure.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct StructureEnergy {
    /// Structure name (e.g. `"L1 tag arrays"`).
    pub name: &'static str,
    /// Dynamic energy over the run (model units).
    pub dynamic: f64,
    /// Leakage energy over the run (model units).
    pub leakage: f64,
}

impl StructureEnergy {
    /// Dynamic + leakage.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }
}

/// Evaluated energy of one simulation run.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct EnergyBreakdown {
    /// Total dynamic energy of the accounted structures.
    pub dynamic: f64,
    /// Total leakage energy of the accounted structures.
    pub leakage: f64,
    /// Per-structure split of the accounted totals.
    pub structures: Vec<StructureEnergy>,
    /// Energy of structures the paper excludes (LQ/SB/MB lookups, input
    /// buffer, arbitration comparators) — reported but not in the totals.
    pub excluded_dynamic: f64,
}

impl EnergyBreakdown {
    /// Dynamic + leakage of the accounted structures.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }
}

/// The canonical set of structure names [`EnergyModel::evaluate`] can
/// attribute energy to. Deserializers intern decoded names through this
/// list, so [`StructureEnergy::name`] stays `&'static str` even for
/// breakdowns loaded back from a persisted result cache.
pub const STRUCTURE_NAMES: &[&str] = &[
    "L1 tag arrays",
    "L1 data arrays",
    "uTLB",
    "TLB",
    "uWT",
    "WT",
    "WDU",
];

/// Maps a decoded structure name back to its canonical `&'static str`, or
/// `None` for a name this build does not know (a cache written by a newer,
/// incompatible version).
pub fn intern_structure_name(name: &str) -> Option<&'static str> {
    STRUCTURE_NAMES.iter().find(|&&n| n == name).copied()
}

/// Energy model for one [`SimConfig`]: instantiates every accounted array
/// with the configuration's geometry and port counts, then prices an
/// [`EnergyCounters`] ledger.
///
/// # Example
///
/// ```
/// use malec_energy::{EnergyCounters, EnergyModel};
/// use malec_types::SimConfig;
///
/// let base = EnergyModel::for_config(&SimConfig::base1ldst());
/// let malec = EnergyModel::for_config(&SimConfig::malec());
/// let idle = EnergyCounters::default();
/// // MALEC leaks more at idle: the way tables are extra state.
/// assert!(malec.evaluate(&idle, 1000).leakage > base.evaluate(&idle, 1000).leakage);
/// ```
#[derive(Clone, Debug)]
pub struct EnergyModel {
    l1_tag_bank: SramArray,
    l1_data_way: SramArray,
    sub_block_bits: u64,
    l1_banks: u32,
    l1_ways: u32,
    utlb: CamArray,
    utlb_reverse: CamArray,
    tlb: CamArray,
    tlb_reverse: CamArray,
    utlb_entries: u64,
    tlb_entries: u64,
    uwt: Option<SramArray>,
    wt: Option<SramArray>,
    wdu: Option<CamArray>,
    sb_full: CamArray,
    sb_page: CamArray,
    sb_narrow: CamArray,
    mb_full: CamArray,
    mb_page: CamArray,
    mb_narrow: CamArray,
    compare_bit_energy: f64,
    line_bits: u64,
}

impl EnergyModel {
    /// Builds the model for a configuration with default (calibrated)
    /// technology parameters.
    pub fn for_config(config: &SimConfig) -> Self {
        Self::with_params(config, SramParams::default())
    }

    /// Builds the model with explicit technology parameters.
    pub fn with_params(config: &SimConfig, params: SramParams) -> Self {
        let page_bits = u64::from(config.address_bits - config.page.page_offset_bits());
        let line_offset_bits = u64::from(config.page.line_offset_bits());
        let in_page_line_bits = u64::from(config.address_bits) - page_bits - line_offset_bits;
        let cache_ports = config.cache_ports();
        let tlb_ports = config.tlb_ports();
        let tlb_read_ports = tlb_ports.read_capable();

        let l1 = config.l1;
        let tag_bits = u64::from(l1.tag_bits(config.address_bits));
        let line_bits = l1.line_bytes() * 8;
        // Tag bank: one row per set, all ways' tags (+state bits) in the row.
        let l1_tag_bank = SramArray::new(
            "L1 tag arrays",
            u64::from(l1.sets_per_bank()),
            (tag_bits + 2) * u64::from(l1.ways()),
            cache_ports,
            params,
        );
        // Data way: one row per set, a full line per row; sub-blocking means
        // an access activates only `sub_block_bits`-sized slices.
        let l1_data_way = SramArray::new(
            "L1 data arrays",
            u64::from(l1.sets_per_bank()),
            line_bits,
            cache_ports,
            params,
        );

        // TLB payload: physical page id + permission bits.
        let tlb_payload = page_bits + 4;
        let utlb = CamArray::new(
            "uTLB",
            u64::from(config.utlb_entries),
            page_bits,
            tlb_payload,
            tlb_read_ports,
            params,
        );
        let tlb = CamArray::new(
            "TLB",
            u64::from(config.tlb_entries),
            page_bits,
            tlb_payload,
            tlb_read_ports,
            params,
        );
        // Reverse lookups: separate fully-associative physical tag arrays
        // over the same entries (Sec. VI-A), single-ported.
        let utlb_reverse = CamArray::new(
            "uTLB reverse tags",
            u64::from(config.utlb_entries),
            page_bits,
            0,
            1,
            params,
        );
        let tlb_reverse = CamArray::new(
            "TLB reverse tags",
            u64::from(config.tlb_entries),
            page_bits,
            0,
            1,
            params,
        );

        // Way tables: 2 bits per line in the page, one entry per TLB entry.
        let wt_entry_bits = 2 * u64::from(config.page.lines_per_page());
        let (uwt, wt, wdu) = match config.way_determination {
            WayDetermination::WayTables | WayDetermination::WayTablesNoFeedback => (
                Some(SramArray::new(
                    "uWT",
                    u64::from(config.utlb_entries),
                    wt_entry_bits,
                    PortConfig::SINGLE,
                    params,
                )),
                Some(SramArray::new(
                    "WT",
                    u64::from(config.tlb_entries),
                    wt_entry_bits,
                    PortConfig::SINGLE,
                    params,
                )),
                None,
            ),
            WayDetermination::Wdu(entries) => (
                None,
                None,
                Some(CamArray::new(
                    "WDU",
                    u64::from(entries.max(1)),
                    // Line-granularity tags: everything above the line offset.
                    u64::from(config.address_bits) - line_offset_bits,
                    // Payload: validity + way id.
                    3,
                    // Four lookup ports for this MALEC configuration
                    // (Sec. VI-C).
                    4,
                    params,
                )),
            ),
            WayDetermination::None => (None, None, None),
        };

        // Store/merge buffer lookup structures. Full-width comparators for
        // the baselines; split page-segment + narrow comparators for MALEC.
        let full_cmp_bits = u64::from(config.address_bits) - 2; // word-aligned
        let narrow_bits = in_page_line_bits + (line_offset_bits - 2);
        let sb_entries = u64::from(config.sb_entries);
        let mb_entries = u64::from(config.mb_entries);
        let sb_full = CamArray::new("SB lookup (full)", sb_entries, full_cmp_bits, 0, 1, params);
        let sb_page = CamArray::new(
            "SB lookup (page segment)",
            sb_entries,
            page_bits,
            0,
            1,
            params,
        );
        let sb_narrow = CamArray::new("SB lookup (narrow)", sb_entries, narrow_bits, 0, 1, params);
        let mb_full = CamArray::new("MB lookup (full)", mb_entries, full_cmp_bits, 0, 1, params);
        let mb_page = CamArray::new(
            "MB lookup (page segment)",
            mb_entries,
            page_bits,
            0,
            1,
            params,
        );
        let mb_narrow = CamArray::new("MB lookup (narrow)", mb_entries, narrow_bits, 0, 1, params);

        Self {
            l1_tag_bank,
            l1_data_way,
            sub_block_bits: u64::from(l1.sub_block_bits()),
            l1_banks: l1.banks(),
            l1_ways: l1.ways(),
            utlb,
            utlb_reverse,
            tlb,
            tlb_reverse,
            utlb_entries: u64::from(config.utlb_entries),
            tlb_entries: u64::from(config.tlb_entries),
            uwt,
            wt,
            wdu,
            sb_full,
            sb_page,
            sb_narrow,
            mb_full,
            mb_page,
            mb_narrow,
            compare_bit_energy: params.c_cam,
            line_bits,
        }
    }

    /// Prices a counter ledger over `cycles` cycles of leakage.
    pub fn evaluate(&self, c: &EnergyCounters, cycles: u64) -> EnergyBreakdown {
        let cyc = cycles as f64;
        let mut structures = Vec::with_capacity(8);

        // --- L1 ---
        let tag_dyn = c.l1_tag_bank_reads as f64 * self.l1_tag_bank.read_energy(u64::MAX)
            + c.l1_tag_bank_writes as f64
                * self.l1_tag_bank.write_energy(self.l1_tag_bank.bits() / 32);
        let tag_leak = self.l1_tag_bank.leakage_per_cycle() * f64::from(self.l1_banks) * cyc;
        structures.push(StructureEnergy {
            name: "L1 tag arrays",
            dynamic: tag_dyn,
            leakage: tag_leak,
        });

        let sub_read = self.l1_data_way.read_energy(self.sub_block_bits);
        let sub_write = self.l1_data_way.write_energy(self.sub_block_bits);
        let data_dyn = c.l1_data_subblock_reads as f64 * sub_read
            + c.l1_data_subblock_writes as f64 * sub_write;
        let data_leak =
            self.l1_data_way.leakage_per_cycle() * f64::from(self.l1_banks * self.l1_ways) * cyc;
        structures.push(StructureEnergy {
            name: "L1 data arrays",
            dynamic: data_dyn,
            leakage: data_leak,
        });

        // --- TLBs (incl. reverse tag arrays) ---
        // Reverse (physical) tag arrays exist only to maintain way-table
        // validity; the baselines and the WDU variant do not pay for them.
        let has_reverse = self.uwt.is_some();
        let utlb_dyn = c.utlb_lookups as f64 * self.utlb.search_energy()
            + c.utlb_fills as f64 * self.utlb.write_energy()
            + c.utlb_reverse_lookups as f64 * self.utlb_reverse.search_tags_only_energy();
        let utlb_leak = (self.utlb.leakage_per_cycle()
            + if has_reverse {
                self.utlb_reverse.leakage_per_cycle()
            } else {
                0.0
            })
            * cyc;
        structures.push(StructureEnergy {
            name: "uTLB",
            dynamic: utlb_dyn,
            leakage: utlb_leak,
        });

        let tlb_dyn = c.tlb_lookups as f64 * self.tlb.search_energy()
            + c.tlb_fills as f64 * self.tlb.write_energy()
            + c.tlb_reverse_lookups as f64 * self.tlb_reverse.search_tags_only_energy();
        let tlb_leak = (self.tlb.leakage_per_cycle()
            + if has_reverse {
                self.tlb_reverse.leakage_per_cycle()
            } else {
                0.0
            })
            * cyc;
        structures.push(StructureEnergy {
            name: "TLB",
            dynamic: tlb_dyn,
            leakage: tlb_leak,
        });

        // --- Way determination ---
        // Way-info reads evaluate 2 bits per bank regardless of how many
        // references the entry services (Sec. V: "the energy consumed to
        // evaluate WT entries is independent of the number of memory
        // references to be serviced in parallel").
        let way_read_bits = u64::from(2 * self.l1_banks);
        if let Some(uwt) = &self.uwt {
            let entry_bits = uwt.bits() / self.utlb_entries;
            let dynamic = c.uwt_reads as f64 * uwt.read_energy(way_read_bits)
                + c.uwt_writes as f64 * uwt.write_energy(entry_bits)
                + c.uwt_bit_updates as f64 * uwt.write_energy(2);
            structures.push(StructureEnergy {
                name: "uWT",
                dynamic,
                leakage: uwt.leakage_per_cycle() * cyc,
            });
        }
        if let Some(wt) = &self.wt {
            let entry_bits = wt.bits() / self.tlb_entries;
            let dynamic = c.wt_reads as f64 * wt.read_energy(way_read_bits)
                + c.wt_writes as f64 * wt.write_energy(entry_bits)
                + c.wt_bit_updates as f64 * wt.write_energy(2);
            structures.push(StructureEnergy {
                name: "WT",
                dynamic,
                leakage: wt.leakage_per_cycle() * cyc,
            });
        }
        if let Some(wdu) = &self.wdu {
            let dynamic = c.wdu_lookups as f64 * wdu.search_energy()
                + c.wdu_writes as f64 * wdu.write_energy();
            structures.push(StructureEnergy {
                name: "WDU",
                dynamic,
                leakage: wdu.leakage_per_cycle() * cyc,
            });
        }

        let dynamic: f64 = structures.iter().map(|s| s.dynamic).sum();
        let leakage: f64 = structures.iter().map(|s| s.leakage).sum();

        // --- Excluded structures (Sec. VI-A) ---
        let excluded_dynamic = c.sb_lookups_full as f64 * self.sb_full.search_tags_only_energy()
            + c.sb_lookups_page_segment as f64 * self.sb_page.search_tags_only_energy()
            + c.sb_lookups_narrow as f64 * self.sb_narrow.search_tags_only_energy()
            + c.mb_lookups_full as f64 * self.mb_full.search_tags_only_energy()
            + c.mb_lookups_page_segment as f64 * self.mb_page.search_tags_only_energy()
            + c.mb_lookups_narrow as f64 * self.mb_narrow.search_tags_only_energy()
            + c.input_buffer_compares as f64 * self.compare_bit_energy * 20.0
            + c.arbitration_compares as f64 * self.compare_bit_energy * 6.0;

        EnergyBreakdown {
            dynamic,
            leakage,
            structures,
            excluded_dynamic,
        }
    }

    /// Bits in one cache line (for callers sizing fills).
    pub fn line_bits(&self) -> u64 {
        self.line_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_types::config::LatencyVariant;

    fn one_access_counters() -> EnergyCounters {
        let mut c = EnergyCounters::default();
        c.l1_conventional_read(4, 1);
        c.utlb_lookups = 1;
        c
    }

    #[test]
    fn base2_pays_port_premium_on_dynamic() {
        let c = one_access_counters();
        let e1 = EnergyModel::for_config(&SimConfig::base1ldst()).evaluate(&c, 0);
        let e2 = EnergyModel::for_config(&SimConfig::base2ld1st()).evaluate(&c, 0);
        assert!(
            e2.dynamic > 1.2 * e1.dynamic,
            "multi-ported access should cost noticeably more: {} vs {}",
            e2.dynamic,
            e1.dynamic
        );
    }

    #[test]
    fn base2_pays_port_premium_on_leakage() {
        let idle = EnergyCounters::default();
        let e1 = EnergyModel::for_config(&SimConfig::base1ldst()).evaluate(&idle, 1_000_000);
        let e2 = EnergyModel::for_config(&SimConfig::base2ld1st()).evaluate(&idle, 1_000_000);
        let ratio = e2.leakage / e1.leakage;
        assert!(
            ratio > 1.5 && ratio < 2.0,
            "L1+TLB port leakage premium should land near +80%: {ratio}"
        );
    }

    #[test]
    fn reduced_access_saves_tag_and_way_energy() {
        let model = EnergyModel::for_config(&SimConfig::malec());
        let mut conventional = EnergyCounters::default();
        conventional.l1_conventional_read(4, 2);
        let mut reduced = EnergyCounters::default();
        reduced.l1_reduced_read(2);
        let ec = model.evaluate(&conventional, 0).dynamic;
        let er = model.evaluate(&reduced, 0).dynamic;
        assert!(
            er < 0.35 * ec,
            "reduced access should save well over half: {er} vs {ec}"
        );
    }

    #[test]
    fn malec_way_tables_add_leakage() {
        let idle = EnergyCounters::default();
        let base = EnergyModel::for_config(&SimConfig::base1ldst()).evaluate(&idle, 1_000_000);
        let malec = EnergyModel::for_config(&SimConfig::malec()).evaluate(&idle, 1_000_000);
        assert!(malec.leakage > base.leakage);
        // ... but the WT overhead must stay small relative to the L1.
        assert!(malec.leakage < 1.15 * base.leakage);
    }

    #[test]
    fn uwt_is_a_small_fraction_of_the_interface() {
        // Sec. VI-A: uWT ≈ 0.3 % of leakage and ≈ 2.1 % of dynamic energy.
        let cfg = SimConfig::malec();
        let model = EnergyModel::for_config(&cfg);
        let mut c = EnergyCounters::default();
        // A representative mix: mostly reduced reads with uWT reads.
        for _ in 0..100 {
            c.l1_reduced_read(2);
            c.uwt_reads += 1;
            c.utlb_lookups += 1;
        }
        let b = model.evaluate(&c, 100);
        let uwt = b
            .structures
            .iter()
            .find(|s| s.name == "uWT")
            .expect("uWT present");
        assert!(uwt.leakage / b.leakage < 0.02, "uWT leakage share too big");
        assert!(uwt.dynamic / b.dynamic < 0.12, "uWT dynamic share too big");
    }

    #[test]
    fn wdu_lookups_cost_more_than_wt_reads() {
        let wt_cfg = SimConfig::malec();
        let wdu_cfg = SimConfig::malec().with_way_determination(WayDetermination::Wdu(16));
        let wt_model = EnergyModel::for_config(&wt_cfg);
        let wdu_model = EnergyModel::for_config(&wdu_cfg);
        let wt_c = EnergyCounters {
            uwt_reads: 100,
            ..Default::default()
        };
        let wdu_c = EnergyCounters {
            wdu_lookups: 100,
            ..Default::default()
        };
        let wt_dyn = wt_model.evaluate(&wt_c, 0).dynamic;
        let wdu_dyn = wdu_model.evaluate(&wdu_c, 0).dynamic;
        assert!(
            wdu_dyn > wt_dyn,
            "4-ported WDU lookups should out-cost single-ported WT reads: {wdu_dyn} vs {wt_dyn}"
        );
    }

    #[test]
    fn excluded_structures_do_not_enter_totals() {
        let model = EnergyModel::for_config(&SimConfig::base1ldst());
        let c = EnergyCounters {
            sb_lookups_full: 1000,
            mb_lookups_full: 1000,
            input_buffer_compares: 1000,
            ..Default::default()
        };
        let b = model.evaluate(&c, 0);
        assert_eq!(b.dynamic, 0.0);
        assert!(b.excluded_dynamic > 0.0);
    }

    #[test]
    fn split_sb_lookup_cheaper_than_full() {
        let model = EnergyModel::for_config(&SimConfig::malec());
        let full = EnergyCounters {
            sb_lookups_full: 4,
            ..Default::default()
        };
        let split = EnergyCounters {
            sb_lookups_page_segment: 1,
            sb_lookups_narrow: 4,
            ..Default::default()
        };
        let ef = model.evaluate(&full, 0).excluded_dynamic;
        let es = model.evaluate(&split, 0).excluded_dynamic;
        assert!(
            es < ef,
            "shared page segment should save energy: {es} vs {ef}"
        );
    }

    #[test]
    fn latency_variant_does_not_change_energy_model() {
        let c = one_access_counters();
        let a = EnergyModel::for_config(&SimConfig::malec()).evaluate(&c, 100);
        let b =
            EnergyModel::for_config(&SimConfig::malec().with_latency(LatencyVariant::ThreeCycle))
                .evaluate(&c, 100);
        assert_eq!(a.dynamic, b.dynamic);
        assert_eq!(a.leakage, b.leakage);
    }

    #[test]
    fn breakdown_totals_are_sums() {
        let model = EnergyModel::for_config(&SimConfig::malec());
        let mut c = EnergyCounters::default();
        c.l1_conventional_read(4, 2);
        c.tlb_lookups = 3;
        c.wt_reads = 2;
        c.uwt_writes = 1;
        let b = model.evaluate(&c, 12345);
        let dyn_sum: f64 = b.structures.iter().map(|s| s.dynamic).sum();
        let leak_sum: f64 = b.structures.iter().map(|s| s.leakage).sum();
        assert!((b.dynamic - dyn_sum).abs() < 1e-9);
        assert!((b.leakage - leak_sum).abs() < 1e-9);
        assert!((b.total() - (b.dynamic + b.leakage)).abs() < 1e-9);
    }
}
