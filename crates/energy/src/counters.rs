//! The event ledger filled by the timing simulation.
//!
//! Counters record *array activations*, not architectural events: a
//! conventional read of one 4-way bank records one tag-bank access (all four
//! ways' tags are compared in parallel) and `4 × sub_blocks` data-way
//! sub-block activations, while a reduced (way-determined) access records
//! zero tag accesses and `1 × sub_blocks` activations. The energy model then
//! prices each activation.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Counts of energy-relevant events accumulated during a simulation run.
///
/// # Example
///
/// ```
/// use malec_energy::EnergyCounters;
///
/// let mut c = EnergyCounters::default();
/// c.l1_conventional_read(4, 1);
/// c.l1_reduced_read(2);
/// assert_eq!(c.l1_tag_bank_reads, 1);
/// assert_eq!(c.l1_data_subblock_reads, 4 + 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct EnergyCounters {
    /// Tag-array lookups, one per bank access that compares all ways.
    pub l1_tag_bank_reads: u64,
    /// Data-array sub-block activations for reads (ways × sub-blocks).
    pub l1_data_subblock_reads: u64,
    /// Data-array sub-block activations for writes.
    pub l1_data_subblock_writes: u64,
    /// Tag-array updates (line fill or eviction bookkeeping).
    pub l1_tag_bank_writes: u64,
    /// uTLB associative lookups (virtual tags).
    pub utlb_lookups: u64,
    /// uTLB entry installs.
    pub utlb_fills: u64,
    /// uTLB reverse (physical-tag) lookups for WT validity maintenance.
    pub utlb_reverse_lookups: u64,
    /// TLB associative lookups.
    pub tlb_lookups: u64,
    /// TLB entry installs.
    pub tlb_fills: u64,
    /// TLB reverse (physical-tag) lookups.
    pub tlb_reverse_lookups: u64,
    /// Micro way-table way-info reads (2 bits × banks per evaluation; the
    /// cost is independent of how many references the entry services).
    pub uwt_reads: u64,
    /// Micro way-table full-entry writes (fills from the WT).
    pub uwt_writes: u64,
    /// Micro way-table 2-bit slot updates (validity maintenance, last-entry
    /// feedback).
    pub uwt_bit_updates: u64,
    /// Way-table way-info reads.
    pub wt_reads: u64,
    /// Way-table full-entry writes (uWT eviction sync, entry invalidation).
    pub wt_writes: u64,
    /// Way-table 2-bit slot updates (fill/eviction validity maintenance).
    pub wt_bit_updates: u64,
    /// WDU associative lookups (line-granularity tags, multi-ported).
    pub wdu_lookups: u64,
    /// WDU entry installs/updates.
    pub wdu_writes: u64,
    /// Store-buffer lookups using a full-width address comparator.
    pub sb_lookups_full: u64,
    /// Store-buffer page-segment lookups (shared once per page group).
    pub sb_lookups_page_segment: u64,
    /// Store-buffer narrow in-page comparisons (per access in a group).
    pub sb_lookups_narrow: u64,
    /// Merge-buffer lookups using a full-width address comparator.
    pub mb_lookups_full: u64,
    /// Merge-buffer page-segment lookups.
    pub mb_lookups_page_segment: u64,
    /// Merge-buffer narrow in-page comparisons.
    pub mb_lookups_narrow: u64,
    /// Input-buffer 20-bit vPageID comparisons.
    pub input_buffer_compares: u64,
    /// Arbitration-unit narrow same-line comparisons.
    pub arbitration_compares: u64,
}

impl EnergyCounters {
    /// Creates an all-zero ledger (same as `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a conventional cache access: all `ways` tag comparisons in
    /// one bank plus `ways × sub_blocks` data-array activations.
    pub fn l1_conventional_read(&mut self, ways: u32, sub_blocks: u32) {
        self.l1_tag_bank_reads += 1;
        self.l1_data_subblock_reads += u64::from(ways) * u64::from(sub_blocks);
    }

    /// Records a reduced cache access (way known and valid): the tag arrays
    /// are bypassed and only one way's `sub_blocks` are activated.
    pub fn l1_reduced_read(&mut self, sub_blocks: u32) {
        self.l1_data_subblock_reads += u64::from(sub_blocks);
    }

    /// Records a cache write of `sub_blocks` sub-blocks (tag check + data
    /// write into the hit way).
    pub fn l1_write(&mut self, sub_blocks: u32) {
        self.l1_tag_bank_reads += 1;
        self.l1_data_subblock_writes += u64::from(sub_blocks);
    }

    /// Records a reduced cache write (way known and valid): tag arrays
    /// bypassed.
    pub fn l1_reduced_write(&mut self, sub_blocks: u32) {
        self.l1_data_subblock_writes += u64::from(sub_blocks);
    }

    /// Records a line fill (written as whole-line data write + tag update).
    pub fn l1_line_fill(&mut self, sub_blocks_per_line: u32) {
        self.l1_tag_bank_writes += 1;
        self.l1_data_subblock_writes += u64::from(sub_blocks_per_line);
    }

    /// Sum of all raw counter fields — useful for sanity checks.
    pub fn total_events(&self) -> u64 {
        let Self {
            l1_tag_bank_reads,
            l1_data_subblock_reads,
            l1_data_subblock_writes,
            l1_tag_bank_writes,
            utlb_lookups,
            utlb_fills,
            utlb_reverse_lookups,
            tlb_lookups,
            tlb_fills,
            tlb_reverse_lookups,
            uwt_reads,
            uwt_writes,
            uwt_bit_updates,
            wt_reads,
            wt_writes,
            wt_bit_updates,
            wdu_lookups,
            wdu_writes,
            sb_lookups_full,
            sb_lookups_page_segment,
            sb_lookups_narrow,
            mb_lookups_full,
            mb_lookups_page_segment,
            mb_lookups_narrow,
            input_buffer_compares,
            arbitration_compares,
        } = *self;
        l1_tag_bank_reads
            + l1_data_subblock_reads
            + l1_data_subblock_writes
            + l1_tag_bank_writes
            + utlb_lookups
            + utlb_fills
            + utlb_reverse_lookups
            + tlb_lookups
            + tlb_fills
            + tlb_reverse_lookups
            + uwt_reads
            + uwt_writes
            + uwt_bit_updates
            + wt_reads
            + wt_writes
            + wt_bit_updates
            + wdu_lookups
            + wdu_writes
            + sb_lookups_full
            + sb_lookups_page_segment
            + sb_lookups_narrow
            + mb_lookups_full
            + mb_lookups_page_segment
            + mb_lookups_narrow
            + input_buffer_compares
            + arbitration_compares
    }
}

impl Add for EnergyCounters {
    type Output = EnergyCounters;

    fn add(mut self, rhs: EnergyCounters) -> EnergyCounters {
        self += rhs;
        self
    }
}

impl AddAssign for EnergyCounters {
    fn add_assign(&mut self, rhs: EnergyCounters) {
        self.l1_tag_bank_reads += rhs.l1_tag_bank_reads;
        self.l1_data_subblock_reads += rhs.l1_data_subblock_reads;
        self.l1_data_subblock_writes += rhs.l1_data_subblock_writes;
        self.l1_tag_bank_writes += rhs.l1_tag_bank_writes;
        self.utlb_lookups += rhs.utlb_lookups;
        self.utlb_fills += rhs.utlb_fills;
        self.utlb_reverse_lookups += rhs.utlb_reverse_lookups;
        self.tlb_lookups += rhs.tlb_lookups;
        self.tlb_fills += rhs.tlb_fills;
        self.tlb_reverse_lookups += rhs.tlb_reverse_lookups;
        self.uwt_reads += rhs.uwt_reads;
        self.uwt_writes += rhs.uwt_writes;
        self.uwt_bit_updates += rhs.uwt_bit_updates;
        self.wt_reads += rhs.wt_reads;
        self.wt_writes += rhs.wt_writes;
        self.wt_bit_updates += rhs.wt_bit_updates;
        self.wdu_lookups += rhs.wdu_lookups;
        self.wdu_writes += rhs.wdu_writes;
        self.sb_lookups_full += rhs.sb_lookups_full;
        self.sb_lookups_page_segment += rhs.sb_lookups_page_segment;
        self.sb_lookups_narrow += rhs.sb_lookups_narrow;
        self.mb_lookups_full += rhs.mb_lookups_full;
        self.mb_lookups_page_segment += rhs.mb_lookups_page_segment;
        self.mb_lookups_narrow += rhs.mb_lookups_narrow;
        self.input_buffer_compares += rhs.input_buffer_compares;
        self.arbitration_compares += rhs.arbitration_compares;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_vs_reduced_read() {
        let mut c = EnergyCounters::new();
        c.l1_conventional_read(4, 2);
        assert_eq!(c.l1_tag_bank_reads, 1);
        assert_eq!(c.l1_data_subblock_reads, 8);
        c.l1_reduced_read(2);
        assert_eq!(c.l1_tag_bank_reads, 1);
        assert_eq!(c.l1_data_subblock_reads, 10);
    }

    #[test]
    fn writes_and_fills() {
        let mut c = EnergyCounters::new();
        c.l1_write(1);
        assert_eq!(c.l1_tag_bank_reads, 1);
        assert_eq!(c.l1_data_subblock_writes, 1);
        c.l1_reduced_write(1);
        assert_eq!(c.l1_tag_bank_reads, 1);
        assert_eq!(c.l1_data_subblock_writes, 2);
        c.l1_line_fill(4);
        assert_eq!(c.l1_tag_bank_writes, 1);
        assert_eq!(c.l1_data_subblock_writes, 6);
    }

    #[test]
    fn add_merges_all_fields() {
        let mut a = EnergyCounters::new();
        a.utlb_lookups = 5;
        a.wt_reads = 2;
        let mut b = EnergyCounters::new();
        b.utlb_lookups = 3;
        b.wdu_lookups = 7;
        let c = a + b;
        assert_eq!(c.utlb_lookups, 8);
        assert_eq!(c.wt_reads, 2);
        assert_eq!(c.wdu_lookups, 7);
        assert_eq!(c.total_events(), 17);
    }

    #[test]
    fn total_events_counts_everything() {
        let mut c = EnergyCounters::new();
        c.input_buffer_compares = 1;
        c.arbitration_compares = 2;
        c.sb_lookups_page_segment = 3;
        c.mb_lookups_narrow = 4;
        assert_eq!(c.total_events(), 10);
    }
}
