//! Analytical SRAM/CAM energy model — the CACTI 6.5 substitute.
//!
//! The paper combines gem5 access statistics with CACTI v6.5 energy numbers
//! (32 nm node, low-dynamic-power design objective, low-standby-power cells
//! for the tag/data arrays). CACTI itself is a closed C++ tool; this crate
//! replaces it with an *analytical* model of the same structures whose terms
//! follow the standard SRAM energy decomposition (decode + wordline +
//! bitline/sense + output drive), with explicit per-port scaling for both
//! dynamic energy and leakage.
//!
//! Absolute joules are expressed in arbitrary-but-consistent picojoule-like
//! units; every number the benches report is **normalized** exactly as in the
//! paper, so only the *ratios* between structures matter. The ratios are
//! calibrated to the figures the paper quotes from CACTI:
//!
//! * an additional read port increases L1 leakage by ≈ 80 % (Sec. VI-C);
//! * the 128-bit WT entry format saves ⅓ area/leakage over a naive 192-bit
//!   format (Sec. V);
//! * the uWT contributes only ≈ 0.3 % leakage / 2.1 % dynamic energy of the
//!   analyzed interface (Sec. VI-A).
//!
//! The model is split across:
//!
//! * [`sram`] — array primitives ([`SramArray`], [`CamArray`], [`SramParams`]);
//! * [`counters`] — the event ledger filled by the timing simulation
//!   ([`EnergyCounters`]);
//! * [`model`] — per-configuration structure instantiations and the
//!   normalized report builder ([`EnergyModel`], [`EnergyBreakdown`]).
//!
//! [`SramArray`]: sram::SramArray
//! [`CamArray`]: sram::CamArray
//! [`SramParams`]: sram::SramParams
//! [`EnergyCounters`]: counters::EnergyCounters
//! [`EnergyModel`]: model::EnergyModel
//! [`EnergyBreakdown`]: model::EnergyBreakdown
//!
//! # Example
//!
//! ```
//! use malec_energy::{EnergyCounters, EnergyModel};
//! use malec_types::SimConfig;
//!
//! let model = EnergyModel::for_config(&SimConfig::base1ldst());
//! let mut counters = EnergyCounters::default();
//! counters.l1_conventional_read(4, 1); // one 4-way parallel lookup
//! let breakdown = model.evaluate(&counters, 1_000);
//! assert!(breakdown.dynamic > 0.0);
//! assert!(breakdown.leakage > 0.0);
//! ```

pub mod counters;
pub mod model;
pub mod sram;

pub use counters::EnergyCounters;
pub use model::{intern_structure_name, EnergyBreakdown, EnergyModel, StructureEnergy};
pub use sram::{CamArray, SramArray, SramParams};
