//! SRAM / CAM array primitives with per-port scaling.
//!
//! The dynamic model follows the classic decomposition of an SRAM access:
//!
//! * **decode** — address decoding, grows with `log2(rows)`;
//! * **wordline** — driving one row's wordline, grows with the row width;
//! * **bitline + sense** — (dis)charging bitlines and sensing, grows with the
//!   product of column height (`rows`) and the number of bits actually read;
//! * **output** — driving the read data out.
//!
//! Multi-porting replicates wordlines/bitlines per cell, so each extra port
//! multiplies cell capacitance: dynamic energy per access scales by
//! `1 + port_dyn_slope * (ports - 1)` and leakage (transistor count and wire
//! overhead) by `1 + port_leak_slope * (ports - 1)`. The leakage slope is
//! calibrated to the paper's "the additional rd port increases L1 leakage by
//! 80 %" (Sec. VI-C).

use serde::{Deserialize, Serialize};

use malec_types::config::PortConfig;

/// Technology/calibration constants of the analytical model.
///
/// All energies are in consistent arbitrary units (≈ pJ at 32 nm); leakage
/// is in the same unit per cycle. Defaults are calibrated to reproduce the
/// CACTI-derived ratios quoted in the paper (see crate docs).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SramParams {
    /// Decoder energy coefficient (× `log2(rows) × rows / 64`); the
    /// rows-proportional factor captures the larger predecoders and longer
    /// select wires of taller arrays.
    pub c_decode: f64,
    /// Energy per (row × read-bit) unit of bitline swing, divided by 1024 to
    /// keep magnitudes sane.
    pub c_bitline: f64,
    /// I/O energy per read bit, scaled by `sqrt(total_bits)/1024`: bigger
    /// arrays drive longer output wires (H-tree), so moving a bit out of a
    /// 32 KiB macro costs far more than out of a 256 B buffer.
    pub c_io: f64,
    /// Energy per compared bit per entry of a CAM search (match lines).
    pub c_cam: f64,
    /// Write energy multiplier relative to a read of the same width.
    pub write_factor: f64,
    /// Leakage per bit of storage, per cycle.
    pub leak_per_bit: f64,
    /// Dynamic-energy slope per extra port.
    pub port_dyn_slope: f64,
    /// Leakage slope per extra port (0.8 ⇒ +80 % per extra port).
    pub port_leak_slope: f64,
}

impl SramParams {
    /// Calibrated 32 nm-like defaults (low dynamic power objective,
    /// low-standby-power cells, high-performance peripherals — Table II).
    pub const fn paper_32nm() -> Self {
        Self {
            c_decode: 0.08,
            c_bitline: 0.55,
            c_io: 0.15,
            c_cam: 0.002,
            write_factor: 1.15,
            leak_per_bit: 3.2e-5,
            port_dyn_slope: 0.45,
            port_leak_slope: 0.8,
        }
    }
}

impl Default for SramParams {
    fn default() -> Self {
        Self::paper_32nm()
    }
}

fn log2_ceil(v: u64) -> f64 {
    if v <= 1 {
        1.0
    } else {
        (v as f64).log2().ceil()
    }
}

/// A RAM-style SRAM array (decoded row access).
///
/// # Example
///
/// ```
/// use malec_energy::sram::{SramArray, SramParams};
/// use malec_types::config::PortConfig;
///
/// // One L1 data way: 32 rows of 512-bit lines, single-ported.
/// let way = SramArray::new("l1-data-way", 32, 512, PortConfig::SINGLE, SramParams::default());
/// let full = way.read_energy(512);
/// let sub = way.read_energy(128);
/// assert!(sub < full);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SramArray {
    name: &'static str,
    rows: u64,
    row_bits: u64,
    ports: PortConfig,
    params: SramParams,
}

impl SramArray {
    /// Creates an array of `rows` rows, each `row_bits` wide.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `row_bits` is zero — structure geometry is a
    /// compile-time-style invariant in this workspace, not user input.
    pub fn new(
        name: &'static str,
        rows: u64,
        row_bits: u64,
        ports: PortConfig,
        params: SramParams,
    ) -> Self {
        assert!(rows > 0 && row_bits > 0, "SRAM array must have bits");
        Self {
            name,
            rows,
            row_bits,
            ports,
            params,
        }
    }

    /// Structure name (for report breakdowns).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Total storage bits.
    pub const fn bits(&self) -> u64 {
        self.rows * self.row_bits
    }

    /// Port configuration.
    pub const fn ports(&self) -> PortConfig {
        self.ports
    }

    fn port_dyn_factor(&self) -> f64 {
        1.0 + self.params.port_dyn_slope * f64::from(self.ports.total().saturating_sub(1))
    }

    fn port_leak_factor(&self) -> f64 {
        1.0 + self.params.port_leak_slope * f64::from(self.ports.total().saturating_sub(1))
    }

    /// Dynamic energy of reading `bits_read` bits from one row.
    ///
    /// `bits_read` is clamped to the row width; sub-blocked data arrays pass
    /// the activated sub-block width here.
    pub fn read_energy(&self, bits_read: u64) -> f64 {
        let bits_read = bits_read.min(self.row_bits) as f64;
        let p = &self.params;
        let decode = p.c_decode * log2_ceil(self.rows) * (self.rows as f64) / 64.0;
        let bitline = p.c_bitline * (self.rows as f64) * bits_read / 1024.0;
        let io = p.c_io * bits_read * (self.bits() as f64).sqrt() / 1024.0;
        (decode + bitline + io) * self.port_dyn_factor()
    }

    /// Dynamic energy of writing `bits_written` bits into one row.
    pub fn write_energy(&self, bits_written: u64) -> f64 {
        self.read_energy(bits_written) * self.params.write_factor
    }

    /// Leakage energy per cycle of the whole array.
    pub fn leakage_per_cycle(&self) -> f64 {
        self.params.leak_per_bit * (self.bits() as f64) * self.port_leak_factor()
    }
}

/// A fully-associative CAM tag array (parallel compare of every entry),
/// optionally paired with a RAM payload that a hit reads out.
///
/// Used for the uTLB/TLB lookup structures (20-bit page-wide tags for 4 KiB
/// pages in a 32-bit space) and for the WDU's line-granularity tags. Reverse
/// (physical) lookups are modelled as a second CAM over the same payload, as
/// the paper prescribes ("uTLB and TLB are treated as two separate fully
/// associative tag-arrays for their uWT/WT data-array", Sec. VI-A).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CamArray {
    name: &'static str,
    entries: u64,
    tag_bits: u64,
    payload_bits: u64,
    search_ports: u8,
    params: SramParams,
}

impl CamArray {
    /// Creates a CAM of `entries` entries with `tag_bits`-wide tags and an
    /// attached payload RAM of `payload_bits` per entry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `tag_bits` is zero.
    pub fn new(
        name: &'static str,
        entries: u64,
        tag_bits: u64,
        payload_bits: u64,
        search_ports: u8,
        params: SramParams,
    ) -> Self {
        assert!(
            entries > 0 && tag_bits > 0,
            "CAM must have entries and tags"
        );
        Self {
            name,
            entries,
            tag_bits,
            payload_bits,
            search_ports: search_ports.max(1),
            params,
        }
    }

    /// Structure name (for report breakdowns).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Total storage bits (tags + payload).
    pub const fn bits(&self) -> u64 {
        self.entries * (self.tag_bits + self.payload_bits)
    }

    fn port_dyn_factor(&self) -> f64 {
        1.0 + self.params.port_dyn_slope * f64::from(self.search_ports - 1)
    }

    fn port_leak_factor(&self) -> f64 {
        1.0 + self.params.port_leak_slope * f64::from(self.search_ports - 1)
    }

    /// Dynamic energy of one associative search including reading the
    /// payload of the hit entry.
    pub fn search_energy(&self) -> f64 {
        let p = &self.params;
        let match_lines = p.c_cam * (self.entries as f64) * (self.tag_bits as f64);
        let payload =
            p.c_io * (self.payload_bits as f64) * (self.bits().max(1) as f64).sqrt() / 1024.0;
        (match_lines + payload) * self.port_dyn_factor()
    }

    /// Dynamic energy of one associative search that only compares tags
    /// (e.g. a reverse lookup that misses, or a pure presence check).
    pub fn search_tags_only_energy(&self) -> f64 {
        let p = &self.params;
        p.c_cam * (self.entries as f64) * (self.tag_bits as f64) * self.port_dyn_factor()
    }

    /// Dynamic energy of installing/overwriting one entry (tag + payload).
    pub fn write_energy(&self) -> f64 {
        let p = &self.params;
        let entry_bits = (self.tag_bits + self.payload_bits) as f64;
        let wires = (self.bits().max(1) as f64).sqrt() / 1024.0;
        p.c_io * entry_bits * (1.0 + wires) * p.write_factor * self.port_dyn_factor()
    }

    /// Leakage energy per cycle of the whole structure.
    pub fn leakage_per_cycle(&self) -> f64 {
        self.params.leak_per_bit * (self.bits() as f64) * self.port_leak_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn single() -> PortConfig {
        PortConfig::SINGLE
    }

    fn dual_read() -> PortConfig {
        PortConfig {
            rw: 1,
            rd: 1,
            wr: 0,
        }
    }

    #[test]
    fn extra_port_adds_80_percent_leakage() {
        let p = SramParams::default();
        let sp = SramArray::new("a", 32, 512, single(), p);
        let dp = SramArray::new("a", 32, 512, dual_read(), p);
        let ratio = dp.leakage_per_cycle() / sp.leakage_per_cycle();
        assert!((ratio - 1.8).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn extra_port_increases_dynamic_energy() {
        let p = SramParams::default();
        let sp = SramArray::new("a", 32, 512, single(), p);
        let dp = SramArray::new("a", 32, 512, dual_read(), p);
        assert!(dp.read_energy(512) > sp.read_energy(512));
    }

    #[test]
    fn subblock_read_is_cheaper() {
        let way = SramArray::new("w", 32, 512, single(), SramParams::default());
        assert!(way.read_energy(128) < way.read_energy(512));
        assert!(way.read_energy(256) < 0.6 * way.read_energy(512));
    }

    #[test]
    fn write_costs_more_than_read() {
        let a = SramArray::new("w", 64, 128, single(), SramParams::default());
        assert!(a.write_energy(128) > a.read_energy(128));
    }

    #[test]
    fn bigger_cam_costs_more() {
        let p = SramParams::default();
        let small = CamArray::new("c", 16, 20, 20, 1, p);
        let big = CamArray::new("c", 64, 20, 20, 1, p);
        assert!(big.search_energy() > small.search_energy());
        assert!(big.leakage_per_cycle() > small.leakage_per_cycle());
    }

    #[test]
    fn cam_tags_only_is_cheaper_than_full_search() {
        let c = CamArray::new("c", 64, 20, 148, 1, SramParams::default());
        assert!(c.search_tags_only_energy() < c.search_energy());
    }

    #[test]
    fn four_ported_wdu_lookup_expensive() {
        let p = SramParams::default();
        let wdu1 = CamArray::new("wdu", 16, 26, 3, 1, p);
        let wdu4 = CamArray::new("wdu", 16, 26, 3, 4, p);
        let ratio = wdu4.search_energy() / wdu1.search_energy();
        assert!(ratio > 2.0, "4-port CAM should cost > 2x: {ratio}");
    }

    #[test]
    fn wt_entry_format_saves_a_third_of_leakage() {
        // 128-bit combined validity+way format vs naive 192-bit format
        // (Sec. V): leakage scales with bits, so the saving is exactly 1/3.
        let p = SramParams::default();
        let combined = SramArray::new("wt", 64, 128, single(), p);
        let naive = SramArray::new("wt", 64, 192, single(), p);
        let saving = 1.0 - combined.leakage_per_cycle() / naive.leakage_per_cycle();
        assert!((saving - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "SRAM array must have bits")]
    fn zero_rows_panics() {
        let _ = SramArray::new("z", 0, 8, single(), SramParams::default());
    }

    proptest! {
        #[test]
        fn prop_read_energy_monotonic_in_bits(bits in 1u64..512) {
            let way = SramArray::new("w", 32, 512, single(), SramParams::default());
            prop_assert!(way.read_energy(bits) <= way.read_energy(bits + 1) + 1e-12);
        }

        #[test]
        fn prop_energy_positive(rows in 1u64..4096, row_bits in 1u64..2048) {
            let a = SramArray::new("a", rows, row_bits, single(), SramParams::default());
            prop_assert!(a.read_energy(row_bits) > 0.0);
            prop_assert!(a.write_energy(row_bits) > 0.0);
            prop_assert!(a.leakage_per_cycle() > 0.0);
        }

        #[test]
        fn prop_bits_read_clamped(extra in 0u64..10_000) {
            let a = SramArray::new("a", 16, 64, single(), SramParams::default());
            prop_assert!((a.read_energy(64 + extra) - a.read_energy(64)).abs() < 1e-12);
        }
    }
}
