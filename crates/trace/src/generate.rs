//! The deterministic stochastic workload generator.
//!
//! A benchmark is modelled as a small number of concurrent *access streams*
//! (array sweeps, pointer chases, stack traffic). Each stream sits on a page
//! and walks it with the profile's stride for a geometrically distributed
//! run, then moves to another page — re-used from a recent hot set with
//! `page_reuse_prob`, else drawn fresh from the working set. Interleaving
//! between streams (controlled by `stream_switch_prob`) is what produces the
//! "n intermediate accesses to a different page" structure of Fig. 1.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use malec_types::addr::VAddr;

use crate::inst::TraceInst;
use crate::profile::BenchmarkProfile;

const HOT_SET: usize = 48;
const PAGE_BYTES: u64 = 4096;

#[derive(Clone, Debug)]
struct StreamState {
    page: u64,
    offset: u64,
    run_left: u32,
    /// Absolute index of the load that produced this run's base pointer;
    /// every load of the run depends on it (node-field accesses all wait
    /// for the pointer dereference).
    producer: Option<u64>,
}

/// An infinite, deterministic instruction stream for one benchmark profile.
///
/// Two generators constructed with the same profile and seed yield identical
/// streams, which is what makes every figure in this repository reproducible
/// bit-for-bit.
///
/// # Example
///
/// ```
/// use malec_trace::{all_benchmarks, WorkloadGenerator};
///
/// let prof = &all_benchmarks()[0];
/// let a: Vec<_> = WorkloadGenerator::new(prof, 7).take(100).collect();
/// let b: Vec<_> = WorkloadGenerator::new(prof, 7).take(100).collect();
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    profile: BenchmarkProfile,
    rng: SmallRng,
    streams: Vec<StreamState>,
    active: usize,
    hot_pages: Vec<(u64, u64, u32)>,
    fresh_cursor: u64,
    base_page: u64,
    insts_since_load: u32,
    emitted: u64,
}

impl WorkloadGenerator {
    /// Creates a generator for `profile` with the given seed.
    pub fn new(profile: &BenchmarkProfile, seed: u64) -> Self {
        let mut h: u64 = seed ^ 0x517c_c1b7_2722_0a95;
        for b in profile.name.bytes() {
            h = h.rotate_left(7) ^ u64::from(b);
        }
        let mut rng = SmallRng::seed_from_u64(h);
        let base_page = profile.vaddr_base() / PAGE_BYTES;
        let ws = u64::from(profile.working_set_pages.max(1));
        let streams = (0..profile.streams.max(1))
            .map(|_| StreamState {
                page: base_page + rng.gen_range(0..ws),
                offset: 0,
                run_left: 1,
                producer: None,
            })
            .collect();
        Self {
            profile: profile.clone(),
            rng,
            streams,
            active: 0,
            hot_pages: Vec::with_capacity(HOT_SET),
            fresh_cursor: 0,
            base_page,
            insts_since_load: u32::MAX,
            emitted: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    fn sample_run(&mut self) -> u32 {
        // Geometric-ish run length with the profile's mean, at least 1.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let run = -self.profile.page_run_mean * u.ln();
        run.round().clamp(1.0, 4096.0) as u32
    }

    /// Picks the next page, the offset to enter it at, and the run length.
    /// Re-used (hot) pages are re-entered at their remembered offset *with
    /// their remembered extent*, so repeat visits re-walk exactly the same
    /// cache lines — this is what gives workloads their temporal line reuse
    /// (interrupted array sweeps resume over the same sub-array).
    fn next_page(&mut self) -> (u64, u64, u32) {
        let ws = u64::from(self.profile.working_set_pages.max(1));
        if !self.hot_pages.is_empty() && self.rng.gen_bool(self.profile.page_reuse_prob) {
            let i = self.rng.gen_range(0..self.hot_pages.len());
            return self.hot_pages[i];
        }
        // Fresh page: alternate between a sequential working-set walk
        // (array sweeps) and a uniform draw (heap scatter); enter at a
        // random line so lines spread over cache banks and sets.
        let page = if self.rng.gen_bool(0.5) {
            self.fresh_cursor = (self.fresh_cursor + 1) % ws;
            self.base_page + self.fresh_cursor
        } else {
            self.base_page + self.rng.gen_range(0..ws)
        };
        let offset = self.rng.gen_range(0..PAGE_BYTES / 64) * 64;
        let run = self.sample_run();
        if self.hot_pages.len() == HOT_SET {
            self.hot_pages.remove(0);
        }
        self.hot_pages.push((page, offset, run));
        (page, offset, run)
    }

    fn next_mem_addr(&mut self) -> (VAddr, bool) {
        // Possibly switch to a different stream.
        if self.streams.len() > 1 && self.rng.gen_bool(self.profile.stream_switch_prob) {
            let n = self.streams.len();
            let step = self.rng.gen_range(1..n);
            self.active = (self.active + step) % n;
        }
        // `stride_bytes == 0` means scattered (heap-style) accesses: runs
        // start at irregular (non-line-aligned) offsets and walk word-sized
        // strides. Scattering per *access* instead would deny the workload
        // any line reuse at all.
        let scattered = self.profile.stride_bytes == 0;
        let stride = u64::from(self.profile.stride_bytes).max(8);

        // Borrow dance: sample everything that needs &mut self first.
        let mut new_run = false;
        if self.streams[self.active].run_left == 0 {
            let (page, start, run) = self.next_page();
            let jitter = if scattered {
                self.rng.gen_range(0..8) * 8
            } else {
                0
            };
            let s = &mut self.streams[self.active];
            s.page = page;
            s.offset = (start + jitter) % PAGE_BYTES;
            s.run_left = run;
            new_run = true;
        }
        let s = &mut self.streams[self.active];
        let addr = s.page * PAGE_BYTES + s.offset;
        s.run_left -= 1;
        s.offset = (s.offset + stride) % PAGE_BYTES;
        (VAddr::new(addr), new_run)
    }

    fn gen_load(&mut self) -> TraceInst {
        let (vaddr, new_run) = self.next_mem_addr();
        let size = if self.rng.gen_bool(0.25) { 8 } else { 4 };
        // Pointer dereferences happen when a stream jumps to a new object
        // (run start); every access of the run then depends on that same
        // pointer, so all of a node's field loads become ready together.
        if new_run {
            self.streams[self.active].producer = if self.rng.gen_bool(self.profile.addr_dep_prob) {
                let d = self.rng.gen_range(1..8u64).min(self.emitted);
                (d > 0).then(|| self.emitted - d)
            } else {
                None
            };
        }
        let addr_dep = self.streams[self.active].producer.and_then(|p| {
            let dist = self.emitted - p;
            (dist > 0 && dist < 160).then_some(dist as u32)
        });
        TraceInst::Load {
            vaddr,
            size,
            addr_dep,
        }
    }

    fn gen_store(&mut self) -> TraceInst {
        let (vaddr, _) = self.next_mem_addr();
        let size = if self.rng.gen_bool(0.25) { 8 } else { 4 };
        let data_dep = if self.rng.gen_bool(self.profile.dep_prob) {
            Some(self.rng.gen_range(1..6))
        } else {
            None
        };
        TraceInst::Store {
            vaddr,
            size,
            data_dep,
        }
    }

    fn gen_op(&mut self) -> TraceInst {
        if self.rng.gen_bool(self.profile.branch_fraction) {
            // Branch conditions frequently test recently loaded values.
            let dep = if self.insts_since_load <= 8 && self.rng.gen_bool(0.6) {
                Some(self.insts_since_load.max(1))
            } else {
                None
            };
            return TraceInst::Branch {
                mispredicted: self.rng.gen_bool(self.profile.mispredict_rate),
                dep,
            };
        }
        let latency = if self.rng.gen_bool(self.profile.long_op_fraction) {
            3
        } else {
            1
        };
        // Consumers preferentially depend on the most recent load: this is
        // the load-to-use chain that makes L1 hit latency matter (the
        // Fig. 4 1-cycle/3-cycle variants).
        let dep = if self.rng.gen_bool(self.profile.dep_prob) {
            if self.insts_since_load <= 8 {
                Some(self.insts_since_load.max(1))
            } else {
                Some(self.rng.gen_range(1..6))
            }
        } else {
            None
        };
        TraceInst::Op { latency, dep }
    }
}

impl Iterator for WorkloadGenerator {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        let inst = if self.rng.gen_bool(self.profile.mem_fraction) {
            if self.rng.gen_bool(self.profile.load_share) {
                self.gen_load()
            } else {
                self.gen_store()
            }
        } else {
            self.gen_op()
        };
        self.insts_since_load = if inst.is_load() {
            0
        } else {
            self.insts_since_load.saturating_add(1)
        };
        self.emitted += 1;
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{all_benchmarks, Suite};

    fn profile(name: &str) -> BenchmarkProfile {
        all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
    }

    fn sample(name: &str, n: usize) -> Vec<TraceInst> {
        WorkloadGenerator::new(&profile(name), 42).take(n).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sample("gzip", 2000);
        let b = sample("gzip", 2000);
        assert_eq!(a, b);
        let c: Vec<_> = WorkloadGenerator::new(&profile("gzip"), 43)
            .take(2000)
            .collect();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn mem_fraction_matches_profile() {
        for name in ["gzip", "swim", "djpeg", "mcf"] {
            let p = profile(name);
            let insts = sample(name, 50_000);
            let mem = insts.iter().filter(|i| i.is_mem()).count() as f64 / insts.len() as f64;
            assert!(
                (mem - p.mem_fraction).abs() < 0.02,
                "{name}: mem fraction {mem} vs profile {}",
                p.mem_fraction
            );
        }
    }

    #[test]
    fn load_store_ratio_about_two_to_one() {
        let insts = sample("vortex", 50_000);
        let loads = insts.iter().filter(|i| i.is_load()).count() as f64;
        let stores = insts.iter().filter(|i| i.is_store()).count() as f64;
        let ratio = loads / stores;
        assert!((1.7..2.4).contains(&ratio), "load/store ratio {ratio}");
    }

    #[test]
    fn addresses_stay_in_working_set_region() {
        let p = profile("eon");
        let base = p.vaddr_base();
        let span = u64::from(p.working_set_pages) * 4096;
        for inst in sample("eon", 20_000) {
            if let Some(a) = inst.vaddr() {
                assert!(a.raw() >= base && a.raw() < base + span + 4096);
            }
        }
    }

    #[test]
    fn strided_benchmark_walks_lines() {
        // equake strides by 4 bytes: consecutive same-page accesses from the
        // same stream should frequently share a cache line.
        let insts = sample("equake", 30_000);
        let lines: Vec<u64> = insts
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw() >> 6)
            .collect();
        let same =
            lines.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (lines.len() - 1) as f64;
        assert!(same > 0.3, "equake same-line adjacency too low: {same}");
    }

    #[test]
    fn mgrid_never_repeats_lines_back_to_back() {
        let insts = sample("mgrid", 30_000);
        let lines: Vec<u64> = insts
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw() >> 6)
            .collect();
        let same =
            lines.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (lines.len() - 1) as f64;
        assert!(same < 0.08, "mgrid should stride whole lines: {same}");
    }

    #[test]
    fn mcf_touches_many_distinct_pages() {
        let insts = sample("mcf", 30_000);
        let pages: std::collections::HashSet<u64> = insts
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw() >> 12)
            .collect();
        let djpeg_pages: std::collections::HashSet<u64> = sample("djpeg", 30_000)
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw() >> 12)
            .collect();
        assert!(
            pages.len() > 10 * djpeg_pages.len(),
            "mcf {} pages vs djpeg {}",
            pages.len(),
            djpeg_pages.len()
        );
    }

    #[test]
    fn every_benchmark_generates_all_kinds() {
        for p in all_benchmarks() {
            let insts: Vec<_> = WorkloadGenerator::new(&p, 1).take(20_000).collect();
            assert!(insts.iter().any(|i| i.is_load()), "{} no loads", p.name);
            assert!(insts.iter().any(|i| i.is_store()), "{} no stores", p.name);
            assert!(
                insts.iter().any(|i| matches!(i, TraceInst::Op { .. })),
                "{} no ops",
                p.name
            );
        }
    }

    #[test]
    fn suite_ordering_of_dependency_density() {
        // MB2 streams should be less serialized than SPEC-INT on average.
        let avg_dep = |suite: Suite| {
            let b: Vec<_> = all_benchmarks()
                .into_iter()
                .filter(|p| p.suite == suite)
                .collect();
            b.iter().map(|p| p.dep_prob).sum::<f64>() / b.len() as f64
        };
        assert!(avg_dep(Suite::MediaBench2) < avg_dep(Suite::SpecInt));
    }
}
