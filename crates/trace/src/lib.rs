//! Synthetic workload generation — the SPEC CPU2000 / MediaBench2 substitute.
//!
//! The paper drives its evaluation with the most representative 1-billion-
//! instruction SimPoint phase of each SPEC CPU2000 and MediaBench2 benchmark.
//! Neither the benchmarks nor their traces are redistributable, so this crate
//! generates *statistically equivalent* instruction streams instead: every
//! benchmark named in Fig. 4 gets a [`BenchmarkProfile`] whose parameters are
//! calibrated to the properties the paper reports (memory-instruction
//! fraction, load/store ratio, page-run locality of Fig. 1, same-line
//! adjacency, working-set size / miss-rate class, dependency density).
//!
//! MALEC's mechanisms only observe the *statistics* of the reference stream —
//! page-transition run lengths, line adjacency, reorderability, miss rates —
//! so matching those axes is what makes the reproduction meaningful. See
//! DESIGN.md §1 for the substitution argument.
//!
//! * [`inst`] — the trace instruction vocabulary ([`TraceInst`]);
//! * [`profile`] — benchmark profiles and suites ([`BenchmarkProfile`],
//!   [`Suite`], [`all_benchmarks`]);
//! * [`generate`] — the deterministic stochastic generator
//!   ([`WorkloadGenerator`]);
//! * [`scenario`] — composable multi-phase / mixed / adversarial workloads
//!   ([`Scenario`]);
//! * [`record`] — the `.mtr` binary trace format with streaming
//!   record/replay ([`TraceWriter`], [`TraceReader`]);
//! * [`seed`] — SplitMix64 replicate-seed derivation for multi-seed
//!   replication ([`replicate_seed`]);
//! * [`stats`] — Fig. 1 statistics (consecutive same-page access runs with
//!   allowed intermediates) and same-line adjacency.
//!
//! [`TraceInst`]: inst::TraceInst
//! [`BenchmarkProfile`]: profile::BenchmarkProfile
//! [`Suite`]: profile::Suite
//! [`all_benchmarks`]: profile::all_benchmarks
//! [`WorkloadGenerator`]: generate::WorkloadGenerator
//!
//! # Example
//!
//! ```
//! use malec_trace::{all_benchmarks, WorkloadGenerator};
//!
//! let gzip = all_benchmarks().iter().find(|b| b.name == "gzip").cloned().unwrap();
//! let insts: Vec<_> = WorkloadGenerator::new(&gzip, 1).take(1000).collect();
//! assert_eq!(insts.len(), 1000);
//! ```

pub mod generate;
pub mod inst;
pub mod profile;
pub mod record;
pub mod scenario;
pub mod seed;
pub mod stats;

pub use generate::WorkloadGenerator;
pub use inst::{DepDistance, TraceInst};
pub use profile::{all_benchmarks, benchmark_named, benchmarks_of, BenchmarkProfile, Suite};
pub use record::{read_trace, write_trace, TraceReader, TraceWriter, MTR_EXTENSION};
pub use scenario::{Composition, MixPart, Phase, Scenario, ScenarioGenerator, SegmentKind};
pub use seed::{replicate_seed, splitmix64};
pub use stats::{page_locality_ratios, run_length_buckets, same_line_adjacency, RunLengthBuckets};
