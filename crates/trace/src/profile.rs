//! Benchmark profiles: one calibrated parameter set per benchmark named in
//! the paper's Fig. 4.
//!
//! Each profile captures the axes MALEC is sensitive to (see DESIGN.md §1):
//! how much of the instruction stream references memory, how references
//! cluster into pages and lines, how large the working set is (miss-rate
//! class), and how serialized the stream is (dependencies limit the Input
//! Buffer's re-ordering headroom). Values are calibrated to the per-benchmark
//! observations in Sec. III and Sec. VI of the paper: mcf's ≈7× average miss
//! rate, art's streaming behaviour, gap's 37 % load fraction and dependency
//! chains, mgrid's line-stride accesses (merge contribution < 2 %),
//! djpeg/h263dec's high structured locality, and the suite-level averages
//! (memory instructions ≈ 45 % / 40 % / 37 % for INT / FP / MB2; load:store
//! ≈ 2:1; 70 % of loads directly followed by a same-page load).

use serde::{Deserialize, Serialize};

/// Benchmark suite, for grouping and geometric means.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2000 integer.
    SpecInt,
    /// SPEC CPU2000 floating point.
    SpecFp,
    /// MediaBench2.
    MediaBench2,
}

impl Suite {
    /// Display name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            Suite::SpecInt => "SPEC-INT",
            Suite::SpecFp => "SPEC-FP",
            Suite::MediaBench2 => "MediaBench2",
        }
    }

    /// All suites, in the paper's figure order.
    pub const fn all() -> [Suite; 3] {
        [Suite::SpecInt, Suite::SpecFp, Suite::MediaBench2]
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The calibrated generator parameters for one benchmark.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name as printed in Fig. 4.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Fraction of instructions that reference memory.
    pub mem_fraction: f64,
    /// Loads as a share of memory references (≈ 2/3 per Sec. III).
    pub load_share: f64,
    /// Number of concurrently active access streams.
    pub streams: u8,
    /// Probability that the next memory reference switches streams.
    pub stream_switch_prob: f64,
    /// Mean accesses a stream makes to one page before moving on.
    pub page_run_mean: f64,
    /// Access stride in bytes within a page; 0 ⇒ random offsets.
    pub stride_bytes: u32,
    /// Working-set size in 4 KiB pages (drives the miss-rate class).
    pub working_set_pages: u32,
    /// Probability a stream's next page is re-used from the recent hot set
    /// (vs drawn fresh from the whole working set).
    pub page_reuse_prob: f64,
    /// Probability a load's address depends on a recent load
    /// (pointer chasing; serializes the stream).
    pub addr_dep_prob: f64,
    /// Probability a non-memory op depends on a recent producer.
    pub dep_prob: f64,
    /// Fraction of non-memory ops with a long (3-cycle) latency.
    pub long_op_fraction: f64,
    /// Fraction of non-memory instructions that are branches.
    pub branch_fraction: f64,
    /// Misprediction rate of those branches.
    pub mispredict_rate: f64,
}

impl BenchmarkProfile {
    /// Virtual-address region base for this benchmark (keeps benchmarks in
    /// disjoint parts of the 32-bit space, like separate processes).
    pub fn vaddr_base(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Keep within a 32-bit space, 256 MiB-aligned regions.
        (h % 14) << 28
    }

    /// Loads as a fraction of all instructions.
    pub fn load_fraction(&self) -> f64 {
        self.mem_fraction * self.load_share
    }
}

fn int(name: &'static str) -> BenchmarkProfile {
    BenchmarkProfile {
        name,
        suite: Suite::SpecInt,
        mem_fraction: 0.45,
        load_share: 0.67,
        streams: 3,
        stream_switch_prob: 0.48,
        page_run_mean: 5.0,
        stride_bytes: 8,
        working_set_pages: 256,
        page_reuse_prob: 0.75,
        addr_dep_prob: 0.50,
        dep_prob: 0.30,
        long_op_fraction: 0.10,
        branch_fraction: 0.18,
        mispredict_rate: 0.07,
    }
}

fn fp(name: &'static str) -> BenchmarkProfile {
    BenchmarkProfile {
        name,
        suite: Suite::SpecFp,
        mem_fraction: 0.40,
        load_share: 0.68,
        streams: 3,
        stream_switch_prob: 0.38,
        page_run_mean: 9.0,
        stride_bytes: 8,
        working_set_pages: 448,
        page_reuse_prob: 0.7,
        addr_dep_prob: 0.25,
        dep_prob: 0.18,
        long_op_fraction: 0.35,
        branch_fraction: 0.08,
        mispredict_rate: 0.02,
    }
}

fn mb2(name: &'static str) -> BenchmarkProfile {
    BenchmarkProfile {
        name,
        suite: Suite::MediaBench2,
        mem_fraction: 0.37,
        load_share: 0.67,
        streams: 2,
        stream_switch_prob: 0.32,
        page_run_mean: 13.0,
        stride_bytes: 4,
        working_set_pages: 96,
        page_reuse_prob: 0.85,
        addr_dep_prob: 0.25,
        dep_prob: 0.22,
        long_op_fraction: 0.20,
        branch_fraction: 0.08,
        mispredict_rate: 0.02,
    }
}

/// All 38 benchmark profiles, in the paper's Fig. 4 order
/// (12 SPEC-INT, 14 SPEC-FP, 12 MediaBench2).
#[allow(clippy::vec_init_then_push)] // one push per profile reads best
pub fn all_benchmarks() -> Vec<BenchmarkProfile> {
    let mut v = Vec::with_capacity(38);

    // --- SPEC-INT ---
    v.push(BenchmarkProfile {
        page_run_mean: 9.0,
        stride_bytes: 4,
        working_set_pages: 128,
        streams: 2,
        stream_switch_prob: 0.40,
        ..int("gzip")
    });
    v.push(BenchmarkProfile {
        working_set_pages: 288,
        page_run_mean: 4.0,
        ..int("vpr")
    });
    v.push(BenchmarkProfile {
        streams: 4,
        stride_bytes: 0,
        page_run_mean: 3.5,
        working_set_pages: 512,
        stream_switch_prob: 0.52,
        ..int("gcc")
    });
    v.push(BenchmarkProfile {
        // Huge working set, pointer chasing, very low locality: the paper's
        // highest miss rate (~7x average) and smallest speedup.
        working_set_pages: 16384,
        page_reuse_prob: 0.08,
        // A "run" is the 2-3 field accesses of one list/tree node: 8-byte
        // strides inside a single 64 B line, then a jump to another node
        // (usually another page). High same-line adjacency, terrible page
        // locality — this is what makes load merging slash mcf's misses
        // (Sec. VI-C: -51 % dynamic energy, +5 % without merging).
        page_run_mean: 3.5,
        stride_bytes: 8,
        streams: 4,
        stream_switch_prob: 0.35,
        addr_dep_prob: 0.90,
        dep_prob: 0.35,
        ..int("mcf")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 4.0,
        working_set_pages: 192,
        ..int("crafty")
    });
    v.push(BenchmarkProfile {
        stride_bytes: 0,
        page_run_mean: 3.5,
        working_set_pages: 384,
        addr_dep_prob: 0.70,
        ..int("parser")
    });
    v.push(BenchmarkProfile {
        streams: 2,
        page_run_mean: 6.5,
        working_set_pages: 96,
        stream_switch_prob: 0.42,
        ..int("eon")
    });
    v.push(BenchmarkProfile {
        stride_bytes: 0,
        page_run_mean: 4.0,
        working_set_pages: 256,
        ..int("perlbmk")
    });
    v.push(BenchmarkProfile {
        // 37% loads of the instruction count; dependency chains that
        // prevent re-ordering (Sec. VI-B).
        mem_fraction: 0.50,
        load_share: 0.74,
        streams: 2,
        stream_switch_prob: 0.30,
        page_run_mean: 6.5,
        stride_bytes: 4,
        working_set_pages: 224,
        addr_dep_prob: 0.80,
        dep_prob: 0.50,
        ..int("gap")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 4.5,
        working_set_pages: 320,
        ..int("vortex")
    });
    v.push(BenchmarkProfile {
        streams: 2,
        page_run_mean: 8.0,
        stride_bytes: 4,
        working_set_pages: 160,
        stream_switch_prob: 0.42,
        ..int("bzip2")
    });
    v.push(BenchmarkProfile {
        stride_bytes: 0,
        page_run_mean: 3.0,
        working_set_pages: 448,
        stream_switch_prob: 0.55,
        ..int("twolf")
    });

    // --- SPEC-FP ---
    v.push(BenchmarkProfile {
        page_run_mean: 9.0,
        working_set_pages: 256,
        ..fp("wupwise")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 16.0,
        working_set_pages: 448,
        page_reuse_prob: 0.65,
        ..fp("swim")
    });
    v.push(BenchmarkProfile {
        // Line-stride accesses: consecutive loads land on different lines,
        // so load merging contributes < 2 % (Sec. VI-B).
        stride_bytes: 64,
        page_run_mean: 6.0,
        working_set_pages: 128,
        page_reuse_prob: 0.88,
        ..fp("mgrid")
    });
    v.push(BenchmarkProfile {
        stride_bytes: 16,
        page_run_mean: 9.0,
        working_set_pages: 640,
        ..fp("applu")
    });
    v.push(BenchmarkProfile {
        mem_fraction: 0.38,
        stride_bytes: 4,
        page_run_mean: 6.0,
        working_set_pages: 192,
        ..fp("mesa")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 8.0,
        working_set_pages: 384,
        ..fp("galgel")
    });
    v.push(BenchmarkProfile {
        // Streaming sweeps over a working set far beyond L1+L2: high spatial
        // locality inside a page, almost no temporal re-use.
        working_set_pages: 8192,
        page_reuse_prob: 0.02,
        page_run_mean: 20.0,
        streams: 2,
        stream_switch_prob: 0.30,
        ..fp("art")
    });
    v.push(BenchmarkProfile {
        // Particularly suitable access pattern for load merging (66 % of
        // MALEC's speedup, Sec. VI-B): tight 4-byte strides, few streams.
        stride_bytes: 4,
        page_run_mean: 8.0,
        streams: 2,
        stream_switch_prob: 0.20,
        working_set_pages: 320,
        ..fp("equake")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 7.0,
        working_set_pages: 448,
        ..fp("facerec")
    });
    v.push(BenchmarkProfile {
        stride_bytes: 0,
        page_run_mean: 4.0,
        working_set_pages: 896,
        addr_dep_prob: 0.60,
        ..fp("ammp")
    });
    v.push(BenchmarkProfile {
        stride_bytes: 16,
        page_run_mean: 11.0,
        working_set_pages: 512,
        ..fp("lucas")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 5.5,
        working_set_pages: 576,
        ..fp("fma3d")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 9.0,
        working_set_pages: 288,
        long_op_fraction: 0.45,
        ..fp("sixtrack")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 7.0,
        working_set_pages: 416,
        ..fp("apsi")
    });

    // --- MediaBench2 ---
    v.push(BenchmarkProfile {
        page_run_mean: 12.0,
        ..mb2("cjpeg")
    });
    v.push(BenchmarkProfile {
        // Excellent locality, numerous parallel accesses: ~30 % speedup.
        page_run_mean: 20.0,
        working_set_pages: 64,
        dep_prob: 0.05,
        addr_dep_prob: 0.02,
        stream_switch_prob: 0.22,
        ..mb2("djpeg")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 18.0,
        working_set_pages: 80,
        dep_prob: 0.06,
        addr_dep_prob: 0.02,
        stream_switch_prob: 0.22,
        ..mb2("h263dec")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 14.0,
        stride_bytes: 8,
        working_set_pages: 112,
        ..mb2("h263enc")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 11.0,
        working_set_pages: 128,
        dep_prob: 0.12,
        ..mb2("h264dec")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 10.0,
        stride_bytes: 8,
        working_set_pages: 144,
        dep_prob: 0.15,
        ..mb2("h264enc")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 12.0,
        stride_bytes: 8,
        working_set_pages: 96,
        ..mb2("jpg2000dec")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 12.0,
        stride_bytes: 8,
        working_set_pages: 104,
        ..mb2("jpg2000enc")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 16.0,
        working_set_pages: 72,
        ..mb2("mpeg2dec")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 13.0,
        stride_bytes: 8,
        working_set_pages: 120,
        ..mb2("mpeg2enc")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 14.0,
        working_set_pages: 88,
        ..mb2("mpeg4dec")
    });
    v.push(BenchmarkProfile {
        page_run_mean: 11.0,
        stride_bytes: 8,
        working_set_pages: 136,
        ..mb2("mpeg4enc")
    });

    v
}

/// Finds a profile by its Fig. 4 name.
pub fn benchmark_named(name: &str) -> Option<BenchmarkProfile> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The benchmarks of one suite, in figure order.
pub fn benchmarks_of(suite: Suite) -> Vec<BenchmarkProfile> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.suite == suite)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_figure4() {
        assert_eq!(benchmarks_of(Suite::SpecInt).len(), 12);
        assert_eq!(benchmarks_of(Suite::SpecFp).len(), 14);
        assert_eq!(benchmarks_of(Suite::MediaBench2).len(), 12);
        assert_eq!(all_benchmarks().len(), 38);
    }

    #[test]
    fn names_are_unique() {
        let all = all_benchmarks();
        let mut names: Vec<&str> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 38);
    }

    #[test]
    fn suite_memory_fractions_follow_the_paper_ordering() {
        // SPEC-INT 45 % > SPEC-FP 40 % > MB2 37 % (Sec. VI-B).
        let avg = |s: Suite| {
            let b = benchmarks_of(s);
            b.iter().map(|p| p.mem_fraction).sum::<f64>() / b.len() as f64
        };
        let (i, f, m) = (
            avg(Suite::SpecInt),
            avg(Suite::SpecFp),
            avg(Suite::MediaBench2),
        );
        assert!(i > f && f > m, "mem fractions: int={i} fp={f} mb2={m}");
        assert!((i - 0.45).abs() < 0.02);
        assert!((m - 0.37).abs() < 0.01);
    }

    #[test]
    fn load_store_ratio_is_about_two_to_one() {
        let all = all_benchmarks();
        let avg_share = all.iter().map(|b| b.load_share).sum::<f64>() / all.len() as f64;
        assert!((avg_share - 2.0 / 3.0).abs() < 0.03, "share = {avg_share}");
    }

    #[test]
    fn mcf_is_the_miss_rate_outlier() {
        let all = all_benchmarks();
        let mcf = all.iter().find(|b| b.name == "mcf").unwrap();
        let max_other_ws = all
            .iter()
            .filter(|b| b.name != "mcf" && b.name != "art")
            .map(|b| b.working_set_pages)
            .max()
            .unwrap();
        assert!(mcf.working_set_pages > 10 * max_other_ws);
        assert!(mcf.page_reuse_prob < 0.1);
    }

    #[test]
    fn mgrid_uses_line_strides() {
        let mgrid = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "mgrid")
            .unwrap();
        assert_eq!(mgrid.stride_bytes, 64, "one access per line => no merging");
    }

    #[test]
    fn gap_is_load_heavy_and_serialized() {
        let gap = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "gap")
            .unwrap();
        assert!((gap.load_fraction() - 0.37).abs() < 0.01);
        assert!(gap.dep_prob >= 0.5);
    }

    #[test]
    fn vaddr_bases_fit_32_bits() {
        for b in all_benchmarks() {
            assert!(b.vaddr_base() < (1 << 32));
            assert_eq!(b.vaddr_base() % (1 << 28), 0);
        }
    }

    #[test]
    fn suite_display_names() {
        assert_eq!(Suite::SpecInt.to_string(), "SPEC-INT");
        assert_eq!(Suite::SpecFp.to_string(), "SPEC-FP");
        assert_eq!(Suite::MediaBench2.to_string(), "MediaBench2");
        assert_eq!(Suite::all().len(), 3);
    }
}
