//! Fig. 1 statistics: consecutive same-page access runs with allowed
//! intermediates, plus the same-line adjacency that motivates load merging.
//!
//! The paper's Fig. 1 plots, for each benchmark and for n ∈ {0, 1, 2, 3, 4,
//! 8} allowed intermediate accesses to a *different* page, the share of
//! loads belonging to same-page runs of length 1, 2, 3–4, 5–8 and > 8.
//! Headline numbers: 70 % of loads are directly followed by one or more
//! same-page loads (n = 0), rising to 85 / 90 / 92 % for n = 1 / 2 / 3.

use serde::{Deserialize, Serialize};

use malec_types::addr::VPageId;

/// Share of loads in same-page runs of each length bucket (Fig. 1's bar
/// segments). Shares sum to 1 (within rounding) for non-empty inputs.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct RunLengthBuckets {
    /// Runs of exactly 1 access (no same-page follower) — "x=1".
    pub single: f64,
    /// Runs of exactly 2 accesses — "x=2".
    pub pair: f64,
    /// Runs of 3–4 accesses.
    pub three_to_four: f64,
    /// Runs of 5–8 accesses.
    pub five_to_eight: f64,
    /// Runs longer than 8 accesses.
    pub more_than_eight: f64,
}

impl RunLengthBuckets {
    /// Share of loads that belong to a run of length ≥ 2, i.e. loads that
    /// are followed (within the allowed intermediates) by a same-page load.
    pub fn grouped_share(&self) -> f64 {
        self.pair + self.three_to_four + self.five_to_eight + self.more_than_eight
    }
}

/// Decomposes a page-id sequence into maximal same-page runs where up to
/// `allowed_intermediates` accesses to other pages may separate members of
/// a run, then buckets run lengths weighted by accesses.
///
/// Accesses consumed by one run do not start new runs; the intermediates
/// themselves are left free to form their own runs (this mirrors how the
/// Input Buffer groups accesses: an access participates in one group).
///
/// # Example
///
/// ```
/// use malec_trace::stats::run_length_buckets;
/// use malec_types::addr::VPageId;
///
/// let p = |v| VPageId::new(v);
/// // A A B A  — with 1 intermediate allowed, the A-run has length 3.
/// let b = run_length_buckets(&[p(1), p(1), p(2), p(1)], 1);
/// assert!(b.three_to_four > 0.7);
/// ```
pub fn run_length_buckets(pages: &[VPageId], allowed_intermediates: usize) -> RunLengthBuckets {
    if pages.is_empty() {
        return RunLengthBuckets::default();
    }
    let mut consumed = vec![false; pages.len()];
    let mut buckets = RunLengthBuckets::default();
    let total = pages.len() as f64;

    for start in 0..pages.len() {
        if consumed[start] {
            continue;
        }
        consumed[start] = true;
        let page = pages[start];
        let mut run_len = 1u64;
        let mut misses = 0usize;
        let mut j = start + 1;
        while j < pages.len() {
            if consumed[j] {
                j += 1;
                continue;
            }
            if pages[j] == page {
                consumed[j] = true;
                run_len += 1;
                misses = 0;
            } else {
                misses += 1;
                if misses > allowed_intermediates {
                    break;
                }
            }
            j += 1;
        }
        let weight = run_len as f64 / total;
        match run_len {
            1 => buckets.single += weight,
            2 => buckets.pair += weight,
            3..=4 => buckets.three_to_four += weight,
            5..=8 => buckets.five_to_eight += weight,
            _ => buckets.more_than_eight += weight,
        }
    }
    buckets
}

/// For each entry of `allowed`, the share of loads that are part of a
/// same-page group (run length ≥ 2) when that many intermediates are
/// permitted — the headline series of Fig. 1.
pub fn page_locality_ratios(pages: &[VPageId], allowed: &[usize]) -> Vec<f64> {
    allowed
        .iter()
        .map(|&n| run_length_buckets(pages, n).grouped_share())
        .collect()
}

/// Share of accesses directly followed by an access to the same cache line
/// (Sec. III reports 46 % for loads; this motivates load merging).
pub fn same_line_adjacency(lines: &[u64]) -> f64 {
    if lines.len() < 2 {
        return 0.0;
    }
    let same = lines.windows(2).filter(|w| w[0] == w[1]).count();
    same as f64 / (lines.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::WorkloadGenerator;
    use crate::profile::{all_benchmarks, Suite};
    use malec_types::addr::VPageId;

    fn p(v: u64) -> VPageId {
        VPageId::new(v)
    }

    #[test]
    fn empty_input() {
        let b = run_length_buckets(&[], 0);
        assert_eq!(b.grouped_share(), 0.0);
        assert_eq!(same_line_adjacency(&[]), 0.0);
        assert_eq!(same_line_adjacency(&[1]), 0.0);
    }

    #[test]
    fn all_same_page_is_one_long_run() {
        let pages = vec![p(5); 20];
        let b = run_length_buckets(&pages, 0);
        assert!((b.more_than_eight - 1.0).abs() < 1e-9);
        assert!((b.grouped_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_pages_no_grouping_without_intermediates() {
        let pages: Vec<VPageId> = (0..20).map(|i| p(i % 2)).collect();
        let b = run_length_buckets(&pages, 0);
        assert!((b.single - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_pages_fully_grouped_with_one_intermediate() {
        let pages: Vec<VPageId> = (0..20).map(|i| p(i % 2)).collect();
        let b = run_length_buckets(&pages, 1);
        assert!((b.grouped_share() - 1.0).abs() < 1e-9);
        assert!(b.more_than_eight > 0.9);
    }

    #[test]
    fn buckets_sum_to_one() {
        let pages: Vec<VPageId> = [1, 1, 2, 3, 3, 3, 4, 1, 2, 2]
            .iter()
            .map(|&v| p(v))
            .collect();
        for n in [0usize, 1, 2, 3] {
            let b = run_length_buckets(&pages, n);
            let sum = b.single + b.pair + b.three_to_four + b.five_to_eight + b.more_than_eight;
            assert!((sum - 1.0).abs() < 1e-9, "n={n}: sum={sum}");
        }
    }

    #[test]
    fn grouped_share_monotonic_in_allowed_intermediates() {
        let pages: Vec<VPageId> = (0..500).map(|i| p((i * 7) % 13)).collect();
        let ratios = page_locality_ratios(&pages, &[0, 1, 2, 3, 4, 8]);
        for w in ratios.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "ratios must be non-decreasing: {ratios:?}"
            );
        }
    }

    #[test]
    fn doc_example_run_of_three() {
        let b = run_length_buckets(&[p(1), p(1), p(2), p(1)], 1);
        // Run {A,A,A} (3 of 4 accesses) + run {B} (1 of 4).
        assert!((b.three_to_four - 0.75).abs() < 1e-9);
        assert!((b.single - 0.25).abs() < 1e-9);
    }

    #[test]
    fn same_line_adjacency_counts_pairs() {
        assert!((same_line_adjacency(&[1, 1, 2, 2, 3]) - 0.5).abs() < 1e-9);
        assert_eq!(same_line_adjacency(&[1, 2, 3]), 0.0);
    }

    // --- Calibration checks against the paper's Fig. 1 / Sec. III ---

    fn load_pages(name: &str, n: usize) -> Vec<VPageId> {
        let prof = all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        WorkloadGenerator::new(&prof, 11)
            .take(n)
            .filter(|i| i.is_load())
            .map(|i| VPageId::new(i.vaddr().unwrap().raw() >> 12))
            .collect()
    }

    #[test]
    fn overall_direct_follow_ratio_near_70_percent() {
        let mut weighted = 0.0;
        let mut count = 0.0;
        for prof in all_benchmarks() {
            let pages: Vec<VPageId> = WorkloadGenerator::new(&prof, 3)
                .take(40_000)
                .filter(|i| i.is_load())
                .map(|i| VPageId::new(i.vaddr().unwrap().raw() >> 12))
                .collect();
            weighted += run_length_buckets(&pages, 0).grouped_share();
            count += 1.0;
        }
        let avg = weighted / count;
        assert!(
            (0.60..0.80).contains(&avg),
            "average direct-follow ratio should be near 70%: {avg}"
        );
    }

    #[test]
    fn ratio_rises_with_intermediates_like_figure1() {
        let mut sums = [0.0f64; 4];
        let mut n = 0.0;
        for prof in all_benchmarks() {
            let pages: Vec<VPageId> = WorkloadGenerator::new(&prof, 5)
                .take(30_000)
                .filter(|i| i.is_load())
                .map(|i| VPageId::new(i.vaddr().unwrap().raw() >> 12))
                .collect();
            let r = page_locality_ratios(&pages, &[0, 1, 2, 3]);
            for (s, v) in sums.iter_mut().zip(&r) {
                *s += v;
            }
            n += 1.0;
        }
        let avg: Vec<f64> = sums.iter().map(|s| s / n).collect();
        // Paper: 70 / 85 / 90 / 92 %. Accept the right shape.
        assert!(avg[1] > avg[0] + 0.05, "n=1 should add >5pp: {avg:?}");
        assert!(avg[3] > 0.85, "n=3 should exceed 85%: {avg:?}");
    }

    #[test]
    fn media_benchmarks_have_higher_locality_than_mcf() {
        let mcf = run_length_buckets(&load_pages("mcf", 30_000), 0).grouped_share();
        let djpeg = run_length_buckets(&load_pages("djpeg", 30_000), 0).grouped_share();
        assert!(
            djpeg > mcf + 0.2,
            "djpeg ({djpeg}) should dominate mcf ({mcf})"
        );
    }

    #[test]
    fn suite_average_line_adjacency_near_46_percent() {
        // Sec. III: 46% of loads are directly followed by a load to the
        // same line. Check the workload population lands in a sane band.
        let mut total = 0.0;
        let mut n = 0.0;
        for prof in all_benchmarks()
            .into_iter()
            .filter(|b| b.suite != Suite::SpecFp)
        {
            let lines: Vec<u64> = WorkloadGenerator::new(&prof, 9)
                .take(30_000)
                .filter(|i| i.is_load())
                .map(|i| i.vaddr().unwrap().raw() >> 6)
                .collect();
            total += same_line_adjacency(&lines);
            n += 1.0;
        }
        let avg = total / n;
        assert!(
            (0.30..0.65).contains(&avg),
            "line adjacency should be near 46%: {avg}"
        );
    }
}
