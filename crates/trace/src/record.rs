//! Trace recording and replay.
//!
//! Synthetic generation is deterministic, but exporting traces makes runs
//! portable across tool versions and lets external (real) traces drive the
//! simulator. The format is a compact little-endian byte stream:
//!
//! ```text
//! magic "MLCT"  version u8
//! record*:
//!   tag u8  — 0 op, 1 load, 2 store, 3 branch
//!   Op:     latency u8, dep varint (0 = none)
//!   Load:   vaddr varint, size u8, addr_dep varint (0 = none)
//!   Store:  vaddr varint, size u8, data_dep varint (0 = none)
//!   Branch: flags u8 (bit0 = mispredicted), dep varint (0 = none)
//! ```
//!
//! Varints are LEB128 (7 bits per byte, high bit = continuation).

use std::io::{self, Read, Write};

use malec_types::addr::VAddr;

use crate::inst::TraceInst;

const MAGIC: &[u8; 4] = b"MLCT";
const VERSION: u8 = 1;

fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 63 && byte[0] > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn dep_to_wire(dep: Option<u32>) -> u64 {
    dep.map_or(0, |d| u64::from(d) + 1)
}

fn dep_from_wire(v: u64) -> Option<u32> {
    if v == 0 {
        None
    } else {
        Some((v - 1).min(u64::from(u32::MAX)) as u32)
    }
}

/// Writes a trace to `w`. A mutable reference also works (`&mut Vec<u8>`
/// via `io::Write`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use malec_trace::record::{read_trace, write_trace};
/// use malec_trace::{all_benchmarks, WorkloadGenerator};
///
/// let insts: Vec<_> = WorkloadGenerator::new(&all_benchmarks()[0], 1).take(100).collect();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, insts.iter().copied())?;
/// assert_eq!(read_trace(&mut buf.as_slice())?, insts);
/// # Ok(())
/// # }
/// ```
pub fn write_trace(
    w: &mut impl Write,
    trace: impl IntoIterator<Item = TraceInst>,
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    for inst in trace {
        match inst {
            TraceInst::Op { latency, dep } => {
                w.write_all(&[0, latency])?;
                write_varint(w, dep_to_wire(dep))?;
            }
            TraceInst::Load {
                vaddr,
                size,
                addr_dep,
            } => {
                w.write_all(&[1])?;
                write_varint(w, vaddr.raw())?;
                w.write_all(&[size])?;
                write_varint(w, dep_to_wire(addr_dep))?;
            }
            TraceInst::Store {
                vaddr,
                size,
                data_dep,
            } => {
                w.write_all(&[2])?;
                write_varint(w, vaddr.raw())?;
                w.write_all(&[size])?;
                write_varint(w, dep_to_wire(data_dep))?;
            }
            TraceInst::Branch { mispredicted, dep } => {
                w.write_all(&[3, u8::from(mispredicted)])?;
                write_varint(w, dep_to_wire(dep))?;
            }
        }
    }
    Ok(())
}

/// Reads a complete trace from `r`.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic/version/tag, and propagates I/O
/// errors. A clean EOF at a record boundary ends the trace.
pub fn read_trace(r: &mut impl Read) -> io::Result<Vec<TraceInst>> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    if &header[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    if header[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported trace version",
        ));
    }
    let mut out = Vec::new();
    loop {
        let mut tag = [0u8; 1];
        match r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(out),
            Err(e) => return Err(e),
        }
        let inst = match tag[0] {
            0 => {
                let mut latency = [0u8; 1];
                r.read_exact(&mut latency)?;
                TraceInst::Op {
                    latency: latency[0],
                    dep: dep_from_wire(read_varint(r)?),
                }
            }
            1 => {
                let vaddr = VAddr::new(read_varint(r)?);
                let mut size = [0u8; 1];
                r.read_exact(&mut size)?;
                TraceInst::Load {
                    vaddr,
                    size: size[0],
                    addr_dep: dep_from_wire(read_varint(r)?),
                }
            }
            2 => {
                let vaddr = VAddr::new(read_varint(r)?);
                let mut size = [0u8; 1];
                r.read_exact(&mut size)?;
                TraceInst::Store {
                    vaddr,
                    size: size[0],
                    data_dep: dep_from_wire(read_varint(r)?),
                }
            }
            3 => {
                let mut flags = [0u8; 1];
                r.read_exact(&mut flags)?;
                TraceInst::Branch {
                    mispredicted: flags[0] & 1 != 0,
                    dep: dep_from_wire(read_varint(r)?),
                }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown trace record tag {other}"),
                ))
            }
        };
        out.push(inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::WorkloadGenerator;
    use crate::profile::all_benchmarks;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_generated_trace() {
        for profile in all_benchmarks().iter().take(4) {
            let insts: Vec<TraceInst> = WorkloadGenerator::new(profile, 9).take(5_000).collect();
            let mut buf = Vec::new();
            write_trace(&mut buf, insts.iter().copied()).expect("write");
            let back = read_trace(&mut buf.as_slice()).expect("read");
            assert_eq!(back, insts, "{}", profile.name);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).expect("write");
        assert_eq!(buf.len(), 5, "just the header");
        assert!(read_trace(&mut buf.as_slice()).expect("read").is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01".to_vec();
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let buf = b"MLCT\x63".to_vec();
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).expect("write");
        buf.push(9);
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            [TraceInst::Load {
                vaddr: VAddr::new(0x1234_5678),
                size: 8,
                addr_dep: Some(3),
            }],
        )
        .expect("write");
        buf.truncate(buf.len() - 1);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in proptest::num::u64::ANY) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            prop_assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }

        #[test]
        fn prop_dep_wire_roundtrip(d in proptest::option::of(0u32..u32::MAX)) {
            prop_assert_eq!(dep_from_wire(dep_to_wire(d)), d);
        }
    }
}
