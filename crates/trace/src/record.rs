//! Trace recording and replay — the `.mtr` format.
//!
//! Synthetic generation is deterministic, but exporting traces makes runs
//! portable across tool versions, lets external (real) traces drive the
//! simulator, and lets any scenario be recorded once and replayed
//! bit-identically. The format is a compact little-endian byte stream,
//! conventionally stored with the [`MTR_EXTENSION`] (`.mtr`):
//!
//! ```text
//! magic "MLCT"  version u8
//! record*:
//!   tag u8  — 0 op, 1 load, 2 store, 3 branch
//!   Op:     latency u8, dep varint (0 = none)
//!   Load:   vaddr varint, size u8, addr_dep varint (0 = none)
//!   Store:  vaddr varint, size u8, data_dep varint (0 = none)
//!   Branch: flags u8 (bit0 = mispredicted), dep varint (0 = none)
//! ```
//!
//! Varints are LEB128 (7 bits per byte, high bit = continuation).
//!
//! Two access styles:
//!
//! * whole-trace: [`write_trace`] / [`read_trace`] (small traces, tests);
//! * streaming: [`TraceWriter`] appends records one at a time and
//!   [`TraceReader`] iterates records straight off any [`Read`] — so a
//!   multi-gigabyte trace can feed `OoOCore` without ever being
//!   materialized in memory.

use std::io::{self, Read, Write};

use malec_types::addr::VAddr;

use crate::inst::TraceInst;

/// Conventional file extension of this trace format.
pub const MTR_EXTENSION: &str = "mtr";

const MAGIC: &[u8; 4] = b"MLCT";
const VERSION: u8 = 1;

fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 63 && byte[0] > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn dep_to_wire(dep: Option<u32>) -> u64 {
    dep.map_or(0, |d| u64::from(d) + 1)
}

fn dep_from_wire(v: u64) -> Option<u32> {
    if v == 0 {
        None
    } else {
        Some((v - 1).min(u64::from(u32::MAX)) as u32)
    }
}

/// Writes a trace to `w`. A mutable reference also works (`&mut Vec<u8>`
/// via `io::Write`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use malec_trace::record::{read_trace, write_trace};
/// use malec_trace::{all_benchmarks, WorkloadGenerator};
///
/// let insts: Vec<_> = WorkloadGenerator::new(&all_benchmarks()[0], 1).take(100).collect();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, insts.iter().copied())?;
/// assert_eq!(read_trace(&mut buf.as_slice())?, insts);
/// # Ok(())
/// # }
/// ```
pub fn write_trace(
    w: &mut impl Write,
    trace: impl IntoIterator<Item = TraceInst>,
) -> io::Result<()> {
    let mut writer = TraceWriter::new(w)?;
    for inst in trace {
        writer.write(inst)?;
    }
    Ok(())
}

/// Incremental `.mtr` writer: emits the header on construction, then one
/// record per [`write`](TraceWriter::write) call. Streams of any length can
/// be recorded without buffering them.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use malec_trace::record::{read_trace, TraceWriter};
/// use malec_trace::{all_benchmarks, WorkloadGenerator};
///
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf)?;
/// for inst in WorkloadGenerator::new(&all_benchmarks()[0], 1).take(100) {
///     w.write(inst)?;
/// }
/// assert_eq!(read_trace(&mut buf.as_slice())?.len(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W> {
    w: W,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `w` (writes the magic + version header).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        Ok(Self { w, written: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write(&mut self, inst: TraceInst) -> io::Result<()> {
        match inst {
            TraceInst::Op { latency, dep } => {
                self.w.write_all(&[0, latency])?;
                write_varint(&mut self.w, dep_to_wire(dep))?;
            }
            TraceInst::Load {
                vaddr,
                size,
                addr_dep,
            } => {
                self.w.write_all(&[1])?;
                write_varint(&mut self.w, vaddr.raw())?;
                self.w.write_all(&[size])?;
                write_varint(&mut self.w, dep_to_wire(addr_dep))?;
            }
            TraceInst::Store {
                vaddr,
                size,
                data_dep,
            } => {
                self.w.write_all(&[2])?;
                write_varint(&mut self.w, vaddr.raw())?;
                self.w.write_all(&[size])?;
                write_varint(&mut self.w, dep_to_wire(data_dep))?;
            }
            TraceInst::Branch { mispredicted, dep } => {
                self.w.write_all(&[3, u8::from(mispredicted)])?;
                write_varint(&mut self.w, dep_to_wire(dep))?;
            }
        }
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Reads a complete trace from `r`.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic/version/tag, and propagates I/O
/// errors. A clean EOF at a record boundary ends the trace.
pub fn read_trace(r: &mut impl Read) -> io::Result<Vec<TraceInst>> {
    TraceReader::new(r)?.collect()
}

/// Streaming `.mtr` reader: an iterator of records pulled straight off the
/// underlying [`Read`]. Nothing beyond the current record is buffered, so
/// arbitrarily large traces can feed the simulator directly — see
/// [`TraceReader::into_insts`] for the panicking adaptor `OoOCore::run`
/// consumes.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use malec_trace::record::{write_trace, TraceReader};
/// use malec_trace::{all_benchmarks, WorkloadGenerator};
///
/// let insts: Vec<_> = WorkloadGenerator::new(&all_benchmarks()[0], 1).take(50).collect();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, insts.iter().copied())?;
/// let streamed: Vec<_> = TraceReader::new(buf.as_slice())?.collect::<std::io::Result<_>>()?;
/// assert_eq!(streamed, insts);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceReader<R> {
    r: R,
    /// Set once EOF or an error was yielded; further `next` calls return
    /// `None` instead of misreading the stream mid-record.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace on `r`, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic or version; propagates I/O
    /// errors.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut header = [0u8; 5];
        r.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        if header[4] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported trace version",
            ));
        }
        Ok(Self { r, done: false })
    }

    /// Adapts the reader into the infallible iterator the core consumes,
    /// panicking on a malformed or truncated record (replay of a corrupt
    /// trace has no meaningful recovery inside a simulation).
    pub fn into_insts(self) -> impl Iterator<Item = TraceInst> {
        self.map(|r| r.unwrap_or_else(|e| panic!("corrupt .mtr trace: {e}")))
    }

    fn read_record(&mut self) -> io::Result<Option<TraceInst>> {
        let mut tag = [0u8; 1];
        match self.r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let r = &mut self.r;
        let inst = match tag[0] {
            0 => {
                let mut latency = [0u8; 1];
                r.read_exact(&mut latency)?;
                TraceInst::Op {
                    latency: latency[0],
                    dep: dep_from_wire(read_varint(r)?),
                }
            }
            1 => {
                let vaddr = VAddr::new(read_varint(r)?);
                let mut size = [0u8; 1];
                r.read_exact(&mut size)?;
                TraceInst::Load {
                    vaddr,
                    size: size[0],
                    addr_dep: dep_from_wire(read_varint(r)?),
                }
            }
            2 => {
                let vaddr = VAddr::new(read_varint(r)?);
                let mut size = [0u8; 1];
                r.read_exact(&mut size)?;
                TraceInst::Store {
                    vaddr,
                    size: size[0],
                    data_dep: dep_from_wire(read_varint(r)?),
                }
            }
            3 => {
                let mut flags = [0u8; 1];
                r.read_exact(&mut flags)?;
                TraceInst::Branch {
                    mispredicted: flags[0] & 1 != 0,
                    dep: dep_from_wire(read_varint(r)?),
                }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown trace record tag {other}"),
                ))
            }
        };
        Ok(Some(inst))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceInst>;

    fn next(&mut self) -> Option<io::Result<TraceInst>> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(inst)) => Some(Ok(inst)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::WorkloadGenerator;
    use crate::profile::all_benchmarks;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_generated_trace() {
        for profile in all_benchmarks().iter().take(4) {
            let insts: Vec<TraceInst> = WorkloadGenerator::new(profile, 9).take(5_000).collect();
            let mut buf = Vec::new();
            write_trace(&mut buf, insts.iter().copied()).expect("write");
            let back = read_trace(&mut buf.as_slice()).expect("read");
            assert_eq!(back, insts, "{}", profile.name);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).expect("write");
        assert_eq!(buf.len(), 5, "just the header");
        assert!(read_trace(&mut buf.as_slice()).expect("read").is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01".to_vec();
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let buf = b"MLCT\x63".to_vec();
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).expect("write");
        buf.push(9);
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn streaming_reader_matches_whole_trace_read() {
        let insts: Vec<TraceInst> = WorkloadGenerator::new(&all_benchmarks()[2], 4)
            .take(3_000)
            .collect();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).expect("header");
        for &i in &insts {
            w.write(i).expect("record");
        }
        assert_eq!(w.written(), 3_000);
        w.finish().expect("finish");
        let streamed: Vec<TraceInst> = TraceReader::new(buf.as_slice())
            .expect("open")
            .collect::<io::Result<_>>()
            .expect("records");
        assert_eq!(streamed, insts);
        assert_eq!(read_trace(&mut buf.as_slice()).expect("read"), insts);
    }

    #[test]
    fn streaming_reader_stops_after_an_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).expect("write");
        buf.push(9); // unknown tag
        let mut reader = TraceReader::new(buf.as_slice()).expect("open");
        assert!(reader.next().expect("one item").is_err());
        assert!(reader.next().is_none(), "fused after the error");
    }

    #[test]
    fn into_insts_feeds_plain_instructions() {
        let insts: Vec<TraceInst> = WorkloadGenerator::new(&all_benchmarks()[0], 8)
            .take(200)
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, insts.iter().copied()).expect("write");
        let replayed: Vec<TraceInst> = TraceReader::new(buf.as_slice())
            .expect("open")
            .into_insts()
            .collect();
        assert_eq!(replayed, insts);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            [TraceInst::Load {
                vaddr: VAddr::new(0x1234_5678),
                size: 8,
                addr_dep: Some(3),
            }],
        )
        .expect("write");
        buf.truncate(buf.len() - 1);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in proptest::num::u64::ANY) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            prop_assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }

        #[test]
        fn prop_dep_wire_roundtrip(d in proptest::option::of(0u32..u32::MAX)) {
            prop_assert_eq!(dep_from_wire(dep_to_wire(d)), d);
        }
    }

    /// A small valid trace to corrupt (deterministic, so proptest offsets
    /// address stable byte positions).
    fn valid_trace_bytes() -> Vec<u8> {
        let insts: Vec<TraceInst> = WorkloadGenerator::new(&all_benchmarks()[1], 13)
            .take(300)
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, insts.iter().copied()).expect("write");
        buf
    }

    #[test]
    fn truncated_header_is_a_clean_error() {
        let buf = valid_trace_bytes();
        for cut in 0..5 {
            let err = read_trace(&mut &buf[..cut]).expect_err("short header must error");
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn overlong_varint_is_a_clean_error() {
        // A load whose vaddr varint never terminates within u64 range:
        // eleven continuation bytes is unconditionally overlong (64 bits
        // need at most ten 7-bit groups).
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).expect("header");
        buf.push(1); // load tag
        buf.extend_from_slice(&[0x80; 11]);
        buf.push(0x01);
        let err = read_trace(&mut buf.as_slice()).expect_err("overlong varint must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("varint"), "{err}");
    }

    #[test]
    fn varint_bits_beyond_u64_are_rejected() {
        // Ten groups whose last carries bits past bit 63.
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).expect("header");
        buf.push(1); // load tag
        buf.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f]);
        let err = read_trace(&mut buf.as_slice()).expect_err("overflow must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn mid_record_eof_is_an_error_not_a_panic() {
        let buf = valid_trace_bytes();
        // Walk the trace record by record to find every record boundary,
        // then cut strictly inside the final record.
        let n_records = read_trace(&mut buf.as_slice()).expect("valid").len();
        for cut in [buf.len() - 1, buf.len() - 2] {
            let result = read_trace(&mut &buf[..cut]);
            match result {
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "{e}"),
                // Cutting exactly at a record boundary yields a shorter,
                // valid trace; anything else must have errored above.
                Ok(insts) => assert!(insts.len() < n_records, "cut at {cut} lost nothing"),
            }
        }
    }

    proptest! {
        /// Truncating a valid trace at *any* offset either yields a clean
        /// prefix of the records (a cut at a record boundary) or a clean
        /// error — never a panic, never fabricated records.
        #[test]
        fn prop_truncation_never_panics(cut in 0usize..4096) {
            let buf = valid_trace_bytes();
            let full = read_trace(&mut buf.as_slice()).expect("valid");
            let cut = cut.min(buf.len());
            match read_trace(&mut &buf[..cut]) {
                Ok(insts) => {
                    prop_assert!(insts.len() <= full.len());
                    prop_assert_eq!(&full[..insts.len()], &insts[..], "a prefix, bit for bit");
                }
                Err(e) => {
                    prop_assert!(matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                    ), "unexpected error kind: {}", e);
                }
            }
        }

        /// Flipping one byte anywhere in a valid trace is either still
        /// decodable (the flip landed in a payload byte) or a clean error —
        /// the streaming reader must never panic on corrupt input.
        #[test]
        fn prop_single_byte_corruption_never_panics(
            offset in 0usize..4096,
            xor in 1u64..256,
        ) {
            let mut buf = valid_trace_bytes();
            let offset = offset.min(buf.len() - 1);
            buf[offset] ^= xor as u8;
            match TraceReader::new(buf.as_slice()) {
                Ok(reader) => {
                    for record in reader {
                        if record.is_err() {
                            break;
                        }
                    }
                }
                Err(e) => {
                    // Header corruption: must be the magic/version error.
                    prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData);
                }
            }
        }
    }
}
