//! Composable workload scenarios: multi-phase programs, mixed workloads,
//! and adversarial access patterns.
//!
//! The benchmark profiles of [`crate::profile`] each model one steady-state
//! SimPoint phase. Real programs are not steady-state: they move between
//! phases (decompress, then decode), interleave unrelated access streams
//! (an application plus its allocator plus its runtime), and occasionally
//! behave adversarially towards the very mechanisms MALEC relies on. A
//! [`Scenario`] composes all of these from four segment kinds:
//!
//! * [`SegmentKind::Benchmark`] — any calibrated profile, driven by the
//!   regular [`WorkloadGenerator`];
//! * [`SegmentKind::TlbThrash`] — every load walks a fresh page of a page
//!   pool far larger than the uTLB/TLB, collapsing translation locality
//!   (and with it uWT way-determination coverage);
//! * [`SegmentKind::BankConflict`] — independent loads whose line stride is
//!   a multiple of the bank count, so every parallel access fights for the
//!   same L1 bank;
//! * [`SegmentKind::StoreBurst`] — bursts of same-line stores chased by
//!   same-line loads, pressuring the SB→MB drain path and handing the merge
//!   logic maximal same-line opportunity.
//!
//! Scenarios compose segments in two ways: [`Composition::Phased`] switches
//! the active segment at exact instruction boundaries (cycling after the
//! last phase, so any instruction budget can be drawn), and
//! [`Composition::Mixed`] interleaves weighted blocks of several segments
//! round-robin, modelling concurrent activity.
//!
//! Everything is **seed-deterministic**: one scenario plus one seed defines
//! one infinite instruction stream, bit-for-bit, forever — the same
//! contract [`WorkloadGenerator`] gives single profiles.
//!
//! # Example
//!
//! ```
//! use malec_trace::scenario::{Composition, Phase, Scenario, SegmentKind};
//! use malec_trace::benchmark_named;
//!
//! let scenario = Scenario::phased(
//!     "warm-then-thrash",
//!     vec![
//!         Phase::new(SegmentKind::Benchmark(benchmark_named("gzip").unwrap()), 2_000),
//!         Phase::new(SegmentKind::TlbThrash(Default::default()), 2_000),
//!     ],
//! );
//! let a: Vec<_> = scenario.generator(7).take(5_000).collect();
//! let b: Vec<_> = scenario.generator(7).take(5_000).collect();
//! assert_eq!(a, b);
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use malec_types::addr::VAddr;

use crate::generate::WorkloadGenerator;
use crate::inst::TraceInst;
use crate::profile::{benchmark_named, BenchmarkProfile};

const PAGE_BYTES: u64 = 4096;
const LINE_BYTES: u64 = 64;

/// Parameters of the TLB-thrashing adversarial pattern.
///
/// The point of this adversary is to starve *translation* locality without
/// starving *cache* locality: each page contributes only
/// [`lines_per_page`](Self::lines_per_page) distinct lines (at a
/// page-dependent line index, so the footprint spreads over sets), keeping
/// the data L1-resident while the page pool cycles far beyond the TLB.
/// Every L1 hit then arrives without way information — the precise failure
/// mode that collapses uWT coverage.
#[derive(Clone, PartialEq, Debug)]
pub struct TlbThrashParams {
    /// Size of the page pool walked by the loads. Anything far above the
    /// 64-entry TLB defeats both translation caches.
    pub pages: u32,
    /// Distinct lines touched per page. `pages * lines_per_page` is the
    /// line footprint; keep it under the L1's line capacity to thrash
    /// translations *without* thrashing the cache.
    pub lines_per_page: u32,
    /// Fraction of instructions that are loads (the rest are single-cycle
    /// ops, keeping the pattern from being pure memory noise).
    pub load_fraction: f64,
}

impl Default for TlbThrashParams {
    fn default() -> Self {
        Self {
            // 256 pages = 4x the 64-entry TLB, 16x the uTLB; one line per
            // page = 256 lines, half the paper L1's 512-line capacity.
            pages: 256,
            lines_per_page: 1,
            load_fraction: 0.6,
        }
    }
}

/// Parameters of the bank-conflict stride pattern.
#[derive(Clone, PartialEq, Debug)]
pub struct BankConflictParams {
    /// Line stride between consecutive loads. A multiple of the L1 bank
    /// count (4 in Table II) pins every access to one bank.
    pub stride_lines: u32,
    /// Pages the conflicting stream wraps over. Keep
    /// `pages * lines_per_page / stride_lines` lines inside one bank's
    /// share of the L1, so arbitration conflicts — not misses — dominate.
    pub pages: u32,
}

impl Default for BankConflictParams {
    fn default() -> Self {
        Self {
            stride_lines: 4,
            // 2 pages at stride 4 = 32 lines, all in one bank, one line
            // per set of that bank: fully resident, purely conflict-bound.
            pages: 2,
        }
    }
}

/// Parameters of the store-burst pattern.
#[derive(Clone, PartialEq, Debug)]
pub struct StoreBurstParams {
    /// Consecutive same-line stores per burst. Every burst collapses into
    /// one merge-buffer entry and forces an MBE write as lines advance;
    /// raise it toward the 24-entry store buffer for maximal SB→MB drain
    /// pressure (at the cost of starving the loads of shared AGUs).
    pub burst: u32,
    /// Loads issued after each burst, all reading one line written
    /// [`lines_back`](Self::lines_back) bursts earlier (maximal same-line
    /// merge opportunity, free of store-forwarding shortcuts).
    pub loads_after: u32,
    /// How many bursts back the post-burst loads read. Anything beyond the
    /// 4-entry merge buffer guarantees the line has drained to the L1, so
    /// the loads exercise the cache-side merge path rather than SB/MB
    /// forwarding.
    pub lines_back: u32,
    /// Non-memory ops separating bursts (lets the drain path breathe just
    /// enough to expose forward-progress bugs rather than hiding them).
    pub gap: u32,
    /// Pages the burst lines cycle through.
    pub pages: u32,
}

impl Default for StoreBurstParams {
    fn default() -> Self {
        // Balanced so both stressed mechanisms actually express: bursts
        // short enough that stores do not monopolize the two shared AGUs
        // (the loads then arrive several per cycle and merge), long enough
        // that every burst still collapses into an MB entry and drains.
        Self {
            burst: 6,
            loads_after: 12,
            lines_back: 8,
            gap: 6,
            pages: 16,
        }
    }
}

/// One workload ingredient of a scenario.
#[derive(Clone, PartialEq, Debug)]
pub enum SegmentKind {
    /// A calibrated benchmark profile (the regular generator).
    Benchmark(BenchmarkProfile),
    /// TLB-thrashing page walks.
    TlbThrash(TlbThrashParams),
    /// Bank-conflict strides.
    BankConflict(BankConflictParams),
    /// Same-line store bursts.
    StoreBurst(StoreBurstParams),
}

impl SegmentKind {
    /// A short label for reports (`gzip`, `tlb_thrash`, …).
    pub fn label(&self) -> &str {
        match self {
            SegmentKind::Benchmark(p) => p.name,
            SegmentKind::TlbThrash(_) => "tlb_thrash",
            SegmentKind::BankConflict(_) => "bank_conflict",
            SegmentKind::StoreBurst(_) => "store_burst",
        }
    }

    /// Builds this segment's infinite generator for `seed`.
    fn generator(&self, seed: u64) -> SegmentGenerator {
        match self {
            SegmentKind::Benchmark(p) => {
                SegmentGenerator::Benchmark(Box::new(WorkloadGenerator::new(p, seed)))
            }
            SegmentKind::TlbThrash(p) => SegmentGenerator::TlbThrash(TlbThrashGen::new(p, seed)),
            SegmentKind::BankConflict(p) => {
                SegmentGenerator::BankConflict(BankConflictGen::new(p, seed))
            }
            SegmentKind::StoreBurst(p) => SegmentGenerator::StoreBurst(StoreBurstGen::new(p, seed)),
        }
    }
}

/// One phase of a phased scenario: a segment active for `insts`
/// instructions.
#[derive(Clone, PartialEq, Debug)]
pub struct Phase {
    /// What runs during the phase.
    pub kind: SegmentKind,
    /// Dynamic instructions before the next phase takes over.
    pub insts: u64,
}

impl Phase {
    /// A phase of `insts` instructions of `kind`.
    pub fn new(kind: SegmentKind, insts: u64) -> Self {
        Self { kind, insts }
    }
}

/// One ingredient of a mixed scenario: a segment receiving `weight` blocks
/// per round-robin cycle.
#[derive(Clone, PartialEq, Debug)]
pub struct MixPart {
    /// What this part generates.
    pub kind: SegmentKind,
    /// Relative share of instruction blocks (≥ 1).
    pub weight: u32,
}

impl MixPart {
    /// A part of the given weight.
    pub fn new(kind: SegmentKind, weight: u32) -> Self {
        Self {
            kind,
            weight: weight.max(1),
        }
    }
}

/// How a scenario's segments combine into one stream.
#[derive(Clone, PartialEq, Debug)]
pub enum Composition {
    /// Segments run back-to-back, switching at exact instruction
    /// boundaries; after the last phase the sequence cycles so the stream
    /// is infinite.
    Phased(Vec<Phase>),
    /// Weighted round-robin interleaving: each round, part *i* contributes
    /// `weight_i` blocks of `block` consecutive instructions.
    Mixed {
        /// The interleaved parts.
        parts: Vec<MixPart>,
        /// Consecutive instructions per block (the interleaving grain).
        block: u32,
    },
}

/// A named, composable workload.
#[derive(Clone, PartialEq, Debug)]
pub struct Scenario {
    /// Report / golden-table name.
    pub name: String,
    /// The composition of segments.
    pub composition: Composition,
}

impl Scenario {
    /// A phased scenario.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase is zero-length — such a
    /// scenario has no defined stream, which is a construction error.
    pub fn phased(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a phased scenario needs phases");
        assert!(
            phases.iter().all(|p| p.insts > 0),
            "phases must be at least one instruction long"
        );
        Self {
            name: name.into(),
            composition: Composition::Phased(phases),
        }
    }

    /// A mixed scenario interleaving `parts` at a `block`-instruction
    /// grain.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or `block` is zero.
    pub fn mixed(name: impl Into<String>, parts: Vec<MixPart>, block: u32) -> Self {
        assert!(!parts.is_empty(), "a mixed scenario needs parts");
        assert!(block > 0, "the interleaving block must be nonzero");
        Self {
            name: name.into(),
            composition: Composition::Mixed { parts, block },
        }
    }

    /// A single-segment scenario (handy for the adversarial patterns).
    pub fn single(name: impl Into<String>, kind: SegmentKind) -> Self {
        Self::phased(name, vec![Phase::new(kind, u64::MAX)])
    }

    /// The segment labels, in composition order.
    pub fn segment_labels(&self) -> Vec<&str> {
        match &self.composition {
            Composition::Phased(phases) => phases.iter().map(|p| p.kind.label()).collect(),
            Composition::Mixed { parts, .. } => parts.iter().map(|p| p.kind.label()).collect(),
        }
    }

    /// Builds the infinite, deterministic instruction stream of this
    /// scenario for `seed`. Two generators with the same scenario and seed
    /// yield identical streams.
    pub fn generator(&self, seed: u64) -> ScenarioGenerator {
        // Each segment draws from its own sub-seed so reordering segments
        // or changing one segment's parameters cannot silently shift the
        // streams of the others.
        let sub_seed = |i: usize| {
            let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
            for b in self.name.bytes() {
                h = h.rotate_left(5) ^ u64::from(b);
            }
            h ^ ((i as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        };
        match &self.composition {
            Composition::Phased(phases) => ScenarioGenerator {
                segments: phases
                    .iter()
                    .enumerate()
                    .map(|(i, p)| p.kind.generator(sub_seed(i)))
                    .collect(),
                schedule: Schedule::Phased {
                    lengths: phases.iter().map(|p| p.insts).collect(),
                    current: 0,
                    left: phases[0].insts,
                },
            },
            Composition::Mixed { parts, block } => {
                let mut slots = Vec::new();
                for (i, part) in parts.iter().enumerate() {
                    for _ in 0..part.weight {
                        slots.push(i);
                    }
                }
                ScenarioGenerator {
                    segments: parts
                        .iter()
                        .enumerate()
                        .map(|(i, p)| p.kind.generator(sub_seed(i)))
                        .collect(),
                    schedule: Schedule::Mixed {
                        slots,
                        block: u64::from(*block),
                        cursor: 0,
                        left: u64::from(*block),
                    },
                }
            }
        }
    }
}

/// The generator of one segment (boxed profile generator to keep the enum
/// small; the adversarial generators are a few words each).
#[derive(Clone, Debug)]
enum SegmentGenerator {
    Benchmark(Box<WorkloadGenerator>),
    TlbThrash(TlbThrashGen),
    BankConflict(BankConflictGen),
    StoreBurst(StoreBurstGen),
}

impl SegmentGenerator {
    fn next_inst(&mut self) -> TraceInst {
        match self {
            SegmentGenerator::Benchmark(g) => g.next().expect("profile generator is infinite"),
            SegmentGenerator::TlbThrash(g) => g.next_inst(),
            SegmentGenerator::BankConflict(g) => g.next_inst(),
            SegmentGenerator::StoreBurst(g) => g.next_inst(),
        }
    }
}

#[derive(Clone, Debug)]
enum Schedule {
    Phased {
        lengths: Vec<u64>,
        current: usize,
        left: u64,
    },
    Mixed {
        slots: Vec<usize>,
        block: u64,
        cursor: usize,
        left: u64,
    },
}

/// The infinite, deterministic instruction stream of one [`Scenario`].
#[derive(Clone, Debug)]
pub struct ScenarioGenerator {
    segments: Vec<SegmentGenerator>,
    schedule: Schedule,
}

impl Iterator for ScenarioGenerator {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        let seg = match &mut self.schedule {
            Schedule::Phased {
                lengths,
                current,
                left,
            } => {
                if *left == 0 {
                    *current = (*current + 1) % lengths.len();
                    *left = lengths[*current];
                }
                *left -= 1;
                *current
            }
            Schedule::Mixed {
                slots,
                block,
                cursor,
                left,
            } => {
                if *left == 0 {
                    *cursor = (*cursor + 1) % slots.len();
                    *left = *block;
                }
                *left -= 1;
                slots[*cursor]
            }
        };
        Some(self.segments[seg].next_inst())
    }
}

/// Region base for the adversarial generators. Benchmark profiles hash
/// into the 256 MiB slots 0–13 of the 32-bit space (`vaddr_base` is
/// `h % 14 << 28`), so slots 14 and 15 are guaranteed free: the TLB
/// thrasher gets all of slot 14 (65536 pages), and slot 15 is split in
/// half between the two small-footprint patterns. Composed scenarios thus
/// never share pages or lines between a benchmark and an adversary.
fn adversarial_base(tag: u8) -> u64 {
    match tag {
        0 => 14 << 28,                    // tlb_thrash
        1 => 15 << 28,                    // bank_conflict
        _ => (15u64 << 28) + (128 << 20), // store_burst
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// TLB-thrashing page walks: every load lands on the *next* page of a pool
/// far larger than both translation caches, so translations (and the way
/// information coupled to them) never survive to be reused.
#[derive(Clone, Debug)]
struct TlbThrashGen {
    params: TlbThrashParams,
    rng: SmallRng,
    base_page: u64,
    cursor: u64,
    stride: u64,
}

impl TlbThrashGen {
    fn new(params: &TlbThrashParams, seed: u64) -> Self {
        // A stride of a few pages defeats any "next page" prefetch-like
        // locality a sequential walk would grant — but it must be coprime
        // with the pool size or the walk silently shrinks to a sub-pool
        // that fits the TLB. `pages` is free-form spec input, so pick the
        // largest of 3/2/1 that is coprime with it.
        let pages = u64::from(params.pages.max(1));
        let stride = [3, 2, 1]
            .into_iter()
            .find(|s| gcd(*s, pages) == 1)
            .expect("1 is coprime with everything");
        Self {
            params: params.clone(),
            rng: SmallRng::seed_from_u64(seed ^ 0x7a5b_17e3_90cd_4421),
            base_page: adversarial_base(0) / PAGE_BYTES,
            cursor: 0,
            stride,
        }
    }

    fn next_inst(&mut self) -> TraceInst {
        if self.rng.gen_bool(self.params.load_fraction) {
            let pages = u64::from(self.params.pages.max(1));
            self.cursor = (self.cursor + self.stride) % pages;
            // Each page owns a page-dependent slice of line indices, so
            // repeat visits re-hit resident lines (translation misses,
            // cache hits) while the footprint spreads over cache sets.
            let lines = u64::from(self.params.lines_per_page.max(1));
            let lip = (self.cursor + self.rng.gen_range(0..lines)) % (PAGE_BYTES / LINE_BYTES);
            let offset = lip * LINE_BYTES + self.rng.gen_range(0..LINE_BYTES / 8) * 8;
            TraceInst::Load {
                vaddr: VAddr::new((self.base_page + self.cursor) * PAGE_BYTES + offset),
                size: 8,
                addr_dep: None,
            }
        } else {
            TraceInst::Op {
                latency: 1,
                dep: None,
            }
        }
    }
}

/// Bank-conflict strides: independent loads all mapping to one L1 bank, so
/// every cycle's worth of parallel issue serializes on bank arbitration.
#[derive(Clone, Debug)]
struct BankConflictGen {
    params: BankConflictParams,
    rng: SmallRng,
    base: u64,
    line_cursor: u64,
}

impl BankConflictGen {
    fn new(params: &BankConflictParams, seed: u64) -> Self {
        Self {
            params: params.clone(),
            rng: SmallRng::seed_from_u64(seed ^ 0x3c6e_f372_fe94_f82b),
            base: adversarial_base(1),
            line_cursor: 0,
        }
    }

    fn next_inst(&mut self) -> TraceInst {
        // Mostly loads: conflicts only hurt when accesses actually contend.
        if self.rng.gen_bool(0.85) {
            let stride = u64::from(self.params.stride_lines.max(1));
            let span_lines = u64::from(self.params.pages.max(1)) * (PAGE_BYTES / LINE_BYTES);
            self.line_cursor = (self.line_cursor + stride) % span_lines;
            let offset = self.rng.gen_range(0..LINE_BYTES / 8) * 8;
            TraceInst::Load {
                vaddr: VAddr::new(self.base + self.line_cursor * LINE_BYTES + offset),
                size: 8,
                addr_dep: None,
            }
        } else {
            TraceInst::Op {
                latency: 1,
                dep: None,
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BurstState {
    Storing(u32),
    Loading(u32),
    Gap(u32),
}

/// Same-line store bursts: `burst` stores walk one line, `loads_after`
/// loads read back the line written `lines_back` bursts earlier (already
/// drained past the merge buffer, so they hit the L1 and merge with each
/// other), `gap` ops separate bursts, then the next line.
#[derive(Clone, Debug)]
struct StoreBurstGen {
    params: StoreBurstParams,
    rng: SmallRng,
    base: u64,
    line: u64,
    span_lines: u64,
    state: BurstState,
}

impl StoreBurstGen {
    fn new(params: &StoreBurstParams, seed: u64) -> Self {
        Self {
            params: params.clone(),
            rng: SmallRng::seed_from_u64(seed ^ 0x94d0_49bb_1331_11eb),
            base: adversarial_base(2),
            line: 0,
            span_lines: u64::from(params.pages.max(1)) * (PAGE_BYTES / LINE_BYTES),
            state: BurstState::Storing(params.burst.max(1)),
        }
    }

    fn addr_in(&mut self, line: u64) -> u64 {
        let offset = self.rng.gen_range(0..LINE_BYTES / 8) * 8;
        self.base + line * LINE_BYTES + offset
    }

    fn next_inst(&mut self) -> TraceInst {
        match self.state {
            BurstState::Storing(left) => {
                self.state = if left <= 1 {
                    BurstState::Loading(self.params.loads_after)
                } else {
                    BurstState::Storing(left - 1)
                };
                let line = self.line;
                let vaddr = VAddr::new(self.addr_in(line));
                TraceInst::Store {
                    vaddr,
                    size: 8,
                    data_dep: None,
                }
            }
            BurstState::Loading(left) => {
                if left == 0 {
                    self.state = BurstState::Gap(self.params.gap);
                    return self.next_inst();
                }
                self.state = BurstState::Loading(left - 1);
                // Read a line old enough to have drained SB and the 4-entry
                // MB: the loads contend for one L1 line together, which is
                // exactly what load merging exists to exploit. The distance
                // is folded into [1, span-1] so it can never wrap onto the
                // line the in-flight burst is writing (a span of one line
                // has no other line to read, the only degenerate case).
                let back = if self.span_lines > 1 {
                    (u64::from(self.params.lines_back.max(1)) - 1) % (self.span_lines - 1) + 1
                } else {
                    0
                };
                let line = (self.line + self.span_lines - back) % self.span_lines;
                let vaddr = VAddr::new(self.addr_in(line));
                TraceInst::Load {
                    vaddr,
                    size: 8,
                    addr_dep: None,
                }
            }
            BurstState::Gap(left) => {
                if left == 0 {
                    self.line = (self.line + 1) % self.span_lines;
                    self.state = BurstState::Storing(self.params.burst.max(1));
                    return self.next_inst();
                }
                self.state = BurstState::Gap(left - 1);
                TraceInst::Op {
                    latency: 1,
                    dep: None,
                }
            }
        }
    }
}

/// The preset scenarios used by the golden tables, the CI smoke run and the
/// example specs: one multi-phase, one mixed, and one per adversarial
/// pattern.
///
/// # Panics
///
/// Panics if a named benchmark profile disappears from
/// [`crate::all_benchmarks`] — the presets are part of the golden contract.
pub fn presets() -> Vec<Scenario> {
    let bench = |name: &str| {
        SegmentKind::Benchmark(benchmark_named(name).unwrap_or_else(|| panic!("profile {name}")))
    };
    vec![
        Scenario::phased(
            "phased_compress_decode",
            vec![
                Phase::new(bench("gzip"), 10_000),
                Phase::new(bench("djpeg"), 10_000),
                Phase::new(bench("mcf"), 5_000),
            ],
        ),
        Scenario::mixed(
            "mixed_int_media_thrash",
            vec![
                MixPart::new(bench("gap"), 2),
                MixPart::new(bench("h263dec"), 2),
                MixPart::new(SegmentKind::TlbThrash(TlbThrashParams::default()), 1),
            ],
            48,
        ),
        Scenario::single(
            "tlb_thrash",
            SegmentKind::TlbThrash(TlbThrashParams::default()),
        ),
        Scenario::single(
            "bank_conflict",
            SegmentKind::BankConflict(BankConflictParams::default()),
        ),
        Scenario::single(
            "store_burst",
            SegmentKind::StoreBurst(StoreBurstParams::default()),
        ),
    ]
}

/// Finds a preset scenario by name.
pub fn preset_named(name: &str) -> Option<Scenario> {
    presets().into_iter().find(|s| s.name == name)
}

mod stable_impls {
    //! [`StableKey`] encodings of the workload types, so a scenario can be
    //! part of a persistent content-addressed cache key. Every field that
    //! shapes the generated instruction stream — and the reported workload
    //! name, which the run summary folds — is covered; enum variants carry
    //! explicit tags. Changing any encoding here invalidates persisted
    //! caches (the cache format version must be bumped alongside).

    use malec_types::stable::{StableHasher, StableKey};

    use super::{
        BankConflictParams, Composition, MixPart, Phase, Scenario, SegmentKind, StoreBurstParams,
        TlbThrashParams,
    };
    use crate::profile::BenchmarkProfile;

    impl StableKey for BenchmarkProfile {
        fn fold(&self, h: &mut StableHasher) {
            // The name identifies the calibrated profile; the parameters are
            // folded too, so retuning a profile in a future version changes
            // the key instead of silently serving stale cached results.
            h.write_str(self.name);
            h.write_str(self.suite.name());
            h.write_f64(self.mem_fraction);
            h.write_f64(self.load_share);
            h.write_u8(self.streams);
            h.write_f64(self.stream_switch_prob);
            h.write_f64(self.page_run_mean);
            h.write_u32(self.stride_bytes);
            h.write_u32(self.working_set_pages);
            h.write_f64(self.page_reuse_prob);
            h.write_f64(self.addr_dep_prob);
            h.write_f64(self.dep_prob);
            h.write_f64(self.long_op_fraction);
            h.write_f64(self.branch_fraction);
            h.write_f64(self.mispredict_rate);
        }
    }

    impl StableKey for TlbThrashParams {
        fn fold(&self, h: &mut StableHasher) {
            h.write_u32(self.pages);
            h.write_u32(self.lines_per_page);
            h.write_f64(self.load_fraction);
        }
    }

    impl StableKey for BankConflictParams {
        fn fold(&self, h: &mut StableHasher) {
            h.write_u32(self.stride_lines);
            h.write_u32(self.pages);
        }
    }

    impl StableKey for StoreBurstParams {
        fn fold(&self, h: &mut StableHasher) {
            h.write_u32(self.burst);
            h.write_u32(self.loads_after);
            h.write_u32(self.lines_back);
            h.write_u32(self.gap);
            h.write_u32(self.pages);
        }
    }

    impl StableKey for SegmentKind {
        fn fold(&self, h: &mut StableHasher) {
            match self {
                SegmentKind::Benchmark(p) => {
                    h.write_u8(0);
                    p.fold(h);
                }
                SegmentKind::TlbThrash(p) => {
                    h.write_u8(1);
                    p.fold(h);
                }
                SegmentKind::BankConflict(p) => {
                    h.write_u8(2);
                    p.fold(h);
                }
                SegmentKind::StoreBurst(p) => {
                    h.write_u8(3);
                    p.fold(h);
                }
            }
        }
    }

    impl StableKey for Phase {
        fn fold(&self, h: &mut StableHasher) {
            self.kind.fold(h);
            h.write_u64(self.insts);
        }
    }

    impl StableKey for MixPart {
        fn fold(&self, h: &mut StableHasher) {
            self.kind.fold(h);
            h.write_u64(u64::from(self.weight));
        }
    }

    impl StableKey for Scenario {
        fn fold(&self, h: &mut StableHasher) {
            // The name feeds both the per-segment sub-seeds and the summary's
            // workload field, so it is part of the behavioral identity.
            h.write_str(&self.name);
            match &self.composition {
                Composition::Phased(phases) => {
                    h.write_u8(0);
                    h.write_u64(phases.len() as u64);
                    for p in phases {
                        p.fold(h);
                    }
                }
                Composition::Mixed { parts, block } => {
                    h.write_u8(1);
                    h.write_u64(parts.len() as u64);
                    for p in parts {
                        p.fold(h);
                    }
                    h.write_u64(u64::from(*block));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(s: &Scenario, seed: u64, n: usize) -> Vec<TraceInst> {
        s.generator(seed).take(n).collect()
    }

    #[test]
    fn every_preset_is_seed_deterministic() {
        for s in presets() {
            assert_eq!(take(&s, 11, 4_000), take(&s, 11, 4_000), "{}", s.name);
            assert_ne!(
                take(&s, 11, 4_000),
                take(&s, 12, 4_000),
                "{}: different seeds should differ",
                s.name
            );
        }
    }

    #[test]
    fn phased_switches_at_exact_boundaries() {
        let gzip = benchmark_named("gzip").unwrap();
        let scenario = Scenario::phased(
            "boundary",
            vec![
                Phase::new(SegmentKind::Benchmark(gzip.clone()), 100),
                Phase::new(SegmentKind::StoreBurst(StoreBurstParams::default()), 50),
            ],
        );
        // The first 100 instructions must be exactly the profile stream of
        // the phase's sub-seed, untouched by the second phase.
        let insts = take(&scenario, 3, 100);
        let solo = Scenario::phased(
            "boundary",
            vec![Phase::new(SegmentKind::Benchmark(gzip), 100)],
        );
        assert_eq!(insts, take(&solo, 3, 100));
    }

    #[test]
    fn phased_cycles_after_the_last_phase() {
        let scenario = Scenario::phased(
            "cycle",
            vec![
                Phase::new(SegmentKind::TlbThrash(TlbThrashParams::default()), 40),
                Phase::new(SegmentKind::StoreBurst(StoreBurstParams::default()), 40),
            ],
        );
        // Drawing far beyond the phase sum must keep producing instructions.
        let insts = take(&scenario, 5, 1_000);
        assert_eq!(insts.len(), 1_000);
        assert!(insts.iter().any(TraceInst::is_store), "burst phase reached");
        assert!(insts.iter().any(TraceInst::is_load));
    }

    #[test]
    fn mixed_respects_weights_at_block_grain() {
        let scenario = Scenario::mixed(
            "weights",
            vec![
                MixPart::new(SegmentKind::StoreBurst(StoreBurstParams::default()), 3),
                MixPart::new(SegmentKind::TlbThrash(TlbThrashParams::default()), 1),
            ],
            10,
        );
        // One full round = 4 blocks of 10: 30 burst insts then 10 thrash.
        // Stores only ever come from the burst part.
        let insts = take(&scenario, 9, 40);
        assert!(
            insts[..30].iter().any(TraceInst::is_store),
            "burst part leads the round"
        );
        assert!(
            insts[30..].iter().all(|i| !i.is_store()),
            "thrash block contains no stores"
        );
    }

    #[test]
    fn tlb_thrash_cycles_a_pool_beyond_the_tlb_with_a_resident_footprint() {
        let s = preset_named("tlb_thrash").expect("preset exists");
        let insts = take(&s, 2, 20_000);
        let pages: std::collections::HashSet<u64> = insts
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw() >> 12)
            .collect();
        assert!(
            pages.len() > 200,
            "only {} pages (TLB holds 64)",
            pages.len()
        );
        // The *line* footprint stays small — the data fits the L1 while the
        // translations never fit the TLB.
        let lines: std::collections::HashSet<u64> = insts
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw() / LINE_BYTES)
            .collect();
        assert!(lines.len() <= 512, "{} lines exceed the L1", lines.len());
    }

    #[test]
    fn store_burst_read_backs_never_hit_the_line_being_written() {
        // Even when lines_back is a multiple of the span, the read-back
        // loads must land on a *different* line than the in-flight burst.
        let s = Scenario::single(
            "wrap",
            SegmentKind::StoreBurst(StoreBurstParams {
                pages: 1,
                lines_back: 64, // == span (1 page * 64 lines)
                ..Default::default()
            }),
        );
        let insts = take(&s, 3, 2_000);
        let mut burst_line = None;
        for i in &insts {
            match i {
                TraceInst::Store { vaddr, .. } => burst_line = Some(vaddr.raw() / LINE_BYTES),
                TraceInst::Load { vaddr, .. } => {
                    assert_ne!(
                        Some(vaddr.raw() / LINE_BYTES),
                        burst_line,
                        "read-back hit the burst line"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn tlb_thrash_visits_the_whole_pool_for_any_pool_size() {
        // The page stride must stay coprime with the pool, or pools
        // divisible by the stride silently shrink to a TLB-sized sub-pool.
        for pages in [96u32, 99, 256, 300] {
            let s = Scenario::single(
                format!("thrash{pages}"),
                SegmentKind::TlbThrash(TlbThrashParams {
                    pages,
                    ..Default::default()
                }),
            );
            let seen: std::collections::HashSet<u64> = take(&s, 2, 20_000)
                .iter()
                .filter_map(|i| i.vaddr())
                .map(|a| a.raw() >> 12)
                .collect();
            assert_eq!(seen.len(), pages as usize, "pool of {pages} not covered");
        }
    }

    #[test]
    fn bank_conflict_pins_one_bank() {
        let s = preset_named("bank_conflict").expect("preset exists");
        let banks: std::collections::HashSet<u64> = take(&s, 2, 5_000)
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| (a.raw() / LINE_BYTES) % 4)
            .collect();
        assert_eq!(banks.len(), 1, "stride 4 must stay on one of 4 banks");
    }

    #[test]
    fn store_burst_walks_lines_in_bursts() {
        let s = preset_named("store_burst").expect("preset exists");
        let insts = take(&s, 2, 5_000);
        let stores = insts.iter().filter(|i| i.is_store()).count();
        let loads = insts.iter().filter(|i| i.is_load()).count();
        assert!(stores > 1_000, "stores come in bursts: {stores}");
        assert!(loads > stores, "read-backs outnumber stores by default");
        // Consecutive memory references overwhelmingly share a line (the
        // store run and the load run each stay on one line).
        let lines: Vec<u64> = insts
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw() / LINE_BYTES)
            .collect();
        let same =
            lines.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (lines.len() - 1) as f64;
        assert!(same > 0.8, "same-line adjacency only {same}");
    }

    #[test]
    fn adversarial_addresses_fit_32_bits() {
        for s in presets() {
            for inst in take(&s, 1, 20_000) {
                if let Some(a) = inst.vaddr() {
                    assert!(a.raw() < (1 << 32), "{}: {:#x}", s.name, a.raw());
                }
            }
        }
    }

    #[test]
    fn adversarial_regions_are_disjoint_from_every_benchmark_region() {
        use crate::all_benchmarks;
        // Benchmarks hash into slots 0-13; adversaries own slots 14-15.
        for b in all_benchmarks() {
            let end = b.vaddr_base() + u64::from(b.working_set_pages) * PAGE_BYTES + PAGE_BYTES;
            assert!(end <= 14 << 28, "{} reaches the adversarial slots", b.name);
        }
        for (name, kind) in [
            ("tlb_thrash", SegmentKind::TlbThrash(Default::default())),
            (
                "bank_conflict",
                SegmentKind::BankConflict(Default::default()),
            ),
            ("store_burst", SegmentKind::StoreBurst(Default::default())),
        ] {
            let s = Scenario::single(name, kind);
            for inst in take(&s, 1, 10_000) {
                if let Some(a) = inst.vaddr() {
                    assert!(
                        a.raw() >= 14 << 28,
                        "{name}: {:#x} in benchmark space",
                        a.raw()
                    );
                }
            }
        }
        // And the two slot-15 tenants stay in their own halves.
        let bc = Scenario::single("bc", SegmentKind::BankConflict(Default::default()));
        let sb = Scenario::single("sb", SegmentKind::StoreBurst(Default::default()));
        let bc_max = take(&bc, 1, 10_000)
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw())
            .max()
            .unwrap();
        let sb_min = take(&sb, 1, 10_000)
            .iter()
            .filter_map(|i| i.vaddr())
            .map(|a| a.raw())
            .min()
            .unwrap();
        assert!(
            bc_max < sb_min,
            "slot-15 halves overlap: {bc_max:#x} vs {sb_min:#x}"
        );
    }

    #[test]
    fn preset_names_are_unique_and_lookup_works() {
        let names: Vec<String> = presets().into_iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        assert!(preset_named("store_burst").is_some());
        assert!(preset_named("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "needs phases")]
    fn empty_phased_scenario_rejected() {
        let _ = Scenario::phased("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_block_mixed_rejected() {
        let _ = Scenario::mixed(
            "zero",
            vec![MixPart::new(SegmentKind::TlbThrash(Default::default()), 1)],
            0,
        );
    }

    #[test]
    fn segment_labels_follow_composition() {
        let s = preset_named("mixed_int_media_thrash").unwrap();
        assert_eq!(s.segment_labels(), ["gap", "h263dec", "tlb_thrash"]);
    }
}

#[cfg(test)]
mod stable_tests {
    use malec_types::stable::stable_key;

    use super::{preset_named, presets, Phase, Scenario, SegmentKind, TlbThrashParams};

    #[test]
    fn preset_keys_are_distinct_and_reproducible() {
        let keys: Vec<u128> = presets().iter().map(stable_key).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "two presets share a cache key");
            }
        }
        let again: Vec<u128> = presets().iter().map(stable_key).collect();
        assert_eq!(keys, again, "keys must be stable across derivations");
    }

    #[test]
    fn key_tracks_name_and_structure() {
        let base = preset_named("tlb_thrash").expect("preset");
        let renamed = Scenario::single(
            "tlb_thrash_2",
            SegmentKind::TlbThrash(TlbThrashParams::default()),
        );
        assert_ne!(
            stable_key(&base),
            stable_key(&renamed),
            "the name feeds sub-seeds and the summary, so it must key"
        );
        let longer = Scenario::phased(
            "tlb_thrash",
            vec![Phase::new(
                SegmentKind::TlbThrash(TlbThrashParams::default()),
                1_000,
            )],
        );
        assert_ne!(stable_key(&base), stable_key(&longer), "phase length keys");
        let mut tweaked = TlbThrashParams::default();
        tweaked.pages += 1;
        let tweaked = Scenario::single("tlb_thrash", SegmentKind::TlbThrash(tweaked));
        assert_ne!(stable_key(&base), stable_key(&tweaked), "params key");
    }
}
