//! Deterministic replicate-seed derivation.
//!
//! A replicated sweep runs the same `(config, scenario, horizon)` cell under
//! several seeds and reports the distribution instead of a single draw. The
//! per-replicate seeds must be (a) a pure function of the base seed and the
//! replicate index — so a cell replicate is content-addressable and two
//! hosts derive identical streams — and (b) well-spread, so replicate
//! streams are statistically independent even for adjacent indices.
//!
//! [`replicate_seed`] provides both: replicate `0` **is** the base seed
//! (the legacy single-seed path, so every existing golden digest, `.mtr`
//! recording and cache entry keeps its meaning), and replicates `i > 0` are
//! derived with a SplitMix64 finalizer over `base ^ golden-ratio·i`.

/// The SplitMix64 output permutation: a bijective avalanche over `u64`.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed replicate `index` of a replicated cell runs under.
///
/// Replicate 0 returns `base` unchanged — the legacy single-seed path — so
/// replicated sweeps are a strict superset of the historical behavior and
/// every recorded golden digest stays valid.
///
/// # Example
///
/// ```
/// use malec_trace::seed::replicate_seed;
///
/// assert_eq!(replicate_seed(2013, 0), 2013, "replicate 0 is the base seed");
/// assert_ne!(replicate_seed(2013, 1), replicate_seed(2013, 2));
/// assert_eq!(replicate_seed(2013, 5), replicate_seed(2013, 5), "pure");
/// ```
#[must_use]
pub fn replicate_seed(base: u64, index: u32) -> u64 {
    if index == 0 {
        return base;
    }
    splitmix64(base ^ splitmix64(u64::from(index)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn replicate_zero_is_the_legacy_seed() {
        for base in [0u64, 1, 2013, u64::MAX] {
            assert_eq!(replicate_seed(base, 0), base);
        }
    }

    #[test]
    fn replicates_are_distinct_within_a_base() {
        let base = 2013;
        let seeds: HashSet<u64> = (0..1024).map(|i| replicate_seed(base, i)).collect();
        assert_eq!(seeds.len(), 1024, "no collisions across 1024 replicates");
    }

    #[test]
    fn adjacent_bases_do_not_alias_adjacent_replicates() {
        // The failure mode of naive `base + i` derivation: seed 14 replicate
        // 1 would collide with seed 15 replicate 0.
        for base in 0..64u64 {
            for i in 1..8u32 {
                assert_ne!(
                    replicate_seed(base, i),
                    replicate_seed(base + u64::from(i), 0),
                    "base {base} replicate {i} must not alias base {}",
                    base + u64::from(i)
                );
            }
        }
    }

    #[test]
    fn splitmix_avalanches_low_entropy_inputs() {
        // Consecutive small inputs (the common seed choice) must spread
        // across the whole domain, not cluster in the low bits.
        let outs: Vec<u64> = (0..16).map(splitmix64).collect();
        let distinct: HashSet<&u64> = outs.iter().collect();
        assert_eq!(distinct.len(), outs.len());
        assert!(outs.iter().any(|&v| v > u64::MAX / 2));
    }
}
