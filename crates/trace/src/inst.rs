//! The trace instruction vocabulary consumed by the CPU model.

use serde::{Deserialize, Serialize};

use malec_types::addr::VAddr;

/// A backward dependency distance in dynamic instructions (1 = the
/// immediately preceding instruction). Distances larger than the ROB never
/// constrain anything.
pub type DepDistance = u32;

/// One dynamic instruction of a synthetic trace.
///
/// Dependencies are expressed as backward distances, which is all an
/// out-of-order timing model needs: instruction *i* with `dep = d` cannot
/// issue before instruction *i − d* has produced its result.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TraceInst {
    /// A non-memory operation.
    Op {
        /// Execution latency in cycles (1 for simple ALU, 3+ for mul/FP).
        latency: u8,
        /// Backward distance to a producer this op waits on, if any.
        dep: Option<DepDistance>,
    },
    /// A load.
    Load {
        /// Virtual byte address.
        vaddr: VAddr,
        /// Access size in bytes.
        size: u8,
        /// Backward distance to the producer of the address (pointer
        /// chasing serializes through this).
        addr_dep: Option<DepDistance>,
    },
    /// A store.
    Store {
        /// Virtual byte address.
        vaddr: VAddr,
        /// Access size in bytes.
        size: u8,
        /// Backward distance to the producer of the stored data.
        data_dep: Option<DepDistance>,
    },
    /// A branch; a mispredicted branch flushes the front-end.
    Branch {
        /// Whether this dynamic instance was mispredicted.
        mispredicted: bool,
        /// Backward distance to the producer of the condition — branches
        /// frequently test just-loaded values, which couples L1 latency to
        /// front-end stalls.
        dep: Option<DepDistance>,
    },
}

impl TraceInst {
    /// Whether this instruction references memory.
    pub const fn is_mem(&self) -> bool {
        matches!(self, TraceInst::Load { .. } | TraceInst::Store { .. })
    }

    /// Whether this instruction is a load.
    pub const fn is_load(&self) -> bool {
        matches!(self, TraceInst::Load { .. })
    }

    /// Whether this instruction is a store.
    pub const fn is_store(&self) -> bool {
        matches!(self, TraceInst::Store { .. })
    }

    /// The virtual address, for memory instructions.
    pub const fn vaddr(&self) -> Option<VAddr> {
        match self {
            TraceInst::Load { vaddr, .. } | TraceInst::Store { vaddr, .. } => Some(*vaddr),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        let ld = TraceInst::Load {
            vaddr: VAddr::new(0x10),
            size: 4,
            addr_dep: None,
        };
        let st = TraceInst::Store {
            vaddr: VAddr::new(0x20),
            size: 4,
            data_dep: Some(2),
        };
        let op = TraceInst::Op {
            latency: 1,
            dep: None,
        };
        let br = TraceInst::Branch {
            mispredicted: false,
            dep: None,
        };
        assert!(ld.is_mem() && ld.is_load() && !ld.is_store());
        assert!(st.is_mem() && st.is_store() && !st.is_load());
        assert!(!op.is_mem() && !br.is_mem());
        assert_eq!(ld.vaddr(), Some(VAddr::new(0x10)));
        assert_eq!(op.vaddr(), None);
    }
}
