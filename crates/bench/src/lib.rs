//! Shared plumbing for the table/figure benches.
//!
//! Each `[[bench]]` target regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). The heavy lifting — sweeping the 38
//! benchmark profiles over the five analyzed configurations — lives here so
//! the individual benches stay declarative.

use malec_core::parallel::{parallel_map_with, workers_for};
use malec_core::report::geo_mean;
use malec_core::RunSummary;
use malec_core::Simulator;
use malec_trace::all_benchmarks;
use malec_trace::profile::{BenchmarkProfile, Suite};
use malec_types::SimConfig;

pub mod goldens;

/// Instructions simulated per benchmark per configuration. The paper uses
/// 1-billion-instruction SimPoint phases; the synthetic workloads' statistics
/// converge orders of magnitude sooner (see DESIGN.md §1).
pub const DEFAULT_INSTS: u64 = 120_000;

/// Seed used by every figure (bit-for-bit reproducibility).
pub const DEFAULT_SEED: u64 = 2013;

/// Runs `profile` under `config`.
pub fn run_one(config: &SimConfig, profile: &BenchmarkProfile, insts: u64) -> RunSummary {
    Simulator::new(config.clone()).run(profile, insts, DEFAULT_SEED)
}

/// Runs every benchmark under every given configuration:
/// `result[bench_idx][config_idx]`.
///
/// Every `(benchmark, config)` cell is an independent, seeded simulation,
/// so the full matrix fans out across all available cores; the result is
/// bit-identical to [`run_matrix_serial`] regardless of scheduling (each
/// cell writes its own slot).
pub fn run_matrix(configs: &[SimConfig], insts: u64) -> Vec<Vec<RunSummary>> {
    run_matrix_on(&all_benchmarks(), configs, insts)
}

/// [`run_matrix`] restricted to the given benchmark subset.
pub fn run_matrix_on(
    benchmarks: &[BenchmarkProfile],
    configs: &[SimConfig],
    insts: u64,
) -> Vec<Vec<RunSummary>> {
    run_matrix_on_with(benchmarks, configs, insts, None)
}

/// [`run_matrix_on`] with an operator-imposed worker cap (the `--jobs N`
/// flag): `None` uses every available core, `Some(n)` fans out over at most
/// `n` workers. The result is bit-identical either way.
pub fn run_matrix_on_with(
    benchmarks: &[BenchmarkProfile],
    configs: &[SimConfig],
    insts: u64,
    jobs: Option<usize>,
) -> Vec<Vec<RunSummary>> {
    let cells: Vec<(&BenchmarkProfile, &SimConfig)> = benchmarks
        .iter()
        .flat_map(|profile| configs.iter().map(move |config| (profile, config)))
        .collect();
    let workers = workers_for(cells.len(), jobs);
    let summaries = parallel_map_with(
        cells,
        |(profile, config)| run_one(config, profile, insts),
        workers,
    );
    rows_of(summaries, configs.len())
}

/// The serial reference path (kept for speedup measurement and as the
/// ground truth the parallel matrix is compared against).
pub fn run_matrix_serial(configs: &[SimConfig], insts: u64) -> Vec<Vec<RunSummary>> {
    run_matrix_serial_on(&all_benchmarks(), configs, insts)
}

/// [`run_matrix_serial`] restricted to the given benchmark subset.
pub fn run_matrix_serial_on(
    benchmarks: &[BenchmarkProfile],
    configs: &[SimConfig],
    insts: u64,
) -> Vec<Vec<RunSummary>> {
    benchmarks
        .iter()
        .map(|profile| {
            configs
                .iter()
                .map(|config| run_one(config, profile, insts))
                .collect()
        })
        .collect()
}

/// Chunks a flat row-major cell list back into per-benchmark rows.
fn rows_of(summaries: Vec<RunSummary>, row_len: usize) -> Vec<Vec<RunSummary>> {
    debug_assert!(row_len > 0 && summaries.len().is_multiple_of(row_len));
    let mut rows = Vec::with_capacity(summaries.len() / row_len);
    let mut it = summaries.into_iter();
    while it.len() > 0 {
        rows.push(it.by_ref().take(row_len).collect());
    }
    rows
}

/// Per-suite and overall geometric means of a per-benchmark series, in the
/// paper's order: SPEC-INT, SPEC-FP, MediaBench2, Overall.
pub fn suite_geo_means(values: &[(Suite, f64)]) -> [(String, f64); 4] {
    let of = |suite: Suite| {
        let v: Vec<f64> = values
            .iter()
            .filter(|(s, _)| *s == suite)
            .map(|(_, v)| *v)
            .collect();
        geo_mean(&v)
    };
    let overall: Vec<f64> = values.iter().map(|(_, v)| *v).collect();
    [
        ("SPEC-INT geo.mean".to_owned(), of(Suite::SpecInt)),
        ("SPEC-FP geo.mean".to_owned(), of(Suite::SpecFp)),
        ("MediaBench2 geo.mean".to_owned(), of(Suite::MediaBench2)),
        ("Overall geo.mean".to_owned(), geo_mean(&overall)),
    ]
}

/// Instruction budget, overridable via `MALEC_BENCH_INSTS` for quick runs.
pub fn insts_budget() -> u64 {
    std::env::var("MALEC_BENCH_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_INSTS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_trace::profile::Suite;

    #[test]
    fn suite_means_cover_all_groups() {
        let values = vec![
            (Suite::SpecInt, 2.0),
            (Suite::SpecInt, 8.0),
            (Suite::SpecFp, 3.0),
            (Suite::MediaBench2, 5.0),
        ];
        let means = suite_geo_means(&values);
        assert!((means[0].1 - 4.0).abs() < 1e-12);
        assert!((means[1].1 - 3.0).abs() < 1e-12);
        assert!((means[2].1 - 5.0).abs() < 1e-12);
        assert!(means[3].1 > 0.0);
        assert!(means[3].0.contains("Overall"));
    }

    #[test]
    fn run_one_produces_summary() {
        let profile = &all_benchmarks()[0];
        let s = run_one(&SimConfig::base1ldst(), profile, 2_000);
        assert_eq!(s.core.committed, 2_000);
    }

    #[test]
    fn jobs_capped_matrix_is_bit_identical() {
        let benches: Vec<_> = all_benchmarks().into_iter().take(2).collect();
        let configs = [SimConfig::base1ldst(), SimConfig::malec()];
        let free = run_matrix_on_with(&benches, &configs, 2_000, None);
        let capped = run_matrix_on_with(&benches, &configs, 2_000, Some(1));
        for (frow, crow) in free.iter().zip(&capped) {
            for (f, c) in frow.iter().zip(crow) {
                assert_eq!(crate::goldens::digest(f), crate::goldens::digest(c));
            }
        }
    }

    #[test]
    fn parallel_matrix_matches_serial_bit_for_bit() {
        let benches: Vec<_> = all_benchmarks().into_iter().take(3).collect();
        let configs = [SimConfig::base1ldst(), SimConfig::malec()];
        let serial = run_matrix_serial_on(&benches, &configs, 3_000);
        let parallel = run_matrix_on(&benches, &configs, 3_000);
        assert_eq!(serial.len(), parallel.len());
        for (srow, prow) in serial.iter().zip(&parallel) {
            for (s, p) in srow.iter().zip(prow) {
                assert_eq!(s.benchmark, p.benchmark);
                assert_eq!(s.config, p.config);
                assert_eq!(crate::goldens::digest(s), crate::goldens::digest(p));
            }
        }
    }
}
