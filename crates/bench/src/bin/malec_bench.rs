//! `malec-bench` — the simulator-throughput benchmark.
//!
//! Runs a fixed workload (the three Table I configurations × eight
//! representative benchmarks at `DEFAULT_INSTS` instructions, fixed seed)
//! twice — once through the serial sweep path, once through the parallel
//! one — plus the scenario workload (the five preset scenarios ×
//! {Base1ldst, MALEC} at `SCENARIO_INSTS`), and:
//!
//! 1. asserts the parallel matrix is **bit-identical** to the serial one;
//! 2. asserts both — and the scenario cells — match the recorded golden
//!    digests (`malec_bench::goldens`), so hot-path rewrites provably
//!    preserve simulated behavior;
//! 3. writes wall-clock and cells/sec for both paths to
//!    `BENCH_simulator.json` at the workspace root, tracking the perf
//!    trajectory from PR 1 onward.
//!
//! Flags: `--record` prints fresh `GOLDEN_DIGESTS` /
//! `SCENARIO_GOLDEN_DIGESTS` tables instead of checking (use only after an
//! intentional behavior change); `--jobs N` caps the parallel fan-out at
//! `N` workers instead of consuming every host core (results are
//! bit-identical at any cap).

use std::time::Instant;

use malec_bench::goldens::{
    compare_digest, digest, run_compare_cells_with, run_scenario_cells_with, BENCH_BENCHMARKS,
    COMPARE_GOLDEN_DIGESTS, GOLDEN_DIGESTS, SCENARIO_GOLDEN_DIGESTS,
};
use malec_bench::{run_matrix_on_with, run_matrix_serial_on, DEFAULT_INSTS};
use malec_core::compare::CompareStats;
use malec_core::parallel::workers_for;
use malec_core::RunSummary;
use malec_trace::all_benchmarks;
use malec_trace::profile::BenchmarkProfile;
use malec_types::SimConfig;

/// Parallel speedup demanded when enough cores are present.
const REQUIRED_SPEEDUP: f64 = 2.0;
/// Cores needed before the speedup requirement is enforced (on a dual-core
/// runner 2× is unreachable on principle; on ≥4 cores it is comfortable).
const REQUIRED_SPEEDUP_MIN_WORKERS: usize = 4;

fn configs() -> Vec<SimConfig> {
    vec![
        SimConfig::base1ldst(),
        SimConfig::base2ld1st(),
        SimConfig::malec(),
    ]
}

fn benchmarks() -> Vec<BenchmarkProfile> {
    let profiles: Vec<BenchmarkProfile> = all_benchmarks()
        .into_iter()
        .filter(|b| BENCH_BENCHMARKS.contains(&b.name))
        .collect();
    assert_eq!(
        profiles.len(),
        BENCH_BENCHMARKS.len(),
        "every fixed-workload benchmark must exist"
    );
    profiles
}

fn flat(matrix: &[Vec<RunSummary>]) -> impl Iterator<Item = &RunSummary> {
    matrix.iter().flat_map(|row| row.iter())
}

fn check_goldens(matrix: &[Vec<RunSummary>]) {
    assert_eq!(
        GOLDEN_DIGESTS.len(),
        matrix.iter().map(Vec::len).sum::<usize>(),
        "golden table must cover every cell (re-record with --record)"
    );
    for (cell, &(bench, config, want)) in flat(matrix).zip(GOLDEN_DIGESTS) {
        assert_eq!(cell.benchmark, bench, "cell order drifted");
        assert_eq!(cell.config, config, "cell order drifted");
        let got = digest(cell);
        assert_eq!(
            got, want,
            "{bench}/{config}: simulated behavior diverged from the recorded golden \
             (digest {got:#018x} != {want:#018x})"
        );
    }
}

fn record_goldens(matrix: &[Vec<RunSummary>]) {
    println!("pub const GOLDEN_DIGESTS: &[(&str, &str, u64)] = &[");
    for cell in flat(matrix) {
        println!(
            "    (\"{}\", \"{}\", {:#018x}),",
            cell.benchmark,
            cell.config,
            digest(cell)
        );
    }
    println!("];");
}

fn check_scenario_goldens(cells: &[RunSummary]) {
    assert_eq!(
        SCENARIO_GOLDEN_DIGESTS.len(),
        cells.len(),
        "scenario golden table must cover every cell (re-record with --record)"
    );
    for (cell, &(scenario, config, want)) in cells.iter().zip(SCENARIO_GOLDEN_DIGESTS) {
        assert_eq!(cell.benchmark, scenario, "scenario cell order drifted");
        assert_eq!(cell.config, config, "scenario cell order drifted");
        let got = digest(cell);
        assert_eq!(
            got, want,
            "{scenario}/{config}: scenario behavior diverged from the recorded golden \
             (digest {got:#018x} != {want:#018x})"
        );
    }
}

fn record_scenario_goldens(cells: &[RunSummary]) {
    println!("pub const SCENARIO_GOLDEN_DIGESTS: &[(&str, &str, u64)] = &[");
    for cell in cells {
        println!(
            "    (\"{}\", \"{}\", {:#018x}),",
            cell.benchmark,
            cell.config,
            digest(cell)
        );
    }
    println!("];");
}

fn check_compare_goldens(cells: &[(String, CompareStats)]) {
    assert_eq!(
        COMPARE_GOLDEN_DIGESTS.len(),
        cells.len(),
        "compare golden table must cover every preset (re-record with --record)"
    );
    for ((scenario, stats), &(want_s, want)) in cells.iter().zip(COMPARE_GOLDEN_DIGESTS) {
        assert_eq!(scenario, want_s, "compare cell order drifted");
        let got = compare_digest(stats);
        assert_eq!(
            got, want,
            "{scenario}: paired Base1ldst-vs-MALEC deltas diverged from the recorded golden \
             (digest {got:#018x} != {want:#018x})"
        );
    }
}

fn record_compare_goldens(cells: &[(String, CompareStats)]) {
    println!("pub const COMPARE_GOLDEN_DIGESTS: &[(&str, u64)] = &[");
    for (scenario, stats) in cells {
        println!("    (\"{}\", {:#018x}),", scenario, compare_digest(stats));
    }
    println!("];");
}

fn json_str_list<S: AsRef<str>>(items: impl Iterator<Item = S>) -> String {
    let body = items
        .map(|s| format!("\"{}\"", s.as_ref()))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{body}]")
}

#[allow(clippy::too_many_arguments)] // one artifact, many facts
fn write_json(
    path: &str,
    matrix: &[Vec<RunSummary>],
    scenario_cells: &[RunSummary],
    scenario_s: f64,
    workers: usize,
    serial_s: f64,
    parallel_s: f64,
    goldens: &str,
) {
    let cells = matrix.iter().map(Vec::len).sum::<usize>();
    let speedup = serial_s / parallel_s;
    // Labels come from the matrix itself so the artifact can never
    // disagree with the cells it describes.
    let config_list = json_str_list(matrix[0].iter().map(|s| s.config.as_str()));
    let bench_list = json_str_list(BENCH_BENCHMARKS.iter());
    let scenario_list = json_str_list(
        scenario_cells
            .iter()
            .map(|s| s.benchmark.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter(),
    );
    let note = if workers == 1 {
        "single-core host: parallel speedup is not observable here; the >=2x requirement is enforced on hosts with >=4 workers"
    } else {
        "speedup requirement enforced at >=4 workers"
    };
    let json = format!(
        "{{\n  \"bench\": \"malec_sweep_matrix\",\n  \"workload\": {{\n    \"configs\": {},\n    \"benchmarks\": {},\n    \"insts_per_cell\": {},\n    \"cells\": {}\n  }},\n  \"scenarios\": {{\n    \"names\": {},\n    \"insts_per_cell\": {},\n    \"cells\": {},\n    \"wall_seconds\": {:.4}\n  }},\n  \"workers\": {},\n  \"serial\": {{ \"wall_seconds\": {:.4}, \"cells_per_sec\": {:.3} }},\n  \"parallel\": {{ \"wall_seconds\": {:.4}, \"cells_per_sec\": {:.3} }},\n  \"speedup\": {:.3},\n  \"note\": \"{}\",\n  \"golden_digests\": \"{}\"\n}}\n",
        config_list,
        bench_list,
        DEFAULT_INSTS,
        cells,
        scenario_list,
        malec_bench::goldens::SCENARIO_INSTS,
        scenario_cells.len(),
        scenario_s,
        workers,
        serial_s,
        cells as f64 / serial_s,
        parallel_s,
        cells as f64 / parallel_s,
        speedup,
        note,
        goldens,
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record = args.iter().any(|a| a == "--record");
    let jobs: Option<usize> = args.iter().position(|a| a == "--jobs").map(|i| {
        let Some(value) = args.get(i + 1) else {
            eprintln!("malec-bench: --jobs needs a worker count");
            std::process::exit(2);
        };
        value.parse().unwrap_or_else(|_| {
            eprintln!("malec-bench: bad value `{value}` for --jobs");
            std::process::exit(2);
        })
    });
    let configs = configs();
    let benchmarks = benchmarks();
    let cells = configs.len() * benchmarks.len();
    // What the parallel matrix actually runs with: available parallelism,
    // capped by the cell count (previously this quoted the raw host
    // parallelism, which overstates small sweeps on big machines) and by
    // the operator's --jobs cap.
    let workers = workers_for(cells, jobs);

    eprintln!(
        "malec-bench: {cells} cells ({} configs x {} benchmarks) at {DEFAULT_INSTS} insts, \
         {workers} worker(s)",
        configs.len(),
        benchmarks.len()
    );

    let t = Instant::now();
    let serial = run_matrix_serial_on(&benchmarks, &configs, DEFAULT_INSTS);
    let serial_s = t.elapsed().as_secs_f64();
    eprintln!(
        "  serial:   {serial_s:.3}s  ({:.2} cells/s)",
        cells as f64 / serial_s
    );

    let t = Instant::now();
    let parallel = run_matrix_on_with(&benchmarks, &configs, DEFAULT_INSTS, jobs);
    let parallel_s = t.elapsed().as_secs_f64();
    eprintln!(
        "  parallel: {parallel_s:.3}s  ({:.2} cells/s, {:.2}x)",
        cells as f64 / parallel_s,
        serial_s / parallel_s
    );

    // Scheduling must not leak into results: the parallel matrix is
    // bit-identical to the serial one, cell by cell.
    for (s, p) in flat(&serial).zip(flat(&parallel)) {
        assert_eq!(
            digest(s),
            digest(p),
            "{}/{}: parallel result diverged from serial",
            s.benchmark,
            s.config
        );
    }

    let t = Instant::now();
    let scenario_cells = run_scenario_cells_with(jobs);
    let scenario_s = t.elapsed().as_secs_f64();
    eprintln!(
        "  scenarios: {scenario_s:.3}s  ({} cells at {} insts)",
        scenario_cells.len(),
        malec_bench::goldens::SCENARIO_INSTS
    );

    let t = Instant::now();
    let compare_cells = run_compare_cells_with(jobs);
    let compare_s = t.elapsed().as_secs_f64();
    eprintln!(
        "  compares: {compare_s:.3}s  ({} paired presets, {} shared seeds at {} insts)",
        compare_cells.len(),
        malec_bench::goldens::COMPARE_SEEDS,
        malec_bench::goldens::COMPARE_INSTS
    );

    let golden_status = if record {
        record_goldens(&serial);
        record_scenario_goldens(&scenario_cells);
        record_compare_goldens(&compare_cells);
        "recorded"
    } else {
        check_goldens(&serial);
        check_scenario_goldens(&scenario_cells);
        check_compare_goldens(&compare_cells);
        eprintln!(
            "  goldens:  ok ({} benchmark + {} scenario + {} compare digests)",
            GOLDEN_DIGESTS.len(),
            SCENARIO_GOLDEN_DIGESTS.len(),
            COMPARE_GOLDEN_DIGESTS.len()
        );
        "ok"
    };

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simulator.json");
    write_json(
        out,
        &serial,
        &scenario_cells,
        scenario_s,
        workers,
        serial_s,
        parallel_s,
        golden_status,
    );
    eprintln!("  wrote {out}");

    if workers >= REQUIRED_SPEEDUP_MIN_WORKERS {
        let speedup = serial_s / parallel_s;
        assert!(
            speedup >= REQUIRED_SPEEDUP,
            "parallel sweep must be >= {REQUIRED_SPEEDUP}x with {workers} workers, got {speedup:.2}x"
        );
    } else if workers == 1 {
        eprintln!("  note: single-core host, speedup requirement not applicable");
    }
}
