//! Recorded behavioral digests for the fixed `malec-bench` workload.
//!
//! Each digest folds every behavioral field of one cell's [`RunSummary`] —
//! core statistics, interface statistics, all energy event counters, the
//! priced energy (bit pattern) and the miss rates (bit patterns) — into a
//! single FNV-1a value. The `malec-bench` binary recomputes the digests on
//! every run and compares them against [`GOLDEN_DIGESTS`], recorded from
//! the simulator as bootstrapped (before the allocation-free hot-path
//! rewrite), so any optimization that changes simulated behavior, however
//! slightly, fails the bench run.
//!
//! To re-record after an *intentional* behavior change:
//!
//! ```sh
//! cargo run --release -p malec-bench --bin malec-bench -- --record
//! ```
//!
//! and replace the [`GOLDEN_DIGESTS`] table with the printed one.

use malec_core::RunSummary;

/// The eight representative benchmarks of the fixed workload: four
/// SPEC-INT (incl. the `mcf` miss-rate outlier), two SPEC-FP, two
/// MediaBench2.
pub const BENCH_BENCHMARKS: [&str; 8] = [
    "gzip", "mcf", "gap", "twolf", "swim", "art", "djpeg", "h263dec",
];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

#[inline]
fn fold(h: u64, v: u64) -> u64 {
    let mut h = h ^ v;
    h = h.wrapping_mul(FNV_PRIME);
    h
}

/// FNV-1a digest over every behavioral field of `s`.
pub fn digest(s: &RunSummary) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.config.bytes() {
        h = fold(h, u64::from(b));
    }
    for b in s.benchmark.bytes() {
        h = fold(h, u64::from(b));
    }
    let c = &s.core;
    for v in [
        c.cycles,
        c.committed,
        c.loads,
        c.stores,
        c.branches,
        c.agu_stall_cycles,
        c.issued_ops,
    ] {
        h = fold(h, v);
    }
    let i = &s.interface;
    for v in [
        i.loads_serviced,
        i.merged_loads,
        i.stores_accepted,
        i.mbe_writes,
        i.groups,
        i.group_loads,
        i.reduced_accesses,
        i.conventional_accesses,
        i.held_load_cycles,
        i.translations,
        i.store_translations_shared,
    ] {
        h = fold(h, v);
    }
    let k = &s.counters;
    for v in [
        k.l1_tag_bank_reads,
        k.l1_data_subblock_reads,
        k.l1_data_subblock_writes,
        k.l1_tag_bank_writes,
        k.utlb_lookups,
        k.utlb_fills,
        k.utlb_reverse_lookups,
        k.tlb_lookups,
        k.tlb_fills,
        k.tlb_reverse_lookups,
        k.uwt_reads,
        k.uwt_writes,
        k.uwt_bit_updates,
        k.wt_reads,
        k.wt_writes,
        k.wt_bit_updates,
        k.wdu_lookups,
        k.wdu_writes,
        k.sb_lookups_full,
        k.sb_lookups_page_segment,
        k.sb_lookups_narrow,
        k.mb_lookups_full,
        k.mb_lookups_page_segment,
        k.mb_lookups_narrow,
        k.input_buffer_compares,
        k.arbitration_compares,
    ] {
        h = fold(h, v);
    }
    for v in [
        s.energy.dynamic.to_bits(),
        s.energy.leakage.to_bits(),
        s.l1_miss_rate.to_bits(),
        s.l2_miss_rate.to_bits(),
        s.utlb_miss_rate.to_bits(),
    ] {
        h = fold(h, v);
    }
    h
}

/// `(benchmark, config label, digest)` per cell of the fixed workload,
/// row-major in `(BENCH_BENCHMARKS, Table I configs)` order. Recorded at
/// `DEFAULT_INSTS` instructions, `DEFAULT_SEED` seed.
pub const GOLDEN_DIGESTS: &[(&str, &str, u64)] = &[
    ("gzip", "Base1ldst", 0x1ec651e42e120986),
    ("gzip", "Base2ld1st", 0xa7a05d912197c509),
    ("gzip", "MALEC", 0x29046e5ac50a4d74),
    ("mcf", "Base1ldst", 0x84eb9182a5ccae93),
    ("mcf", "Base2ld1st", 0x006771d8140889bf),
    ("mcf", "MALEC", 0x37545d3408067284),
    ("gap", "Base1ldst", 0x07c6c9d0ce4a6fe2),
    ("gap", "Base2ld1st", 0x7a84c23bfc8d4cdc),
    ("gap", "MALEC", 0x45a349f024918923),
    ("twolf", "Base1ldst", 0x39af7592b3d106b1),
    ("twolf", "Base2ld1st", 0x59f082ef6cef8141),
    ("twolf", "MALEC", 0x59c44b2c638d173b),
    ("swim", "Base1ldst", 0x6ecdaa7c3332740a),
    ("swim", "Base2ld1st", 0x4ee1385c62c1fe38),
    ("swim", "MALEC", 0x19f40a320cfdcdb0),
    ("art", "Base1ldst", 0xbaca615a0d859ba4),
    ("art", "Base2ld1st", 0x637698d2737419d1),
    ("art", "MALEC", 0x188f8ed03c911069),
    ("djpeg", "Base1ldst", 0x40c8cb521f5e2e1f),
    ("djpeg", "Base2ld1st", 0x7f1b594738cd0948),
    ("djpeg", "MALEC", 0x98e12771e2464cd2),
    ("h263dec", "Base1ldst", 0x8f14c65d077deaed),
    ("h263dec", "Base2ld1st", 0xf038e6e2389a5a70),
    ("h263dec", "MALEC", 0xee45a3856c04bb41),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_one, DEFAULT_SEED};
    use malec_trace::all_benchmarks;
    use malec_types::SimConfig;

    #[test]
    fn digest_is_stable_and_sensitive() {
        let profile = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "gzip")
            .expect("gzip exists");
        let a = run_one(&SimConfig::malec(), &profile, 3_000);
        let b = run_one(&SimConfig::malec(), &profile, 3_000);
        assert_eq!(digest(&a), digest(&b), "same run, same digest");
        let mut c = a.clone();
        c.counters.utlb_lookups += 1;
        assert_ne!(digest(&a), digest(&c), "one counter flips the digest");
        let _ = DEFAULT_SEED; // the digest contract is tied to the fixed seed
    }
}
