//! Recorded behavioral digests for the fixed `malec-bench` workload.
//!
//! Each digest folds every behavioral field of one cell's [`RunSummary`] —
//! core statistics, interface statistics, all energy event counters, the
//! priced energy (bit pattern) and the miss rates (bit patterns) — into a
//! single FNV-1a value. The `malec-bench` binary recomputes the digests on
//! every run and compares them against [`GOLDEN_DIGESTS`], recorded from
//! the simulator as bootstrapped (before the allocation-free hot-path
//! rewrite), so any optimization that changes simulated behavior, however
//! slightly, fails the bench run.
//!
//! To re-record after an *intentional* behavior change:
//!
//! ```sh
//! cargo run --release -p malec-bench --bin malec-bench -- --record
//! ```
//!
//! and replace the [`GOLDEN_DIGESTS`] table with the printed one.

use malec_core::compare::{Alpha, CompareStats};
use malec_core::parallel::{parallel_map_with, workers_for};
use malec_core::stats::replicate_seed;
use malec_core::{RunSummary, ScenarioSource, Simulator};
use malec_trace::scenario::presets;
use malec_trace::Scenario;
use malec_types::SimConfig;

/// The eight representative benchmarks of the fixed workload: four
/// SPEC-INT (incl. the `mcf` miss-rate outlier), two SPEC-FP, two
/// MediaBench2.
pub const BENCH_BENCHMARKS: [&str; 8] = [
    "gzip", "mcf", "gap", "twolf", "swim", "art", "djpeg", "h263dec",
];

/// Instructions per scenario golden cell (scenarios mix phases, so they
/// need a few phase cycles to express their structure; still cheap enough
/// for every CI run).
pub const SCENARIO_INSTS: u64 = 40_000;

/// The configurations each scenario golden cell runs under: the energy
/// baseline and MALEC (the pair whose *relationship* the adversarial
/// patterns are designed to stress).
pub fn scenario_configs() -> Vec<SimConfig> {
    vec![SimConfig::base1ldst(), SimConfig::malec()]
}

/// The scenario golden workload: every preset scenario under every
/// [`scenario_configs`] entry, scenario-major, at [`SCENARIO_INSTS`]
/// instructions and the fixed [`crate::DEFAULT_SEED`].
pub fn run_scenario_cells() -> Vec<RunSummary> {
    run_scenario_cells_with(None)
}

/// [`run_scenario_cells`] with an operator-imposed worker cap (`--jobs N`).
pub fn run_scenario_cells_with(jobs: Option<usize>) -> Vec<RunSummary> {
    let cells: Vec<(Scenario, SimConfig)> = presets()
        .into_iter()
        .flat_map(|s| {
            scenario_configs()
                .into_iter()
                .map(move |cfg| (s.clone(), cfg))
        })
        .collect();
    let workers = workers_for(cells.len(), jobs);
    parallel_map_with(
        cells,
        |(scenario, cfg)| {
            Simulator::new(cfg.clone())
                .run_source(
                    &ScenarioSource::Scenario(scenario.clone()),
                    SCENARIO_INSTS,
                    crate::DEFAULT_SEED,
                )
                .expect("generator sources cannot fail")
        },
        workers,
    )
}

/// The digest implementation moved to `malec_core::digest` in PR 3 so
/// goldens, replay-verify and the `malec-serve` result cache share one
/// definition; this re-export keeps the historical `goldens::digest` path
/// working for benches and external callers.
pub use malec_core::digest::digest;

/// Re-export of the comparison digest checked against
/// [`COMPARE_GOLDEN_DIGESTS`].
pub use malec_core::compare::compare_digest;

/// Instructions per side per shared seed of a compare golden cell (smaller
/// than [`SCENARIO_INSTS`] because each preset runs `2 × COMPARE_SEEDS`
/// simulations instead of 2).
pub const COMPARE_INSTS: u64 = 20_000;

/// Shared seeds per compare golden cell.
pub const COMPARE_SEEDS: u32 = 3;

/// The compare golden workload: every preset scenario paired as
/// `Base1ldst` (baseline) vs `MALEC` (candidate) over [`COMPARE_SEEDS`]
/// shared seeds at [`COMPARE_INSTS`] instructions, the fixed
/// [`crate::DEFAULT_SEED`], and `alpha = 0.05`. Returns `(preset name,
/// comparison)` in preset order.
pub fn run_compare_cells_with(jobs: Option<usize>) -> Vec<(String, CompareStats)> {
    let scenarios = presets();
    // One flat fan-out over (preset, side, replicate); the pairing is
    // reassembled below, so the schedule never touches the statistics.
    let cells: Vec<(usize, SimConfig, u32)> = (0..scenarios.len())
        .flat_map(|s| {
            scenario_configs()
                .into_iter()
                .flat_map(move |cfg| (0..COMPARE_SEEDS).map(move |r| (s, cfg.clone(), r)))
        })
        .collect();
    let workers = workers_for(cells.len(), jobs);
    let summaries = parallel_map_with(
        cells.clone(),
        |(s, cfg, r)| {
            Simulator::new(cfg.clone())
                .run_source(
                    &ScenarioSource::Scenario(scenarios[*s].clone()),
                    COMPARE_INSTS,
                    replicate_seed(crate::DEFAULT_SEED, *r),
                )
                .expect("generator sources cannot fail")
        },
        workers,
    );
    let per_preset = 2 * COMPARE_SEEDS as usize;
    scenarios
        .iter()
        .enumerate()
        .map(|(s, scenario)| {
            let chunk = &summaries[s * per_preset..(s + 1) * per_preset];
            let (base, cand) = chunk.split_at(COMPARE_SEEDS as usize);
            (
                scenario.name.clone(),
                CompareStats::from_pairs(base, cand, COMPARE_SEEDS, Alpha::Five),
            )
        })
        .collect()
}

/// `(benchmark, config label, digest)` per cell of the fixed workload,
/// row-major in `(BENCH_BENCHMARKS, Table I configs)` order. Recorded at
/// `DEFAULT_INSTS` instructions, `DEFAULT_SEED` seed.
pub const GOLDEN_DIGESTS: &[(&str, &str, u64)] = &[
    ("gzip", "Base1ldst", 0x1ec651e42e120986),
    ("gzip", "Base2ld1st", 0xa7a05d912197c509),
    ("gzip", "MALEC", 0x29046e5ac50a4d74),
    ("mcf", "Base1ldst", 0x84eb9182a5ccae93),
    ("mcf", "Base2ld1st", 0x006771d8140889bf),
    ("mcf", "MALEC", 0x37545d3408067284),
    ("gap", "Base1ldst", 0x07c6c9d0ce4a6fe2),
    ("gap", "Base2ld1st", 0x7a84c23bfc8d4cdc),
    ("gap", "MALEC", 0x45a349f024918923),
    ("twolf", "Base1ldst", 0x39af7592b3d106b1),
    ("twolf", "Base2ld1st", 0x59f082ef6cef8141),
    ("twolf", "MALEC", 0x59c44b2c638d173b),
    ("swim", "Base1ldst", 0x6ecdaa7c3332740a),
    ("swim", "Base2ld1st", 0x4ee1385c62c1fe38),
    ("swim", "MALEC", 0x19f40a320cfdcdb0),
    ("art", "Base1ldst", 0xbaca615a0d859ba4),
    ("art", "Base2ld1st", 0x637698d2737419d1),
    ("art", "MALEC", 0x188f8ed03c911069),
    ("djpeg", "Base1ldst", 0x40c8cb521f5e2e1f),
    ("djpeg", "Base2ld1st", 0x7f1b594738cd0948),
    ("djpeg", "MALEC", 0x98e12771e2464cd2),
    ("h263dec", "Base1ldst", 0x8f14c65d077deaed),
    ("h263dec", "Base2ld1st", 0xf038e6e2389a5a70),
    ("h263dec", "MALEC", 0xee45a3856c04bb41),
];

/// `(scenario, config label, digest)` per cell of the scenario workload
/// ([`run_scenario_cells`] order). Recorded at [`SCENARIO_INSTS`]
/// instructions, [`crate::DEFAULT_SEED`] seed; refresh with
/// `malec-bench -- --record` after an intentional behavior change.
pub const SCENARIO_GOLDEN_DIGESTS: &[(&str, &str, u64)] = &[
    ("phased_compress_decode", "Base1ldst", 0xd2bc356cf4edc460),
    ("phased_compress_decode", "MALEC", 0x7d15453dd09fbd03),
    ("mixed_int_media_thrash", "Base1ldst", 0x00cdd3f89153b26f),
    ("mixed_int_media_thrash", "MALEC", 0x254a3282748ee789),
    ("tlb_thrash", "Base1ldst", 0xce2390c5823f382a),
    ("tlb_thrash", "MALEC", 0xd89d3ce8a28a5ca5),
    ("bank_conflict", "Base1ldst", 0xbbcf1796699b1b84),
    ("bank_conflict", "MALEC", 0xde7d83402b15d581),
    ("store_burst", "Base1ldst", 0xd9acc25a6b874b0b),
    ("store_burst", "MALEC", 0xce455fc869e46c0e),
];

/// `(preset scenario, compare digest)` per compare golden cell
/// ([`run_compare_cells_with`] order): the paired Base1ldst-vs-MALEC delta
/// blocks of each preset, digested bit-exactly ([`compare_digest`] folds
/// every delta mean, CI width, relative improvement and verdict). Recorded
/// at [`COMPARE_INSTS`] / [`COMPARE_SEEDS`] / [`crate::DEFAULT_SEED`] /
/// `alpha = 0.05`; refresh with `malec-bench -- --record` after an
/// intentional behavior change.
pub const COMPARE_GOLDEN_DIGESTS: &[(&str, u64)] = &[
    ("phased_compress_decode", 0x0e5f18eb758778e4),
    ("mixed_int_media_thrash", 0xf123fcd9e392037d),
    ("tlb_thrash", 0xe1fc7e3d540e8ab4),
    ("bank_conflict", 0xd065b86b38d331a0),
    ("store_burst", 0x61e638b640a28e23),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_one, DEFAULT_SEED};
    use malec_trace::all_benchmarks;
    use malec_types::SimConfig;

    #[test]
    fn digest_is_stable_and_sensitive() {
        let profile = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "gzip")
            .expect("gzip exists");
        let a = run_one(&SimConfig::malec(), &profile, 3_000);
        let b = run_one(&SimConfig::malec(), &profile, 3_000);
        assert_eq!(digest(&a), digest(&b), "same run, same digest");
        let mut c = a.clone();
        c.counters.utlb_lookups += 1;
        assert_ne!(digest(&a), digest(&c), "one counter flips the digest");
        let _ = DEFAULT_SEED; // the digest contract is tied to the fixed seed
    }

    #[test]
    fn replicated_sweeps_keep_replicate_zero_on_the_golden_path() {
        // The replication engine's core compatibility promise: replicate 0
        // of a multi-seed sweep is the legacy single-seed run, bit for bit
        // — checked here directly against the recorded golden table.
        use malec_core::stats::Replication;
        use malec_core::sweep::{ParameterSweep, SweepPoint};
        use malec_trace::scenario::preset_named;

        let scenario = preset_named("store_burst").expect("preset");
        let points = vec![SweepPoint {
            label: "MALEC".to_owned(),
            config: SimConfig::malec(),
        }];
        let out = ParameterSweep::run_source_replicated(
            &points,
            &ScenarioSource::Scenario(scenario),
            SCENARIO_INSTS,
            DEFAULT_SEED,
            &Replication::fixed(3),
            None,
        );
        let &(_, _, golden) = SCENARIO_GOLDEN_DIGESTS
            .iter()
            .find(|&&(s, c, _)| s == "store_burst" && c == "MALEC")
            .expect("golden cell exists");
        assert_eq!(
            digest(&out[0].replicates[0]),
            golden,
            "replicate 0 must reproduce the recorded golden digest"
        );
        assert_ne!(
            digest(&out[0].replicates[1]),
            golden,
            "replicate 1 runs a genuinely different seed"
        );
    }

    #[test]
    fn compare_golden_table_covers_every_preset_and_one_cell_reproduces() {
        use malec_trace::scenario::presets;
        let names: Vec<String> = presets().into_iter().map(|s| s.name).collect();
        assert_eq!(COMPARE_GOLDEN_DIGESTS.len(), names.len());
        for (&(scenario, digest), want) in COMPARE_GOLDEN_DIGESTS.iter().zip(&names) {
            assert_eq!(scenario, want);
            assert_ne!(
                digest, 0,
                "{scenario}: placeholder digest left in the table"
            );
        }
        // One cell recomputed from scratch (debug builds must digest
        // identically to the release recording — float determinism).
        let scenario = presets()
            .into_iter()
            .find(|s| s.name == "store_burst")
            .expect("preset exists");
        let run = |cfg: SimConfig, r: u32| {
            Simulator::new(cfg)
                .run_source(
                    &ScenarioSource::Scenario(scenario.clone()),
                    COMPARE_INSTS,
                    replicate_seed(DEFAULT_SEED, r),
                )
                .expect("generator sources cannot fail")
        };
        let base: Vec<RunSummary> = (0..COMPARE_SEEDS)
            .map(|r| run(SimConfig::base1ldst(), r))
            .collect();
        let cand: Vec<RunSummary> = (0..COMPARE_SEEDS)
            .map(|r| run(SimConfig::malec(), r))
            .collect();
        let stats = CompareStats::from_pairs(&base, &cand, COMPARE_SEEDS, Alpha::Five);
        let &(_, golden) = COMPARE_GOLDEN_DIGESTS
            .iter()
            .find(|&&(s, _)| s == "store_burst")
            .expect("golden cell exists");
        assert_eq!(
            compare_digest(&stats),
            golden,
            "store_burst: paired deltas must reproduce the recorded compare golden"
        );
    }

    #[test]
    fn scenario_golden_table_covers_every_preset_cell() {
        use malec_trace::scenario::presets;
        let expected: Vec<(String, String)> = presets()
            .into_iter()
            .flat_map(|s| {
                scenario_configs()
                    .into_iter()
                    .map(move |cfg| (s.name.clone(), cfg.label()))
            })
            .collect();
        assert_eq!(SCENARIO_GOLDEN_DIGESTS.len(), expected.len());
        assert!(
            SCENARIO_GOLDEN_DIGESTS.len() >= 6,
            "the scenario golden table must keep at least 6 cells"
        );
        for (&(scenario, config, _), (want_s, want_c)) in
            SCENARIO_GOLDEN_DIGESTS.iter().zip(&expected)
        {
            assert_eq!(scenario, want_s);
            assert_eq!(config, want_c);
        }
    }
}
