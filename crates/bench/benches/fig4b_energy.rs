//! **Fig. 4b** — Dynamic and overall (dynamic + leakage) energy consumption
//! of the L1 data memory subsystem, normalized to `Base1ldst`.
//!
//! Paper headlines: `Base2ld1st` consumes +42 % dynamic energy and +48 %
//! total energy; MALEC saves 33 % dynamic and 22 % total energy relative to
//! `Base1ldst` (−48 % relative to `Base2ld1st`); mcf's dynamic saving is an
//! exceptional −51 % thanks to load merging at a ≈ 7× average miss rate.

use malec_core::report::{normalized_percent, TextTable};
use malec_trace::all_benchmarks;
use malec_types::SimConfig;

fn main() {
    let configs = SimConfig::figure4_set();
    let insts = malec_bench::insts_budget();
    let matrix = malec_bench::run_matrix(&configs, insts);
    let benchmarks = all_benchmarks();

    println!("\n== Fig. 4b: normalized energy consumption [%] (lower is better) ==");
    println!("   each cell: total (dynamic) — leakage is total minus dynamic\n");
    let mut t = TextTable::new(
        std::iter::once("benchmark".to_owned())
            .chain(configs.iter().map(SimConfig::label))
            .collect(),
    );
    let mut total_series: Vec<Vec<(malec_trace::Suite, f64)>> = vec![Vec::new(); configs.len()];
    let mut dyn_series: Vec<Vec<(malec_trace::Suite, f64)>> = vec![Vec::new(); configs.len()];
    let mut last_suite = None;
    for (profile, runs) in benchmarks.iter().zip(&matrix) {
        let base_total = runs[0].total_energy();
        let base_dyn = runs[0].energy.dynamic;
        if last_suite != Some(profile.suite) {
            if last_suite.is_some() {
                t.separator();
            }
            last_suite = Some(profile.suite);
        }
        let mut row = vec![profile.name.to_owned()];
        for (ci, run) in runs.iter().enumerate() {
            let total = normalized_percent(run.total_energy(), base_total);
            let dynamic = normalized_percent(run.energy.dynamic, base_dyn);
            total_series[ci].push((profile.suite, total));
            dyn_series[ci].push((profile.suite, dynamic));
            row.push(format!("{total:6.1} ({dynamic:5.1})"));
        }
        t.row(row);
    }
    t.separator();
    for gi in 0..4 {
        let mut row = Vec::new();
        for ci in 0..configs.len() {
            let totals = malec_bench::suite_geo_means(&total_series[ci]);
            let dyns = malec_bench::suite_geo_means(&dyn_series[ci]);
            if ci == 0 {
                row.push(totals[gi].0.clone());
            }
            row.push(format!("{:6.1} ({:5.1})", totals[gi].1, dyns[gi].1));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Paper reference (overall): Base2ld1st +42% dynamic / +48% total;\n\
         MALEC -33% dynamic / -22% total vs Base1ldst (-48% total vs Base2ld1st)."
    );
}
