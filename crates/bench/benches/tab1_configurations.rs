//! **Table I** — Basic configurations: address computations per cycle,
//! uTLB/TLB ports and cache ports for Base1ldst, Base2ld1st and MALEC.
//!
//! Printed directly from the `SimConfig` presets the simulator actually
//! uses, so this table cannot drift from the implementation.

use malec_core::report::TextTable;
use malec_types::SimConfig;

fn ports(p: malec_types::PortConfig) -> String {
    let mut parts = Vec::new();
    if p.rw > 0 {
        parts.push(format!("{} rd/wt", p.rw));
    }
    if p.rd > 0 {
        parts.push(format!("{} rd", p.rd));
    }
    if p.wr > 0 {
        parts.push(format!("{} wt", p.wr));
    }
    parts.join(" + ")
}

fn main() {
    println!("\n== Table I: basic configurations ==\n");
    let mut t = TextTable::new(vec![
        "Config".into(),
        "Addr. comp. per cycle".into(),
        "uTLB/TLB ports".into(),
        "Cache ports".into(),
    ]);
    for cfg in [
        SimConfig::base1ldst(),
        SimConfig::base2ld1st(),
        SimConfig::malec(),
    ] {
        let agus = cfg.agus();
        let agu_desc = match cfg.interface {
            malec_types::InterfaceKind::Base1LdSt => "1 ld/st".to_owned(),
            malec_types::InterfaceKind::Base2Ld1St => {
                format!("{} ld + {} st", agus.load_only, agus.store_only)
            }
            malec_types::InterfaceKind::Malec => {
                format!("{} ld + {} ld/st", agus.load_only, agus.shared)
            }
        };
        t.row(vec![
            cfg.label(),
            agu_desc,
            ports(cfg.tlb_ports()),
            ports(cfg.cache_ports()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper reference: Base1ldst 1 ld/st | 1 rd/wt | 1 rd/wt;\n\
         Base2ld1st 2 ld + 1 st | 1 rd/wt + 2 rd | 1 rd/wt + 1 rd;\n\
         MALEC 1 ld + 2 ld/st | 1 rd/wt | 1 rd/wt."
    );
}
