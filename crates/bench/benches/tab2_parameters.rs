//! **Table II** — Relevant simulation parameters, printed from the constants
//! the simulator uses (with consistency assertions against the geometry
//! types, so drift is impossible).

use malec_core::report::TextTable;
use malec_types::geometry::{CacheGeometry, PageGeometry};
use malec_types::params;

fn main() {
    // Assert the geometry presets agree with the Table II constants.
    let l1 = CacheGeometry::paper_l1();
    let l2 = CacheGeometry::paper_l2();
    let page = PageGeometry::default();
    assert_eq!(l1.total_bytes(), params::L1_BYTES);
    assert_eq!(l1.ways(), params::L1_WAYS);
    assert_eq!(l1.banks(), params::L1_BANKS);
    assert_eq!(l1.sub_block_bits(), params::SUB_BLOCK_BITS);
    assert_eq!(l2.total_bytes(), params::L2_BYTES);
    assert_eq!(l2.ways(), params::L2_WAYS);
    assert_eq!(page.page_bytes(), params::PAGE_BYTES);
    assert_eq!(page.line_bytes(), params::LINE_BYTES);

    println!("\n== Table II: relevant simulation parameters ==\n");
    let mut t = TextTable::new(vec!["Component".into(), "Parameter".into()]);
    t.row(vec![
        "Processor".into(),
        format!(
            "single-core, out-of-order, 1 GHz clock, {} ROB entries, \
             {} element fetch&dispatch-width, {} element issue-width",
            params::ROB_ENTRIES,
            params::DISPATCH_WIDTH,
            params::ISSUE_WIDTH
        ),
    ]);
    t.row(vec![
        "L1 interface".into(),
        format!(
            "{} TLB entries, {} uTLB entries, {} LQ entries, {} SB entries, \
             {} MB entries, {} bit addr. space, {} KByte pages",
            params::TLB_ENTRIES,
            params::UTLB_ENTRIES,
            params::LQ_ENTRIES,
            params::SB_ENTRIES,
            params::MB_ENTRIES,
            params::ADDRESS_BITS,
            params::PAGE_BYTES / 1024
        ),
    ]);
    t.row(vec![
        "L1 D-cache".into(),
        format!(
            "{} KByte, {} cycle latency, {} byte lines, {}-way set-assoc., \
             {} independent banks, PIPT, {} bit sub-blocks per line",
            params::L1_BYTES / 1024,
            params::L1_LATENCY,
            params::LINE_BYTES,
            params::L1_WAYS,
            params::L1_BANKS,
            params::SUB_BLOCK_BITS
        ),
    ]);
    t.row(vec![
        "L2 cache".into(),
        format!(
            "{} MByte, {} cycle latency, {}-way set-assoc.",
            params::L2_BYTES / (1024 * 1024),
            params::L2_LATENCY,
            params::L2_WAYS
        ),
    ]);
    t.row(vec![
        "DRAM".into(),
        format!("256 MByte, {} cycle latency", params::DRAM_LATENCY),
    ]);
    t.row(vec![
        "Energy model".into(),
        "analytical CACTI-like model, 32nm-class constants, low dyn. power \
         objective (see malec-energy crate docs)"
            .into(),
    ]);
    println!("{}", t.render());
    println!("All values match Table II of the paper; assertions above tie them to the code.");
}
