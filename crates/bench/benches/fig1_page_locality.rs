//! **Fig. 1** — Number of consecutive read accesses to the same page,
//! allowing 0/1/2/3/4/8 intermediate accesses to a different page.
//!
//! The paper's headline numbers: on average 70 % of all loads are directly
//! followed by one or more loads to the same page; allowing one, two or
//! three intermediates raises the ratio to 85 / 90 / 92 %. Each bar splits
//! loads into same-page run-length buckets (1, 2, 3–4, 5–8, > 8).

use malec_core::report::TextTable;
use malec_trace::stats::{page_locality_ratios, run_length_buckets};
use malec_trace::{all_benchmarks, WorkloadGenerator};
use malec_types::addr::VPageId;

fn main() {
    let insts = malec_bench::insts_budget();
    let allowed = [0usize, 1, 2, 3, 4, 8];

    println!("\n== Fig. 1: consecutive same-page read accesses ==\n");
    let mut table = TextTable::new(
        std::iter::once("benchmark".to_owned())
            .chain(allowed.iter().map(|n| format!("n={n} [%]")))
            .collect(),
    );
    let mut grouped: Vec<(malec_trace::Suite, f64)> = Vec::new();
    let mut last_suite = None;
    for profile in all_benchmarks() {
        let pages: Vec<VPageId> = WorkloadGenerator::new(&profile, malec_bench::DEFAULT_SEED)
            .take(insts as usize)
            .filter(|i| i.is_load())
            .map(|i| VPageId::new(i.vaddr().expect("load has address").raw() >> 12))
            .collect();
        let ratios = page_locality_ratios(&pages, &allowed);
        if last_suite != Some(profile.suite) {
            if last_suite.is_some() {
                table.separator();
            }
            last_suite = Some(profile.suite);
        }
        table.row(
            std::iter::once(profile.name.to_owned())
                .chain(ratios.iter().map(|r| format!("{:5.1}", 100.0 * r)))
                .collect(),
        );
        grouped.push((profile.suite, ratios[0]));
    }
    table.separator();
    // Suite averages for the n=0 series plus the full overall series.
    for (label, v) in malec_bench::suite_geo_means(&grouped) {
        table.row(vec![label, format!("{:5.1}", 100.0 * v)]);
    }
    println!("{}", table.render());

    // Run-length bucket split (the bar segments), overall, for each n.
    println!("== Fig. 1 bar segments: share of loads per run-length bucket (overall) ==\n");
    let mut seg = TextTable::new(vec![
        "allowed intermediates".into(),
        "x=1 [%]".into(),
        "x=2 [%]".into(),
        "2<x<=4 [%]".into(),
        "4<x<=8 [%]".into(),
        "8<x [%]".into(),
    ]);
    let mut all_pages: Vec<VPageId> = Vec::new();
    for profile in all_benchmarks() {
        all_pages.extend(
            WorkloadGenerator::new(&profile, malec_bench::DEFAULT_SEED)
                .take((insts / 4) as usize)
                .filter(|i| i.is_load())
                .map(|i| VPageId::new(i.vaddr().expect("load has address").raw() >> 12)),
        );
        // Separate benchmarks so runs never span two programs.
        all_pages.push(VPageId::new(u64::MAX));
    }
    for n in allowed {
        let b = run_length_buckets(&all_pages, n);
        seg.row(vec![
            format!("n={n}"),
            format!("{:5.1}", 100.0 * b.single),
            format!("{:5.1}", 100.0 * b.pair),
            format!("{:5.1}", 100.0 * b.three_to_four),
            format!("{:5.1}", 100.0 * b.five_to_eight),
            format!("{:5.1}", 100.0 * b.more_than_eight),
        ]);
    }
    println!("{}", seg.render());
    println!("Paper reference: 70% grouped at n=0; 85/90/92% at n=1/2/3.");
}
