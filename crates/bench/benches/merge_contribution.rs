//! **Sec. VI-B ablation** — contribution of load merging to MALEC's speedup.
//!
//! The paper reports that merged loads contribute ≈ 21 % of MALEC's overall
//! performance improvement, rising to 56 % for gap and 66 % for equake
//! (particularly suitable access patterns) and falling below 2 % for mgrid
//! (line-stride accesses never share a line). It also reports that without
//! data sharing, mcf would consume 5 % *more* instead of 51 % less dynamic
//! energy.

use malec_core::report::{geo_mean, TextTable};
use malec_trace::all_benchmarks;
use malec_types::SimConfig;

fn main() {
    let insts = malec_bench::insts_budget();
    let base1 = SimConfig::base1ldst();
    let malec = SimConfig::malec();
    let malec_nomerge = SimConfig::malec().with_load_merging(false);

    println!("\n== Sec. VI-B: contribution of load merging to MALEC's speedup ==\n");
    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "speedup [%]".into(),
        "speedup w/o merging [%]".into(),
        "merge contribution [%]".into(),
        "merged loads [%]".into(),
        "mcf-style dyn energy [%]".into(),
    ]);
    let mut contributions = Vec::new();
    for profile in all_benchmarks() {
        let b = malec_bench::run_one(&base1, &profile, insts);
        let m = malec_bench::run_one(&malec, &profile, insts);
        let nm = malec_bench::run_one(&malec_nomerge, &profile, insts);
        let speedup = b.core.cycles as f64 / m.core.cycles as f64 - 1.0;
        let speedup_nm = b.core.cycles as f64 / nm.core.cycles as f64 - 1.0;
        let contribution = if speedup > 1e-6 {
            ((speedup - speedup_nm) / speedup).clamp(-1.0, 1.0)
        } else {
            0.0
        };
        contributions.push((1.0 + contribution).max(1e-9));
        t.row(vec![
            profile.name.to_owned(),
            format!("{:5.1}", 100.0 * speedup),
            format!("{:5.1}", 100.0 * speedup_nm),
            format!("{:5.1}", 100.0 * contribution),
            format!("{:5.1}", 100.0 * m.interface.merge_ratio()),
            format!("{:6.1}", 100.0 * m.energy.dynamic / b.energy.dynamic),
        ]);
    }
    t.separator();
    t.row(vec![
        "geo.mean contribution".into(),
        String::new(),
        String::new(),
        format!("{:5.1}", 100.0 * (geo_mean(&contributions) - 1.0)),
    ]);
    println!("{}", t.render());
    println!(
        "Paper reference: merging contributes ~21% of the overall speedup;\n\
         gap 56%, equake 66%, mgrid <2%. Without data sharing, mcf's dynamic\n\
         energy flips from -51% to +5%."
    );
}
