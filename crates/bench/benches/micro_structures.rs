//! Criterion micro-benchmarks of the simulator's hot structures — these
//! measure *simulator throughput* (not paper data): way-table updates, WDU
//! lookups, cache-bank fills, input-buffer selection and a short
//! end-to-end simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use malec_core::input_buffer::InputBuffer;
use malec_core::waytable::WaySlots;
use malec_core::wdu::Wdu;
use malec_core::Simulator;
use malec_mem::bank::CacheBank;
use malec_trace::{all_benchmarks, WorkloadGenerator};
use malec_types::addr::{LineAddr, VAddr, VPageId, WayId};
use malec_types::op::{MemOp, OpId};
use malec_types::SimConfig;

fn bench_way_slots(c: &mut Criterion) {
    c.bench_function("way_slots_set_get", |b| {
        let mut slots = WaySlots::new(64, 4, 4);
        let mut i = 0u8;
        b.iter(|| {
            i = (i + 1) % 64;
            slots.set(i, WayId(i % 4));
            black_box(slots.get(i))
        });
    });
}

fn bench_wdu(c: &mut Criterion) {
    c.bench_function("wdu16_lookup_record", |b| {
        let mut wdu = Wdu::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            let line = LineAddr::new(i);
            if wdu.lookup(line).is_none() {
                wdu.record(line, WayId((i % 4) as u8));
            }
            black_box(wdu.hits())
        });
    });
}

fn bench_cache_bank(c: &mut Criterion) {
    c.bench_function("cache_bank_fill_lookup", |b| {
        let mut bank = CacheBank::new(32, 4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let set = (i % 32) as u32;
            bank.fill(set, i % 512, None);
            black_box(bank.lookup(set, i % 512))
        });
    });
}

fn bench_input_buffer(c: &mut Criterion) {
    c.bench_function("input_buffer_select", |b| {
        let mut ib = InputBuffer::new(7);
        for k in 0..6u64 {
            let addr = 0x1000 + (k % 3) * 0x1000 + k * 8;
            ib.push_load(
                MemOp::load(OpId(k), VAddr::new(addr), 4),
                VPageId::new(addr >> 12),
                k,
            );
        }
        b.iter(|| black_box(ib.select()));
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("workload_generation_1k", |b| {
        let profile = all_benchmarks().remove(0);
        b.iter(|| {
            let n = WorkloadGenerator::new(&profile, 1)
                .take(1000)
                .filter(|i| i.is_mem())
                .count();
            black_box(n)
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_5k_insts");
    group.sample_size(10);
    for cfg in [SimConfig::base1ldst(), SimConfig::malec()] {
        let label = cfg.label();
        group.bench_function(&label, |b| {
            let profile = all_benchmarks().remove(0);
            let sim = Simulator::new(cfg.clone());
            b.iter(|| black_box(sim.run(&profile, 5_000, 1).core.cycles));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_way_slots,
    bench_wdu,
    bench_cache_bank,
    bench_input_buffer,
    bench_trace_generation,
    bench_end_to_end
);
criterion_main!(benches);
