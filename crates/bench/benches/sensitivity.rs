//! **Sec. VI-D sensitivity analysis** — three checks the paper calls out:
//!
//! 1. the 3-of-4-way fill restriction causes "no measurable increase of the
//!    L1 miss rate" (Sec. V);
//! 2. way prediction degrades for streaming/low-locality workloads
//!    (mcf, art) — their coverage and energy benefits collapse;
//! 3. MALEC introduces load-latency variability by holding Input Buffer
//!    elements (quantified as mean held cycles per load).

use malec_core::report::TextTable;
use malec_trace::all_benchmarks;
use malec_types::SimConfig;

fn main() {
    let insts = malec_bench::insts_budget();

    // --- 1. Fill restriction vs free fills: L1 miss rates.
    println!("\n== Sensitivity 1: 3-of-4-way fill restriction vs free fills ==\n");
    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "miss rate restricted [%]".into(),
        "miss rate free [%]".into(),
        "delta [pp]".into(),
    ]);
    let mut max_delta: f64 = 0.0;
    for profile in all_benchmarks() {
        let restricted = malec_bench::run_one(&SimConfig::malec(), &profile, insts);
        let mut free_cfg = SimConfig::malec();
        free_cfg.restrict_fill_ways = false;
        let free = malec_bench::run_one(&free_cfg, &profile, insts);
        let delta = 100.0 * (restricted.l1_miss_rate - free.l1_miss_rate);
        max_delta = max_delta.max(delta.abs());
        t.row(vec![
            profile.name.to_owned(),
            format!("{:5.2}", 100.0 * restricted.l1_miss_rate),
            format!("{:5.2}", 100.0 * free.l1_miss_rate),
            format!("{delta:+5.2}"),
        ]);
    }
    println!("{}", t.render());
    println!("max |delta| = {max_delta:.2} pp — the paper reports no measurable increase.\n");

    // --- 2. Streaming workloads hurt way prediction.
    println!("== Sensitivity 2: way prediction on streaming/low-locality workloads ==\n");
    let mut s = TextTable::new(vec![
        "benchmark".into(),
        "coverage [%]".into(),
        "L1 miss rate [%]".into(),
        "MALEC dyn energy vs Base1 [%]".into(),
    ]);
    for name in ["mcf", "art", "gzip", "djpeg"] {
        let profile = all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .expect("known benchmark");
        let m = malec_bench::run_one(&SimConfig::malec(), &profile, insts);
        let b = malec_bench::run_one(&SimConfig::base1ldst(), &profile, insts);
        s.row(vec![
            name.to_owned(),
            format!("{:5.1}", 100.0 * m.interface.coverage()),
            format!("{:5.1}", 100.0 * m.l1_miss_rate),
            format!("{:6.1}", 100.0 * m.energy.dynamic / b.energy.dynamic),
        ]);
    }
    println!("{}", s.render());

    // --- 3. Latency variability from holding Input Buffer entries.
    println!("== Sensitivity 3: load-latency variability (held Input Buffer cycles) ==\n");
    let mut h = TextTable::new(vec![
        "benchmark".into(),
        "held load-cycles per serviced load".into(),
    ]);
    for name in ["gzip", "mcf", "swim", "djpeg"] {
        let profile = all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .expect("known benchmark");
        let m = malec_bench::run_one(&SimConfig::malec(), &profile, insts);
        let per_load =
            m.interface.held_load_cycles as f64 / m.interface.loads_serviced.max(1) as f64;
        h.row(vec![name.to_owned(), format!("{per_load:5.2}")]);
    }
    println!("{}", h.render());
    println!(
        "Paper reference: latency variability exists but most latency is masked\n\
         behind address translation; exception handling only covers IB/AU/SB."
    );

    // --- 4. Scalability: the Fig. 2a wide parameterization (4 ld + 2 st).
    println!("\n== Sensitivity 4: wide MALEC (4 ld + 2 st AGUs, Fig. 2a) ==\n");
    let mut w = TextTable::new(vec![
        "benchmark".into(),
        "MALEC (1ld+2ldst) [%]".into(),
        "MALEC wide (4ld+2st) [%]".into(),
    ]);
    for name in ["gzip", "gap", "swim", "djpeg", "mpeg2dec"] {
        let profile = all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .expect("known benchmark");
        let base = malec_bench::run_one(&SimConfig::base1ldst(), &profile, insts);
        let narrow = malec_bench::run_one(&SimConfig::malec(), &profile, insts);
        let wide = malec_bench::run_one(&SimConfig::malec_wide(), &profile, insts);
        w.row(vec![
            name.to_owned(),
            format!(
                "{:5.1}",
                100.0 * narrow.core.cycles as f64 / base.core.cycles as f64
            ),
            format!(
                "{:5.1}",
                100.0 * wide.core.cycles as f64 / base.core.cycles as f64
            ),
        ]);
    }
    println!("{}", w.render());
    println!(
        "MALEC scales by widening address computation, not by adding ports:\n\
         the uTLB/TLB and cache banks stay single-ported in both columns."
    );
}
