//! **Fig. 4a** — Execution times normalized to `Base1ldst` for all 38
//! benchmarks under the five analyzed configurations.
//!
//! Paper headlines: MALEC improves performance by ≈ 14 % over `Base1ldst`
//! (only ≈ 1 % less than the physically multi-ported `Base2ld1st` at
//! ≈ 15 %); the 3-cycle-L1 MALEC variant drops to ≈ 10 % and the
//! 1-cycle-L1 `Base2ld1st` rises to ≈ 20 %; suite-level improvements are
//! ≈ 14 / 12 / 21 % for SPEC-INT / SPEC-FP / MediaBench2.

use malec_core::report::{normalized_percent, TextTable};
use malec_trace::all_benchmarks;
use malec_types::SimConfig;

fn main() {
    let configs = SimConfig::figure4_set();
    let insts = malec_bench::insts_budget();
    let matrix = malec_bench::run_matrix(&configs, insts);
    let benchmarks = all_benchmarks();

    println!("\n== Fig. 4a: normalized execution time [%] (lower is better) ==\n");
    let mut t = TextTable::new(
        std::iter::once("benchmark".to_owned())
            .chain(configs.iter().map(SimConfig::label))
            .collect(),
    );
    let mut series: Vec<Vec<(malec_trace::Suite, f64)>> = vec![Vec::new(); configs.len()];
    let mut last_suite = None;
    for (profile, runs) in benchmarks.iter().zip(&matrix) {
        let base = runs[0].core.cycles as f64;
        if last_suite != Some(profile.suite) {
            if last_suite.is_some() {
                t.separator();
            }
            last_suite = Some(profile.suite);
        }
        let mut row = vec![profile.name.to_owned()];
        for (ci, run) in runs.iter().enumerate() {
            let pct = normalized_percent(run.core.cycles as f64, base);
            series[ci].push((profile.suite, pct));
            row.push(format!("{pct:6.1}"));
        }
        t.row(row);
    }
    t.separator();
    for gi in 0..4 {
        let mut row = Vec::new();
        for (ci, s) in series.iter().enumerate() {
            let means = malec_bench::suite_geo_means(s);
            if ci == 0 {
                row.push(means[gi].0.clone());
            }
            row.push(format!("{:6.1}", means[gi].1));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Paper reference (overall): Base1ldst 100 | Base2ld1st_1cycleL1 ~83 | \
         Base2ld1st ~87 | MALEC ~88 | MALEC_3cycleL1 ~91."
    );
}
