//! **Sec. VI-C** — Page-Based Way Determination vs the (validity-extended)
//! Way Determination Unit.
//!
//! Paper headlines: the way tables cover 94 % of cache accesses (75 %
//! without the last-entry feedback update); substituting 8/16/32-entry WDUs
//! yields 68/76/78 % coverage and 4/5/8 % higher energy consumption.

use malec_core::report::{geo_mean, TextTable};
use malec_trace::all_benchmarks;
use malec_types::config::WayDetermination;
use malec_types::SimConfig;

fn main() {
    let insts = malec_bench::insts_budget();
    let schemes = [
        WayDetermination::WayTables,
        WayDetermination::WayTablesNoFeedback,
        WayDetermination::Wdu(8),
        WayDetermination::Wdu(16),
        WayDetermination::Wdu(32),
    ];

    println!("\n== Sec. VI-C: way-determination coverage and energy ==\n");
    let mut t = TextTable::new(
        std::iter::once("benchmark".to_owned())
            .chain(schemes.iter().map(|s| format!("{} cov[%]", s.label())))
            .chain(schemes.iter().map(|s| format!("{} E[%]", s.label())))
            .collect(),
    );
    let mut coverages: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut energies: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for profile in all_benchmarks() {
        let runs: Vec<_> = schemes
            .iter()
            .map(|&wd| {
                malec_bench::run_one(
                    &SimConfig::malec().with_way_determination(wd),
                    &profile,
                    insts,
                )
            })
            .collect();
        let base_energy = runs[0].total_energy();
        let mut row = vec![profile.name.to_owned()];
        for (i, run) in runs.iter().enumerate() {
            coverages[i].push(run.interface.coverage());
            row.push(format!("{:5.1}", 100.0 * run.interface.coverage()));
        }
        for (i, run) in runs.iter().enumerate() {
            let e = 100.0 * run.total_energy() / base_energy;
            energies[i].push(e);
            row.push(format!("{e:6.1}"));
        }
        t.row(row);
    }
    t.separator();
    let mut mean_row = vec!["mean".to_owned()];
    for c in &coverages {
        mean_row.push(format!(
            "{:5.1}",
            100.0 * c.iter().sum::<f64>() / c.len() as f64
        ));
    }
    for e in &energies {
        mean_row.push(format!("{:6.1}", geo_mean(e)));
    }
    t.row(mean_row);
    println!("{}", t.render());
    println!(
        "Paper reference: WT coverage 94% (75% without the feedback update);\n\
         WDU8/16/32 coverage 68/76/78% and +4/5/8% energy vs the way tables."
    );
}
