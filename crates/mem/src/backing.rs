//! L2 + DRAM backing store with flat latencies (Table II: 1 MiB 16-way L2 at
//! 12 cycles, DRAM at 54 cycles).

use malec_types::addr::LineAddr;
use malec_types::geometry::CacheGeometry;

use crate::bank::CacheBank;

/// Where a backing access was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackingOutcome {
    /// Hit in the L2; latency is the L2 hit latency.
    L2Hit,
    /// Missed the L2 and went to DRAM; latency is L2 + DRAM.
    DramFill,
}

/// The memory system behind the L1: an inclusive L2 backed by flat-latency
/// DRAM.
///
/// # Example
///
/// ```
/// use malec_mem::backing::{BackingMemory, BackingOutcome};
/// use malec_types::addr::LineAddr;
/// use malec_types::geometry::CacheGeometry;
///
/// let mut mem = BackingMemory::new(CacheGeometry::paper_l2(), 12, 54);
/// let line = LineAddr::new(0x99);
/// let (first, lat1) = mem.fetch(line);
/// assert_eq!(first, BackingOutcome::DramFill);
/// assert_eq!(lat1, 12 + 54);
/// let (second, lat2) = mem.fetch(line);
/// assert_eq!(second, BackingOutcome::L2Hit);
/// assert_eq!(lat2, 12);
/// ```
#[derive(Clone, Debug)]
pub struct BackingMemory {
    geometry: CacheGeometry,
    l2: CacheBank,
    l2_latency: u32,
    dram_latency: u32,
    l2_hits: u64,
    l2_misses: u64,
}

impl BackingMemory {
    /// Creates the backing system.
    pub fn new(l2_geometry: CacheGeometry, l2_latency: u32, dram_latency: u32) -> Self {
        Self {
            geometry: l2_geometry,
            l2: CacheBank::new(l2_geometry.total_sets(), l2_geometry.ways()),
            l2_latency,
            dram_latency,
            l2_hits: 0,
            l2_misses: 0,
        }
    }

    fn set_and_tag(&self, line: LineAddr) -> (u32, u64) {
        let sets = u64::from(self.geometry.total_sets());
        ((line.raw() % sets) as u32, line.raw() / sets)
    }

    /// Fetches a line on behalf of an L1 miss, returning where it was found
    /// and the additional latency beyond the L1.
    ///
    /// A DRAM fill installs the line into the L2.
    pub fn fetch(&mut self, line: LineAddr) -> (BackingOutcome, u32) {
        let (set, tag) = self.set_and_tag(line);
        if self.l2.lookup(set, tag).is_some() {
            self.l2_hits += 1;
            (BackingOutcome::L2Hit, self.l2_latency)
        } else {
            self.l2_misses += 1;
            self.l2.fill(set, tag, None);
            (
                BackingOutcome::DramFill,
                self.l2_latency + self.dram_latency,
            )
        }
    }

    /// Accepts a line evicted from the L1 (inclusive hierarchy: make sure it
    /// is present in the L2 so a re-fetch is an L2 hit).
    pub fn accept_writeback(&mut self, line: LineAddr) {
        let (set, tag) = self.set_and_tag(line);
        self.l2.fill(set, tag, None);
    }

    /// L2 hit count.
    pub fn l2_hits(&self) -> u64 {
        self.l2_hits
    }

    /// L2 miss count.
    pub fn l2_misses(&self) -> u64 {
        self.l2_misses
    }

    /// L2 miss rate over backing fetches (0 if none).
    pub fn l2_miss_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> BackingMemory {
        BackingMemory::new(CacheGeometry::paper_l2(), 12, 54)
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits_l2() {
        let mut m = mem();
        let line = LineAddr::new(42);
        assert_eq!(m.fetch(line), (BackingOutcome::DramFill, 66));
        assert_eq!(m.fetch(line), (BackingOutcome::L2Hit, 12));
        assert_eq!(m.l2_hits(), 1);
        assert_eq!(m.l2_misses(), 1);
    }

    #[test]
    fn writeback_installs_into_l2() {
        let mut m = mem();
        let line = LineAddr::new(7);
        m.accept_writeback(line);
        assert_eq!(m.fetch(line), (BackingOutcome::L2Hit, 12));
    }

    #[test]
    fn capacity_misses_recur_for_giant_footprints() {
        let mut m = mem();
        let lines = 2 * 1024 * 1024 / 64; // 2 MiB footprint vs 1 MiB L2
        for i in 0..lines {
            m.fetch(LineAddr::new(i));
        }
        let misses_before = m.l2_misses();
        for i in 0..lines {
            m.fetch(LineAddr::new(i));
        }
        assert!(
            m.l2_misses() > misses_before,
            "a 2x-capacity sweep must keep missing"
        );
    }

    #[test]
    fn miss_rate_reporting() {
        let mut m = mem();
        assert_eq!(m.l2_miss_rate(), 0.0);
        m.fetch(LineAddr::new(1));
        m.fetch(LineAddr::new(1));
        assert!((m.l2_miss_rate() - 0.5).abs() < 1e-12);
    }
}
