//! The 4-bank L1 wrapper.
//!
//! Routes physical lines to banks via the low line-address bits, tracks
//! hits/misses/fills per bank, and reports fill/eviction events so the way
//! tables can maintain their validity bits ("validity bits are set/reset on
//! cache line fills/evictions", Sec. V).

use malec_types::addr::{BankId, LineAddr, WayId};
use malec_types::geometry::CacheGeometry;

use crate::bank::CacheBank;

/// A fill (and possible eviction) that occurred in the L1; consumed by the
/// way tables to maintain validity bits via reverse TLB lookups.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L1FillEvent {
    /// The line that was installed.
    pub filled: LineAddr,
    /// The way it was installed into.
    pub way: WayId,
    /// The line that was evicted to make room, if any.
    pub evicted: Option<LineAddr>,
}

/// The banked, physically indexed, physically tagged L1 data cache.
///
/// # Example
///
/// ```
/// use malec_mem::l1::BankedL1;
/// use malec_types::addr::LineAddr;
/// use malec_types::geometry::CacheGeometry;
///
/// let mut l1 = BankedL1::new(CacheGeometry::paper_l1());
/// let line = LineAddr::new(0x40);
/// assert!(l1.lookup(line).is_none());
/// l1.fill(line, None);
/// assert!(l1.lookup(line).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct BankedL1 {
    geometry: CacheGeometry,
    banks: Vec<CacheBank>,
    hits: u64,
    misses: u64,
}

impl BankedL1 {
    /// Creates an empty L1 with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let banks = (0..geometry.banks())
            .map(|_| CacheBank::new(geometry.sets_per_bank(), geometry.ways()))
            .collect();
        Self {
            geometry,
            banks,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Bank servicing `line`.
    pub fn bank_of(&self, line: LineAddr) -> BankId {
        self.geometry.bank_of_line(line)
    }

    /// Looks up a physical line, updating LRU and hit/miss statistics.
    pub fn lookup(&mut self, line: LineAddr) -> Option<WayId> {
        let bank = self.geometry.bank_of_line(line);
        let set = self.geometry.set_of_line(line).0;
        let tag = self.geometry.tag_of_line(line);
        let res = self.banks[bank.0 as usize].lookup(set, tag);
        if res.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        res
    }

    /// Checks residency without touching LRU or statistics.
    pub fn probe(&self, line: LineAddr) -> Option<WayId> {
        let bank = self.geometry.bank_of_line(line);
        let set = self.geometry.set_of_line(line).0;
        let tag = self.geometry.tag_of_line(line);
        self.banks[bank.0 as usize].probe(set, tag)
    }

    /// Installs `line`, optionally steering the allocation away from
    /// `exclude_way` (the WT fill restriction), and reports what happened.
    pub fn fill(&mut self, line: LineAddr, exclude_way: Option<WayId>) -> L1FillEvent {
        let bank = self.geometry.bank_of_line(line);
        let set = self.geometry.set_of_line(line).0;
        let tag = self.geometry.tag_of_line(line);
        let outcome = self.banks[bank.0 as usize].fill(set, tag, exclude_way);
        let evicted = outcome.evicted_tag.map(|etag| {
            // Rebuild the evicted line address from (tag, set, bank).
            let set_bits = self.geometry.sets_per_bank().trailing_zeros();
            let bank_bits = self.geometry.banks().trailing_zeros();
            LineAddr::new(
                (etag << (set_bits + bank_bits))
                    | (u64::from(set) << bank_bits)
                    | u64::from(bank.0),
            )
        });
        L1FillEvent {
            filled: line,
            way: outcome.way,
            evicted,
        }
    }

    /// Total lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all lookups (0 if no lookups yet).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.banks.iter().map(CacheBank::occupancy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn l1() -> BankedL1 {
        BankedL1::new(CacheGeometry::paper_l1())
    }

    #[test]
    fn adjacent_lines_hit_different_banks() {
        let l1 = l1();
        let b: Vec<u8> = (0..4).map(|i| l1.bank_of(LineAddr::new(i)).0).collect();
        assert_eq!(b, [0, 1, 2, 3]);
    }

    #[test]
    fn fill_then_hit_counts_stats() {
        let mut l1 = l1();
        let line = LineAddr::new(0x1234);
        assert!(l1.lookup(line).is_none());
        l1.fill(line, None);
        assert!(l1.lookup(line).is_some());
        assert_eq!(l1.hits(), 1);
        assert_eq!(l1.misses(), 1);
        assert!((l1.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_reconstructs_line_address() {
        let mut l1 = l1();
        // 5 lines mapping to the same (bank, set): stride = banks * sets = 128 lines.
        let base = 0x40u64;
        let lines: Vec<LineAddr> = (0..5).map(|i| LineAddr::new(base + i * 128)).collect();
        let mut evicted = None;
        for &line in &lines {
            let ev = l1.fill(line, None);
            if ev.evicted.is_some() {
                evicted = ev.evicted;
            }
        }
        let evicted = evicted.expect("5 fills into a 4-way set must evict");
        assert!(lines.contains(&evicted));
        assert!(l1.probe(evicted).is_none());
    }

    #[test]
    fn occupancy_saturates_at_capacity() {
        let mut l1 = l1();
        let capacity = (32 * 1024 / 64) as usize;
        for i in 0..(capacity as u64 * 3) {
            l1.fill(LineAddr::new(i), None);
        }
        assert_eq!(l1.occupancy(), capacity);
    }

    #[test]
    fn exclude_way_respected_under_pressure() {
        let mut l1 = l1();
        // All fills to one set, always excluding way 1.
        for i in 0..16u64 {
            let ev = l1.fill(LineAddr::new(i * 128), Some(WayId(1)));
            assert_ne!(ev.way, WayId(1));
        }
    }

    proptest! {
        #[test]
        fn prop_probe_after_fill(line in 0u64..(1 << 26)) {
            let mut l1 = l1();
            let ev = l1.fill(LineAddr::new(line), None);
            prop_assert_eq!(l1.probe(LineAddr::new(line)), Some(ev.way));
        }

        #[test]
        fn prop_eviction_only_from_same_set(lines in proptest::collection::vec(0u64..(1 << 20), 1..64)) {
            let mut l1 = l1();
            let g = CacheGeometry::paper_l1();
            for raw in lines {
                let line = LineAddr::new(raw);
                let ev = l1.fill(line, None);
                if let Some(evicted) = ev.evicted {
                    prop_assert_eq!(g.bank_of_line(evicted), g.bank_of_line(line));
                    prop_assert_eq!(g.set_of_line(evicted), g.set_of_line(line));
                }
            }
        }
    }
}
