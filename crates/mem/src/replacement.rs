//! Replacement policies.
//!
//! Three policies are needed by the paper's configuration: LRU for the cache
//! banks, seeded random for the TLB, and second chance for the uTLB ("we
//! chose the second chance algorithm as the uTLB replacement policy (random
//! replacement for the TLB)", Sec. V — second chance minimizes full-entry
//! uWT→WT synchronization transfers).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// True-LRU tracker over `n` slots using recency timestamps.
///
/// # Example
///
/// ```
/// use malec_mem::replacement::Lru;
///
/// let mut lru = Lru::new(4);
/// for i in 0..4 {
///     lru.touch(i);
/// }
/// lru.touch(0);
/// assert_eq!(lru.victim(), 1); // oldest untouched slot
/// ```
#[derive(Clone, Debug)]
pub struct Lru {
    stamp: u64,
    last_use: Vec<u64>,
}

impl Lru {
    /// Creates a tracker for `n` slots, all equally old.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "LRU needs at least one slot");
        Self {
            stamp: 0,
            last_use: vec![0; n],
        }
    }

    /// Marks `slot` as most recently used.
    pub fn touch(&mut self, slot: usize) {
        self.stamp += 1;
        self.last_use[slot] = self.stamp;
    }

    /// Returns the least recently used slot (ties break toward the lowest
    /// index, so never-touched slots are preferred in order).
    pub fn victim(&self) -> usize {
        self.last_use
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .map(|(i, _)| i)
            .expect("LRU has at least one slot")
    }

    /// Returns the least recently used slot among those enabled in `mask`
    /// (bit *i* set ⇒ slot *i* allowed), or `None` if the mask is empty.
    pub fn victim_masked(&self, mask: u64) -> Option<usize> {
        self.last_use
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .min_by_key(|&(i, &t)| (t, i))
            .map(|(i, _)| i)
    }

    /// Number of slots tracked.
    pub fn len(&self) -> usize {
        self.last_use.len()
    }

    /// Whether the tracker has zero slots (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.last_use.is_empty()
    }
}

/// Seeded uniform-random victim selection (deterministic across runs).
#[derive(Clone, Debug)]
pub struct SeededRandom {
    rng: SmallRng,
}

impl SeededRandom {
    /// Creates a policy with a fixed seed; identical seeds give identical
    /// victim sequences.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Picks a victim among `n` slots.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn victim(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick a victim among zero slots");
        self.rng.gen_range(0..n)
    }
}

/// Second-chance (clock) replacement over `n` slots.
///
/// Each use sets the slot's reference bit; the victim scan clears reference
/// bits until it finds a cleared one. Compared to random replacement this
/// keeps recently-serviced pages resident, which is exactly why the paper
/// picks it for the uTLB: fewer uWT evictions means fewer full-entry
/// uWT → WT synchronization transfers.
#[derive(Clone, Debug)]
pub struct SecondChance {
    referenced: Vec<bool>,
    hand: usize,
}

impl SecondChance {
    /// Creates a tracker for `n` slots.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "second chance needs at least one slot");
        Self {
            referenced: vec![false; n],
            hand: 0,
        }
    }

    /// Marks `slot` as referenced (gives it a second chance).
    pub fn touch(&mut self, slot: usize) {
        self.referenced[slot] = true;
    }

    /// Selects and returns a victim, advancing the clock hand and clearing
    /// reference bits along the way.
    pub fn victim(&mut self) -> usize {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.referenced.len();
            if self.referenced[i] {
                self.referenced[i] = false;
            } else {
                return i;
            }
        }
    }

    /// Number of slots tracked.
    pub fn len(&self) -> usize {
        self.referenced.len()
    }

    /// Whether the tracker has zero slots (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.referenced.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lru_evicts_oldest() {
        let mut lru = Lru::new(3);
        lru.touch(0);
        lru.touch(1);
        lru.touch(2);
        assert_eq!(lru.victim(), 0);
        lru.touch(0);
        assert_eq!(lru.victim(), 1);
    }

    #[test]
    fn lru_prefers_untouched_slots() {
        let mut lru = Lru::new(4);
        lru.touch(0);
        assert_eq!(lru.victim(), 1);
    }

    #[test]
    fn lru_masked_respects_mask() {
        let mut lru = Lru::new(4);
        lru.touch(1);
        lru.touch(2);
        lru.touch(3);
        lru.touch(0); // 1 is now LRU overall
        assert_eq!(lru.victim(), 1);
        // Exclude way 1: the victim must come from {0, 2, 3}.
        assert_eq!(lru.victim_masked(0b1101), Some(2));
        assert_eq!(lru.victim_masked(0), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = SeededRandom::new(42);
        let mut b = SeededRandom::new(42);
        let seq_a: Vec<usize> = (0..32).map(|_| a.victim(64)).collect();
        let seq_b: Vec<usize> = (0..32).map(|_| b.victim(64)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().all(|&v| v < 64));
    }

    #[test]
    fn second_chance_spares_referenced() {
        let mut sc = SecondChance::new(3);
        sc.touch(0);
        // Slot 0 is referenced: hand clears it and moves on to slot 1.
        assert_eq!(sc.victim(), 1);
        // Slot 0's bit was consumed; next scan from slot 2.
        assert_eq!(sc.victim(), 2);
        assert_eq!(sc.victim(), 0);
    }

    #[test]
    fn second_chance_all_referenced_degrades_to_fifo() {
        let mut sc = SecondChance::new(4);
        for i in 0..4 {
            sc.touch(i);
        }
        assert_eq!(sc.victim(), 0);
        assert_eq!(sc.victim(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn lru_zero_slots_panics() {
        let _ = Lru::new(0);
    }

    proptest! {
        #[test]
        fn prop_lru_victim_in_range(touches in proptest::collection::vec(0usize..8, 0..64)) {
            let mut lru = Lru::new(8);
            for t in touches {
                lru.touch(t);
            }
            prop_assert!(lru.victim() < 8);
        }

        #[test]
        fn prop_second_chance_terminates(touches in proptest::collection::vec(0usize..8, 0..64)) {
            let mut sc = SecondChance::new(8);
            for t in touches {
                sc.touch(t);
            }
            // Victim always terminates and is in range even if all bits set.
            prop_assert!(sc.victim() < 8);
        }

        #[test]
        fn prop_lru_most_recent_never_victim(n in 2usize..8, seq in proptest::collection::vec(0usize..8, 1..32)) {
            let mut lru = Lru::new(n);
            let mut last = None;
            for s in seq {
                let slot = s % n;
                lru.touch(slot);
                last = Some(slot);
            }
            prop_assert_ne!(lru.victim(), last.unwrap());
        }
    }
}
