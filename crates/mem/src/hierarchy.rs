//! Glue: a single call resolving "where is this physical line, what is the
//! latency beyond the L1, and which fills/evictions occurred".
//!
//! The L1 *interfaces* in `malec-core` own the L1 timing (hit latency, bank
//! arbitration, way determination); this type owns residency: L1 lookup, and
//! on a miss the L2/DRAM fetch plus the L1 fill and its eviction, reported
//! as events for way-table validity maintenance.

use malec_types::addr::{LineAddr, WayId};
use malec_types::config::SimConfig;

use crate::backing::{BackingMemory, BackingOutcome};
use crate::l1::{BankedL1, L1FillEvent};

/// Outcome of resolving one line through the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Whether the line was already resident in the L1.
    pub l1_hit: bool,
    /// The way the line occupies (after fill, on a miss).
    pub way: WayId,
    /// Extra cycles beyond the L1 hit latency (0 on an L1 hit).
    pub extra_latency: u32,
    /// Fill/eviction event, present only on an L1 miss.
    pub fill: Option<L1FillEvent>,
    /// Where the backing access was satisfied (miss only).
    pub backing: Option<BackingOutcome>,
}

/// The L1 + L2 + DRAM residency model.
///
/// # Example
///
/// ```
/// use malec_mem::hierarchy::MemoryHierarchy;
/// use malec_types::addr::LineAddr;
/// use malec_types::SimConfig;
///
/// let mut mem = MemoryHierarchy::for_config(&SimConfig::malec());
/// let line = LineAddr::new(0x80);
/// let miss = mem.resolve_line(line, None);
/// assert!(!miss.l1_hit);
/// let hit = mem.resolve_line(line, None);
/// assert!(hit.l1_hit);
/// assert_eq!(hit.extra_latency, 0);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1: BankedL1,
    backing: BackingMemory,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for a configuration.
    pub fn for_config(config: &SimConfig) -> Self {
        Self {
            l1: BankedL1::new(config.l1),
            backing: BackingMemory::new(config.l2, config.l2_latency, config.dram_latency),
        }
    }

    /// Resolves `line`: L1 lookup, then (on a miss) L2/DRAM fetch, L1 fill
    /// and writeback of any evicted line. `exclude_way` steers fills away
    /// from a way (the WT fill restriction); pass `None` normally.
    pub fn resolve_line(&mut self, line: LineAddr, exclude_way: Option<WayId>) -> AccessOutcome {
        if let Some(way) = self.l1.lookup(line) {
            return AccessOutcome {
                l1_hit: true,
                way,
                extra_latency: 0,
                fill: None,
                backing: None,
            };
        }
        let (outcome, latency) = self.backing.fetch(line);
        let fill = self.l1.fill(line, exclude_way);
        if let Some(evicted) = fill.evicted {
            self.backing.accept_writeback(evicted);
        }
        AccessOutcome {
            l1_hit: false,
            way: fill.way,
            extra_latency: latency,
            fill: Some(fill),
            backing: Some(outcome),
        }
    }

    /// Residency probe without any state change.
    pub fn probe_l1(&self, line: LineAddr) -> Option<WayId> {
        self.l1.probe(line)
    }

    /// The L1 (for statistics).
    pub fn l1(&self) -> &BankedL1 {
        &self.l1
    }

    /// The backing memory (for statistics).
    pub fn backing(&self) -> &BackingMemory {
        &self.backing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_types::SimConfig;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::for_config(&SimConfig::malec())
    }

    #[test]
    fn cold_miss_pays_dram_then_l2_then_l1() {
        let mut m = hierarchy();
        let line = LineAddr::new(5);
        let first = m.resolve_line(line, None);
        assert!(!first.l1_hit);
        assert_eq!(first.extra_latency, 12 + 54);
        assert_eq!(first.backing, Some(BackingOutcome::DramFill));
        assert!(first.fill.is_some());

        let second = m.resolve_line(line, None);
        assert!(second.l1_hit);
        assert_eq!(second.extra_latency, 0);
        assert_eq!(second.way, first.way);
    }

    #[test]
    fn conflict_eviction_is_reported_and_refetches_from_l2() {
        let mut m = hierarchy();
        // 5 lines to one set (stride 128 lines).
        let lines: Vec<LineAddr> = (0..5).map(|i| LineAddr::new(1 + i * 128)).collect();
        let mut evicted = None;
        for &l in &lines {
            let out = m.resolve_line(l, None);
            if let Some(fill) = out.fill {
                if fill.evicted.is_some() {
                    evicted = fill.evicted;
                }
            }
        }
        let evicted = evicted.expect("eviction expected");
        // Re-access of the evicted line: L1 miss but L2 hit (writeback).
        let out = m.resolve_line(evicted, None);
        assert!(!out.l1_hit);
        assert_eq!(out.backing, Some(BackingOutcome::L2Hit));
        assert_eq!(out.extra_latency, 12);
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut m = hierarchy();
        let line = LineAddr::new(9);
        assert!(m.probe_l1(line).is_none());
        assert_eq!(m.l1().hits() + m.l1().misses(), 0);
        m.resolve_line(line, None);
        assert!(m.probe_l1(line).is_some());
    }

    #[test]
    fn exclude_way_is_honoured_on_fill() {
        let mut m = hierarchy();
        for i in 0..12u64 {
            let out = m.resolve_line(LineAddr::new(2 + i * 128), Some(WayId(0)));
            if !out.l1_hit {
                assert_ne!(out.way, WayId(0));
            }
        }
    }
}
