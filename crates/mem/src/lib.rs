//! Memory-hierarchy substrate: cache banks, L2/DRAM backing, TLBs and the
//! page table.
//!
//! The paper evaluates MALEC on top of an unmodified, highly conventional
//! memory hierarchy (Table II): a 32 KiB 4-way PIPT L1 data cache split into
//! four independent single-ported banks, a 1 MiB 16-way L2 and a flat-latency
//! DRAM. This crate provides exactly that substrate, *without* any MALEC
//! logic — the interfaces in `malec-core` drive it.
//!
//! Modules:
//!
//! * [`replacement`] — LRU, seeded-random and second-chance policies
//!   (the paper uses LRU-ish banks, a random-replacement TLB and a
//!   second-chance uTLB);
//! * [`bank`] — one single-ported set-associative cache bank;
//! * [`l1`] — the 4-bank L1 wrapper with fill/eviction reporting (needed by
//!   the way tables' validity maintenance);
//! * [`backing`] — L2 + DRAM latency model;
//! * [`tlb`] — page table, TLB and micro-TLB with reverse (physical) lookup
//!   support;
//! * [`hierarchy`] — glue: one call answers "where does this line live and
//!   how long until it arrives", applying fills and evictions on the way.

pub mod backing;
pub mod bank;
pub mod hierarchy;
pub mod l1;
pub mod replacement;
pub mod tlb;

pub use backing::{BackingMemory, BackingOutcome};
pub use bank::{CacheBank, FillOutcome};
pub use hierarchy::{AccessOutcome, MemoryHierarchy};
pub use l1::{BankedL1, L1FillEvent};
pub use replacement::{Lru, SecondChance, SeededRandom};
pub use tlb::{MicroTlb, PageTable, Tlb, TlbEntry, TlbEvent};
