//! One single-ported, set-associative cache bank.
//!
//! The bank stores tags only — this is a timing/energy simulator, data
//! values are irrelevant. Fills support an optional way restriction so the
//! `restrict_fill_ways` sensitivity experiment (Sec. V: each line can encode
//! only 3 of 4 ways in its WT slot) can steer allocations away from the
//! non-encodable way.

use malec_types::addr::WayId;

use crate::replacement::Lru;

/// Result of filling a line into a set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FillOutcome {
    /// The way the line was installed into.
    pub way: WayId,
    /// Tag of the line that had to be evicted, if the way was occupied.
    pub evicted_tag: Option<u64>,
}

#[derive(Clone, Debug)]
struct CacheSet {
    tags: Vec<Option<u64>>,
    lru: Lru,
}

impl CacheSet {
    fn new(ways: usize) -> Self {
        Self {
            tags: vec![None; ways],
            lru: Lru::new(ways),
        }
    }

    fn probe(&self, tag: u64) -> Option<usize> {
        self.tags.iter().position(|&t| t == Some(tag))
    }
}

/// A single-ported set-associative cache bank with LRU replacement.
///
/// # Example
///
/// ```
/// use malec_mem::bank::CacheBank;
///
/// let mut bank = CacheBank::new(32, 4);
/// assert!(bank.lookup(0, 0xabc).is_none());
/// bank.fill(0, 0xabc, None);
/// assert!(bank.lookup(0, 0xabc).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct CacheBank {
    sets: Vec<CacheSet>,
    ways: u32,
}

impl CacheBank {
    /// Creates a bank of `sets` sets × `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "bank must have sets and ways");
        Self {
            sets: (0..sets).map(|_| CacheSet::new(ways as usize)).collect(),
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets.len() as u32
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Looks up `tag` in `set`, updating LRU state on a hit.
    pub fn lookup(&mut self, set: u32, tag: u64) -> Option<WayId> {
        let s = &mut self.sets[set as usize];
        let way = s.probe(tag)?;
        s.lru.touch(way);
        Some(WayId(way as u8))
    }

    /// Checks residency without perturbing LRU state.
    pub fn probe(&self, set: u32, tag: u64) -> Option<WayId> {
        self.sets[set as usize].probe(tag).map(|w| WayId(w as u8))
    }

    /// Installs `tag` into `set`, preferring invalid ways, else the LRU
    /// victim. If `exclude_way` is given, allocation avoids that way unless
    /// it is the only option (the WT 3-of-4-way fill restriction).
    ///
    /// If the tag is already resident the existing way is reused (refresh).
    pub fn fill(&mut self, set: u32, tag: u64, exclude_way: Option<WayId>) -> FillOutcome {
        let ways = self.ways as usize;
        let s = &mut self.sets[set as usize];

        if let Some(way) = s.probe(tag) {
            s.lru.touch(way);
            return FillOutcome {
                way: WayId(way as u8),
                evicted_tag: None,
            };
        }

        let mut mask: u64 = (1u64 << ways) - 1;
        if let Some(ex) = exclude_way {
            let without = mask & !(1u64 << ex.0);
            if without != 0 {
                mask = without;
            }
        }

        // Prefer an invalid way within the mask.
        let victim = (0..ways)
            .find(|&w| mask & (1 << w) != 0 && s.tags[w].is_none())
            .or_else(|| s.lru.victim_masked(mask))
            .expect("mask is never empty");

        let evicted_tag = s.tags[victim].take();
        s.tags[victim] = Some(tag);
        s.lru.touch(victim);
        FillOutcome {
            way: WayId(victim as u8),
            evicted_tag,
        }
    }

    /// Removes `tag` from `set` if resident, returning the way it occupied.
    pub fn invalidate(&mut self, set: u32, tag: u64) -> Option<WayId> {
        let s = &mut self.sets[set as usize];
        let way = s.probe(tag)?;
        s.tags[way] = None;
        Some(WayId(way as u8))
    }

    /// Number of valid lines currently resident in the bank.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.tags.iter().filter(|t| t.is_some()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut b = CacheBank::new(4, 2);
        assert_eq!(b.lookup(1, 7), None);
        let f = b.fill(1, 7, None);
        assert_eq!(f.evicted_tag, None);
        assert_eq!(b.lookup(1, 7), Some(f.way));
    }

    #[test]
    fn fill_prefers_invalid_ways() {
        let mut b = CacheBank::new(1, 4);
        let ways: Vec<u8> = (0..4).map(|t| b.fill(0, t, None).way.0).collect();
        assert_eq!(ways, [0, 1, 2, 3]);
        assert_eq!(b.occupancy(), 4);
    }

    #[test]
    fn lru_eviction_on_full_set() {
        let mut b = CacheBank::new(1, 2);
        b.fill(0, 10, None);
        b.fill(0, 20, None);
        b.lookup(0, 10); // 20 becomes LRU
        let f = b.fill(0, 30, None);
        assert_eq!(f.evicted_tag, Some(20));
        assert!(b.probe(0, 10).is_some());
        assert!(b.probe(0, 20).is_none());
    }

    #[test]
    fn refill_of_resident_tag_is_a_refresh() {
        let mut b = CacheBank::new(1, 2);
        let w = b.fill(0, 5, None).way;
        let again = b.fill(0, 5, None);
        assert_eq!(again.way, w);
        assert_eq!(again.evicted_tag, None);
        assert_eq!(b.occupancy(), 1);
    }

    #[test]
    fn exclude_way_steers_allocation() {
        let mut b = CacheBank::new(1, 4);
        for t in 0..8 {
            let f = b.fill(0, 100 + t, Some(WayId(2)));
            assert_ne!(f.way, WayId(2), "fill landed in the excluded way");
        }
        // Way 2 stays invalid the whole time.
        assert_eq!(b.occupancy(), 3);
    }

    #[test]
    fn exclude_way_ignored_when_only_option() {
        let mut b = CacheBank::new(1, 1);
        let f = b.fill(0, 1, Some(WayId(0)));
        assert_eq!(f.way, WayId(0));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut b = CacheBank::new(2, 2);
        let w = b.fill(1, 9, None).way;
        assert_eq!(b.invalidate(1, 9), Some(w));
        assert_eq!(b.invalidate(1, 9), None);
        assert_eq!(b.lookup(1, 9), None);
    }

    #[test]
    #[should_panic(expected = "bank must have sets and ways")]
    fn zero_geometry_panics() {
        let _ = CacheBank::new(0, 4);
    }

    proptest! {
        #[test]
        fn prop_occupancy_bounded(fills in proptest::collection::vec((0u32..8, 0u64..64), 0..256)) {
            let mut b = CacheBank::new(8, 4);
            for (set, tag) in fills {
                b.fill(set, tag, None);
            }
            prop_assert!(b.occupancy() <= 8 * 4);
        }

        #[test]
        fn prop_fill_makes_resident(set in 0u32..8, tag in 0u64..1024) {
            let mut b = CacheBank::new(8, 4);
            let f = b.fill(set, tag, None);
            prop_assert_eq!(b.probe(set, tag), Some(f.way));
        }

        #[test]
        fn prop_a_set_never_holds_duplicate_tags(
            ops in proptest::collection::vec((0u32..4, 0u64..16), 0..128)
        ) {
            let mut b = CacheBank::new(4, 4);
            for (set, tag) in &ops {
                b.fill(*set, *tag, None);
            }
            for set in 0..4u32 {
                let mut seen = std::collections::HashSet::new();
                for tag in 0..16u64 {
                    if b.probe(set, tag).is_some() {
                        prop_assert!(seen.insert(tag));
                    }
                }
            }
        }
    }
}
