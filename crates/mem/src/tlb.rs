//! Page table, TLB and micro-TLB.
//!
//! The paper's way tables are *indexed by TLB entry*: the WT has exactly as
//! many entries as the TLB, and a TLB hit returns the matching WT entry "for
//! free". Both TLBs therefore expose their slot indices, report evictions
//! (the uWT must sync to the WT, the WT entry must be invalidated), and
//! support **reverse lookups by physical page** — cache line fills and
//! evictions carry physical tags only (Sec. V).

use malec_types::addr::{PPageId, VPageId};

use crate::replacement::{SecondChance, SeededRandom};

/// A deterministic virtual→physical mapping standing in for the OS page
/// table. The mapping is a fixed bijective-ish hash, so identical traces
/// always see identical physical placements.
///
/// # Example
///
/// ```
/// use malec_mem::tlb::PageTable;
/// use malec_types::addr::VPageId;
///
/// let pt = PageTable::new(16); // 2^16 physical pages (256 MiB of 4 KiB pages)
/// let p1 = pt.translate(VPageId::new(5));
/// assert_eq!(p1, pt.translate(VPageId::new(5)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PageTable {
    ppage_bits: u32,
}

impl PageTable {
    /// Creates a page table with `2^ppage_bits` physical pages
    /// (16 bits ⇒ 256 MiB of 4 KiB pages, the paper's DRAM size).
    pub fn new(ppage_bits: u32) -> Self {
        Self { ppage_bits }
    }

    /// Translates a virtual page to its (deterministic) physical page.
    pub fn translate(self, vpage: VPageId) -> PPageId {
        // Fibonacci-hash style mix keeps consecutive virtual pages from
        // colliding in the physical space while staying deterministic.
        let mixed = vpage
            .raw()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_right(17)
            ^ vpage.raw();
        PPageId::new(mixed & ((1 << self.ppage_bits) - 1))
    }
}

impl Default for PageTable {
    /// 256 MiB of physical memory (Table II DRAM size).
    fn default() -> Self {
        Self::new(16)
    }
}

/// One TLB entry: a virtual→physical pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbEntry {
    /// Virtual page tag.
    pub vpage: VPageId,
    /// Physical page tag (also searchable — reverse lookups).
    pub ppage: PPageId,
}

/// What happened during a TLB insert.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbEvent {
    /// Slot the new translation was installed into.
    pub slot: usize,
    /// The translation that was evicted, if the slot was occupied.
    pub evicted: Option<TlbEntry>,
}

/// The main TLB: fully associative with seeded-random replacement (Sec. V).
///
/// # Example
///
/// ```
/// use malec_mem::tlb::{PageTable, Tlb};
/// use malec_types::addr::VPageId;
///
/// let pt = PageTable::default();
/// let mut tlb = Tlb::new(64, 1);
/// let v = VPageId::new(3);
/// assert!(tlb.lookup(v).is_none());
/// tlb.insert(v, pt.translate(v));
/// assert!(tlb.lookup(v).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    policy: SeededRandom,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `entries` slots and a deterministic
    /// replacement seed.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize, seed: u64) -> Self {
        assert!(entries > 0, "TLB needs entries");
        Self {
            entries: vec![None; entries],
            policy: SeededRandom::new(seed),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Looks up a virtual page; returns `(slot, entry)` on a hit.
    pub fn lookup(&mut self, vpage: VPageId) -> Option<(usize, TlbEntry)> {
        let found = self
            .entries
            .iter()
            .enumerate()
            .find_map(|(i, e)| e.filter(|e| e.vpage == vpage).map(|e| (i, e)));
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Reverse lookup by physical page (used on line fills/evictions);
    /// does not perturb statistics — it is a different tag array.
    pub fn lookup_by_ppage(&self, ppage: PPageId) -> Option<(usize, TlbEntry)> {
        self.entries
            .iter()
            .enumerate()
            .find_map(|(i, e)| e.filter(|e| e.ppage == ppage).map(|e| (i, e)))
    }

    /// Installs a translation, preferring a free slot, else evicting a
    /// random victim.
    pub fn insert(&mut self, vpage: VPageId, ppage: PPageId) -> TlbEvent {
        if let Some((slot, _)) = self
            .entries
            .iter()
            .enumerate()
            .find_map(|(i, e)| e.filter(|e| e.vpage == vpage).map(|e| (i, e)))
        {
            // Refresh of an existing translation.
            self.entries[slot] = Some(TlbEntry { vpage, ppage });
            return TlbEvent {
                slot,
                evicted: None,
            };
        }
        let slot = match self.entries.iter().position(Option::is_none) {
            Some(free) => free,
            None => self.policy.victim(self.entries.len()),
        };
        let evicted = self.entries[slot];
        self.entries[slot] = Some(TlbEntry { vpage, ppage });
        TlbEvent { slot, evicted }
    }

    /// Entry currently in `slot`.
    pub fn entry(&self, slot: usize) -> Option<TlbEntry> {
        self.entries.get(slot).copied().flatten()
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The micro-TLB: fully associative with second-chance replacement, sized at
/// 16 entries in Table II. Second chance minimizes uWT evictions and
/// therefore uWT→WT full-entry synchronization transfers (Sec. V).
#[derive(Clone, Debug)]
pub struct MicroTlb {
    entries: Vec<Option<TlbEntry>>,
    policy: SecondChance,
    hits: u64,
    misses: u64,
}

impl MicroTlb {
    /// Creates an empty micro-TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "uTLB needs entries");
        Self {
            entries: vec![None; entries],
            policy: SecondChance::new(entries),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Looks up a virtual page; a hit marks the slot referenced.
    pub fn lookup(&mut self, vpage: VPageId) -> Option<(usize, TlbEntry)> {
        let found = self
            .entries
            .iter()
            .enumerate()
            .find_map(|(i, e)| e.filter(|e| e.vpage == vpage).map(|e| (i, e)));
        if let Some((slot, _)) = found {
            self.hits += 1;
            self.policy.touch(slot);
        } else {
            self.misses += 1;
        }
        found
    }

    /// Reverse lookup by physical page.
    pub fn lookup_by_ppage(&self, ppage: PPageId) -> Option<(usize, TlbEntry)> {
        self.entries
            .iter()
            .enumerate()
            .find_map(|(i, e)| e.filter(|e| e.ppage == ppage).map(|e| (i, e)))
    }

    /// Installs a translation, preferring a free slot, else the
    /// second-chance victim. The evicted entry (if any) must be synced to
    /// the WT by the caller.
    pub fn insert(&mut self, vpage: VPageId, ppage: PPageId) -> TlbEvent {
        if let Some((slot, _)) = self
            .entries
            .iter()
            .enumerate()
            .find_map(|(i, e)| e.filter(|e| e.vpage == vpage).map(|e| (i, e)))
        {
            self.entries[slot] = Some(TlbEntry { vpage, ppage });
            self.policy.touch(slot);
            return TlbEvent {
                slot,
                evicted: None,
            };
        }
        let slot = match self.entries.iter().position(Option::is_none) {
            Some(free) => free,
            None => self.policy.victim(),
        };
        let evicted = self.entries[slot];
        self.entries[slot] = Some(TlbEntry { vpage, ppage });
        // The reference bit stays clear on insertion: only a subsequent hit
        // marks the page hot. This is what lets the clock distinguish
        // streaming pages (touched once) from re-used ones.
        TlbEvent { slot, evicted }
    }

    /// Removes the translation in `slot` (e.g. when the main TLB evicted the
    /// page), returning it.
    pub fn invalidate_slot(&mut self, slot: usize) -> Option<TlbEntry> {
        self.entries.get_mut(slot).and_then(Option::take)
    }

    /// Finds the slot holding `vpage` without statistics side effects.
    pub fn slot_of(&self, vpage: VPageId) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.map(|e| e.vpage) == Some(vpage))
    }

    /// Entry currently in `slot`.
    pub fn entry(&self, slot: usize) -> Option<TlbEntry> {
        self.entries.get(slot).copied().flatten()
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn page_table_is_deterministic_and_in_range() {
        let pt = PageTable::default();
        for v in 0..1000u64 {
            let p = pt.translate(VPageId::new(v));
            assert_eq!(p, pt.translate(VPageId::new(v)));
            assert!(p.raw() < (1 << 16));
        }
    }

    #[test]
    fn page_table_spreads_consecutive_pages() {
        let pt = PageTable::default();
        let mut seen = std::collections::HashSet::new();
        for v in 0..256u64 {
            seen.insert(pt.translate(VPageId::new(v)).raw());
        }
        assert!(seen.len() > 250, "near-bijective for small ranges");
    }

    #[test]
    fn tlb_miss_insert_hit() {
        let pt = PageTable::default();
        let mut tlb = Tlb::new(4, 7);
        let v = VPageId::new(9);
        assert!(tlb.lookup(v).is_none());
        let ev = tlb.insert(v, pt.translate(v));
        assert_eq!(ev.evicted, None);
        let (slot, entry) = tlb.lookup(v).expect("hit after insert");
        assert_eq!(slot, ev.slot);
        assert_eq!(entry.ppage, pt.translate(v));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn tlb_reverse_lookup() {
        let pt = PageTable::default();
        let mut tlb = Tlb::new(8, 1);
        let v = VPageId::new(33);
        let p = pt.translate(v);
        tlb.insert(v, p);
        let (_, e) = tlb.lookup_by_ppage(p).expect("reverse hit");
        assert_eq!(e.vpage, v);
        assert!(tlb.lookup_by_ppage(PPageId::new(p.raw() ^ 1)).is_none());
    }

    #[test]
    fn tlb_evicts_when_full() {
        let mut tlb = Tlb::new(2, 3);
        tlb.insert(VPageId::new(1), PPageId::new(1));
        tlb.insert(VPageId::new(2), PPageId::new(2));
        let ev = tlb.insert(VPageId::new(3), PPageId::new(3));
        assert!(ev.evicted.is_some());
        assert!(tlb.lookup(VPageId::new(3)).is_some());
    }

    #[test]
    fn tlb_refresh_does_not_evict() {
        let mut tlb = Tlb::new(2, 3);
        let first = tlb.insert(VPageId::new(1), PPageId::new(1));
        tlb.insert(VPageId::new(2), PPageId::new(2));
        let again = tlb.insert(VPageId::new(1), PPageId::new(1));
        assert_eq!(again.slot, first.slot);
        assert_eq!(again.evicted, None);
    }

    #[test]
    fn utlb_second_chance_protects_hot_entry() {
        let mut utlb = MicroTlb::new(2);
        utlb.insert(VPageId::new(1), PPageId::new(1));
        utlb.insert(VPageId::new(2), PPageId::new(2));
        // Keep page 1 hot.
        utlb.lookup(VPageId::new(1));
        let ev = utlb.insert(VPageId::new(3), PPageId::new(3));
        let evicted = ev.evicted.expect("full uTLB must evict");
        assert_eq!(evicted.vpage, VPageId::new(2), "hot page must survive");
        assert!(utlb.lookup(VPageId::new(1)).is_some());
    }

    #[test]
    fn utlb_invalidate_slot() {
        let mut utlb = MicroTlb::new(4);
        let ev = utlb.insert(VPageId::new(5), PPageId::new(50));
        let removed = utlb.invalidate_slot(ev.slot).expect("entry present");
        assert_eq!(removed.vpage, VPageId::new(5));
        assert!(utlb.lookup(VPageId::new(5)).is_none());
        assert!(utlb.invalidate_slot(ev.slot).is_none());
    }

    #[test]
    fn utlb_slot_of_matches_lookup() {
        let mut utlb = MicroTlb::new(4);
        let ev = utlb.insert(VPageId::new(8), PPageId::new(80));
        assert_eq!(utlb.slot_of(VPageId::new(8)), Some(ev.slot));
        assert_eq!(utlb.slot_of(VPageId::new(9)), None);
    }

    proptest! {
        #[test]
        fn prop_tlb_never_holds_duplicate_vpages(
            inserts in proptest::collection::vec(0u64..32, 0..128)
        ) {
            let pt = PageTable::default();
            let mut tlb = Tlb::new(8, 11);
            for v in inserts {
                let vp = VPageId::new(v);
                tlb.insert(vp, pt.translate(vp));
            }
            for v in 0..32u64 {
                let vp = VPageId::new(v);
                let count = (0..tlb.capacity())
                    .filter(|&s| tlb.entry(s).map(|e| e.vpage) == Some(vp))
                    .count();
                prop_assert!(count <= 1, "vpage {v} duplicated");
            }
        }

        #[test]
        fn prop_utlb_hit_after_insert(v in 0u64..(1 << 20)) {
            let pt = PageTable::default();
            let mut utlb = MicroTlb::new(16);
            let vp = VPageId::new(v);
            utlb.insert(vp, pt.translate(vp));
            prop_assert!(utlb.lookup(vp).is_some());
        }

        #[test]
        fn prop_utlb_capacity_respected(
            inserts in proptest::collection::vec(0u64..1024, 0..256)
        ) {
            let pt = PageTable::default();
            let mut utlb = MicroTlb::new(16);
            for v in inserts {
                let vp = VPageId::new(v);
                utlb.insert(vp, pt.translate(vp));
            }
            let occupied = (0..utlb.capacity()).filter(|&s| utlb.entry(s).is_some()).count();
            prop_assert!(occupied <= 16);
        }
    }
}
