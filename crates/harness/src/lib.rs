//! Umbrella crate hosting the repository-level `examples/` and `tests/`
//! directories (Cargo requires examples and integration tests to belong to a
//! package; the interesting code lives in the other workspace crates).
//!
//! Re-exports the main entry points so examples can use one import root.

pub use malec_core::{
    BaselineInterface, InterfaceStats, MalecInterface, RunSummary, ScenarioSource, Simulator,
};
pub use malec_trace::{
    all_benchmarks, benchmark_named, benchmarks_of, BenchmarkProfile, Scenario, Suite, TraceReader,
    TraceWriter, WorkloadGenerator,
};
pub use malec_types::{InterfaceKind, LatencyVariant, SimConfig, WayDetermination};

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_compile() {
        let cfg = crate::SimConfig::malec();
        assert_eq!(cfg.interface, crate::InterfaceKind::Malec);
    }
}
