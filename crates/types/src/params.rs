//! Table II simulation parameters as named constants.
//!
//! Keeping these in one place makes the `tab2_parameters` bench a direct
//! printout of the values actually used by the simulator, with assertions
//! that the rest of the workspace has not drifted from them.

/// Reorder-buffer entries ("168 ROB entries").
pub const ROB_ENTRIES: u16 = 168;
/// Fetch & dispatch width ("6 element fetch&dispatch-width").
pub const DISPATCH_WIDTH: u8 = 6;
/// Issue width ("8 element issue-width").
pub const ISSUE_WIDTH: u8 = 8;
/// TLB entries.
pub const TLB_ENTRIES: u16 = 64;
/// Micro-TLB entries.
pub const UTLB_ENTRIES: u16 = 16;
/// Load-queue entries.
pub const LQ_ENTRIES: u16 = 40;
/// Store-buffer entries.
pub const SB_ENTRIES: u16 = 24;
/// Merge-buffer entries.
pub const MB_ENTRIES: u16 = 4;
/// Address-space width in bits.
pub const ADDRESS_BITS: u32 = 32;
/// Page size in bytes (4 KiB).
pub const PAGE_BYTES: u64 = 4096;
/// L1 data cache capacity in bytes (32 KiB).
pub const L1_BYTES: u64 = 32 * 1024;
/// L1 hit latency in cycles (baseline variant).
pub const L1_LATENCY: u32 = 2;
/// L1 line size in bytes.
pub const LINE_BYTES: u64 = 64;
/// L1 associativity.
pub const L1_WAYS: u32 = 4;
/// L1 independent banks.
pub const L1_BANKS: u32 = 4;
/// L1 sub-block width in bits.
pub const SUB_BLOCK_BITS: u32 = 128;
/// L2 capacity in bytes (1 MiB).
pub const L2_BYTES: u64 = 1024 * 1024;
/// L2 hit latency in cycles.
pub const L2_LATENCY: u32 = 12;
/// L2 associativity.
pub const L2_WAYS: u32 = 16;
/// DRAM access latency in cycles.
pub const DRAM_LATENCY: u32 = 54;
/// Core clock in Hz (1 GHz); used only to convert leakage power to energy.
pub const CLOCK_HZ: u64 = 1_000_000_000;
/// Result buses limiting parallel load results (Fig. 2a shows four).
pub const RESULT_BUSES: u8 = 4;
/// Input-buffer storage for loads held from previous cycles (Sec. IV lists
/// "up to three loads from previous cycles"; the energy discussion sizes the
/// analyzed buffer at storage for two held loads — we keep the timing-side
/// maximum here and size energy separately).
pub const INPUT_BUFFER_HELD_LOADS: u8 = 3;
/// How many entries consecutive to the group leader the arbitration unit
/// compares for same-line merging ("only the three loads consecutive to the
/// initial Input Buffer entry are evaluated").
pub const MERGE_COMPARE_WINDOW: u8 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{CacheGeometry, PageGeometry};

    #[test]
    fn geometry_constants_are_consistent() {
        let l1 = CacheGeometry::paper_l1();
        assert_eq!(l1.total_bytes(), L1_BYTES);
        assert_eq!(l1.ways(), L1_WAYS);
        assert_eq!(l1.banks(), L1_BANKS);
        assert_eq!(l1.line_bytes(), LINE_BYTES);
        assert_eq!(l1.sub_block_bits(), SUB_BLOCK_BITS);
        let l2 = CacheGeometry::paper_l2();
        assert_eq!(l2.total_bytes(), L2_BYTES);
        assert_eq!(l2.ways(), L2_WAYS);
        let page = PageGeometry::default();
        assert_eq!(page.page_bytes(), PAGE_BYTES);
        assert_eq!(page.line_bytes(), LINE_BYTES);
    }

    #[test]
    fn pipeline_constants_match_table2() {
        assert_eq!(ROB_ENTRIES, 168);
        assert_eq!(DISPATCH_WIDTH, 6);
        assert_eq!(ISSUE_WIDTH, 8);
        assert_eq!(TLB_ENTRIES, 64);
        assert_eq!(UTLB_ENTRIES, 16);
        assert_eq!(LQ_ENTRIES, 40);
        assert_eq!(SB_ENTRIES, 24);
        assert_eq!(MB_ENTRIES, 4);
        assert_eq!(L2_LATENCY, 12);
        assert_eq!(DRAM_LATENCY, 54);
    }
}
