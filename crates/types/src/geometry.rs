//! Cache and page geometry: the single source of truth for address slicing.
//!
//! The paper's configuration (Table II) is a 32 KiB, 4-way set-associative,
//! physically indexed / physically tagged L1 data cache split into 4
//! independent single-ported banks, with 64 B lines, 128-bit sub-blocks and
//! 4 KiB pages. Lines are interleaved across banks by low line-address bits
//! ("a cache consisting of four banks may allocate lines 0..3 to separate
//! banks and lines 0, 4, 8, .., 60 to the same bank", Sec. V).

use serde::{Deserialize, Serialize};

use crate::addr::{BankId, LineAddr, PAddr, PPageId, SetIndex, SubBlockId, VAddr, VPageId};
use crate::error::ConfigError;

/// Page geometry: page size and cache-line size, from which every
/// page-relative quantity (line-in-page index, page ids) is derived.
///
/// # Example
///
/// ```
/// use malec_types::geometry::PageGeometry;
///
/// let g = PageGeometry::new(4096, 64).expect("valid geometry");
/// assert_eq!(g.lines_per_page(), 64);
/// assert_eq!(g.page_offset_bits(), 12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PageGeometry {
    page_bytes: u64,
    line_bytes: u64,
}

impl PageGeometry {
    /// Creates a page geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either size is not a power of two, the line
    /// is smaller than 8 bytes, or the page is not larger than the line.
    pub fn new(page_bytes: u64, line_bytes: u64) -> Result<Self, ConfigError> {
        if !page_bytes.is_power_of_two() {
            return Err(ConfigError::new("page size must be a power of two"));
        }
        if !line_bytes.is_power_of_two() || line_bytes < 8 {
            return Err(ConfigError::new(
                "line size must be a power of two of at least 8 bytes",
            ));
        }
        if page_bytes <= line_bytes {
            return Err(ConfigError::new("page must be larger than a cache line"));
        }
        Ok(Self {
            page_bytes,
            line_bytes,
        })
    }

    /// Page size in bytes.
    #[inline]
    pub const fn page_bytes(self) -> u64 {
        self.page_bytes
    }

    /// Cache-line size in bytes.
    #[inline]
    pub const fn line_bytes(self) -> u64 {
        self.line_bytes
    }

    /// Number of cache lines per page (64 for the paper's 4 KiB / 64 B).
    #[inline]
    pub const fn lines_per_page(self) -> u32 {
        (self.page_bytes / self.line_bytes) as u32
    }

    /// Number of bits of the in-page byte offset (12 for 4 KiB pages).
    #[inline]
    pub const fn page_offset_bits(self) -> u32 {
        self.page_bytes.trailing_zeros()
    }

    /// Number of bits of the in-line byte offset (6 for 64 B lines).
    #[inline]
    pub const fn line_offset_bits(self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Virtual page id of a virtual address.
    #[inline]
    pub fn vpage_of(self, a: VAddr) -> VPageId {
        VPageId::new(a.raw() >> self.page_offset_bits())
    }

    /// Physical page id of a physical address.
    #[inline]
    pub fn ppage_of(self, a: PAddr) -> PPageId {
        PPageId::new(a.raw() >> self.page_offset_bits())
    }

    /// Line-aligned address (physical or virtual raw value).
    #[inline]
    pub fn line_of(self, raw: u64) -> LineAddr {
        LineAddr::new(raw >> self.line_offset_bits())
    }

    /// Index of the line within its page (0..`lines_per_page`).
    #[inline]
    pub fn line_in_page(self, raw: u64) -> u8 {
        ((raw >> self.line_offset_bits()) & u64::from(self.lines_per_page() - 1)) as u8
    }

    /// Byte offset within the line.
    #[inline]
    pub fn offset_in_line(self, raw: u64) -> u32 {
        (raw & (self.line_bytes - 1)) as u32
    }

    /// Reconstructs a physical byte address from a physical page id and a
    /// line-in-page index (offset 0 within the line).
    #[inline]
    pub fn paddr_of_line(self, page: PPageId, line_in_page: u8) -> PAddr {
        PAddr::new(
            (page.raw() << self.page_offset_bits())
                | (u64::from(line_in_page) << self.line_offset_bits()),
        )
    }
}

impl Default for PageGeometry {
    /// The paper's geometry: 4 KiB pages, 64 B lines.
    fn default() -> Self {
        Self {
            page_bytes: 4096,
            line_bytes: 64,
        }
    }
}

/// Full cache geometry for one cache level.
///
/// For the L1 this additionally models the bank interleaving and 128-bit
/// sub-blocking used by MALEC's arbitration unit.
///
/// # Example
///
/// ```
/// use malec_types::geometry::{CacheGeometry, PageGeometry};
///
/// let l1 = CacheGeometry::paper_l1();
/// assert_eq!(l1.total_bytes(), 32 * 1024);
/// assert_eq!(l1.banks(), 4);
/// assert_eq!(l1.sets_per_bank(), 32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct CacheGeometry {
    total_bytes: u64,
    ways: u32,
    banks: u32,
    line_bytes: u64,
    sub_block_bits: u32,
}

impl CacheGeometry {
    /// Creates a cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is not a power of two, the
    /// capacity does not divide evenly into `banks * ways * line` sets, or
    /// the sub-block does not divide the line.
    pub fn new(
        total_bytes: u64,
        ways: u32,
        banks: u32,
        line_bytes: u64,
        sub_block_bits: u32,
    ) -> Result<Self, ConfigError> {
        if !total_bytes.is_power_of_two()
            || !ways.is_power_of_two()
            || !banks.is_power_of_two()
            || !line_bytes.is_power_of_two()
        {
            return Err(ConfigError::new(
                "cache capacity, ways, banks and line size must be powers of two",
            ));
        }
        let sub_block_bytes = u64::from(sub_block_bits) / 8;
        if !sub_block_bits.is_multiple_of(8)
            || sub_block_bytes == 0
            || !line_bytes.is_multiple_of(sub_block_bytes)
        {
            return Err(ConfigError::new("sub-block must evenly divide the line"));
        }
        let lines = total_bytes / line_bytes;
        if lines < u64::from(ways * banks) {
            return Err(ConfigError::new(
                "cache too small for requested ways and banks",
            ));
        }
        Ok(Self {
            total_bytes,
            ways,
            banks,
            line_bytes,
            sub_block_bits,
        })
    }

    /// The paper's L1: 32 KiB, 4-way, 4 banks, 64 B lines, 128-bit sub-blocks.
    pub fn paper_l1() -> Self {
        Self::new(32 * 1024, 4, 4, 64, 128).expect("paper L1 geometry is valid")
    }

    /// The paper's L2: 1 MiB, 16-way, single bank, 64 B lines.
    pub fn paper_l2() -> Self {
        Self::new(1024 * 1024, 16, 1, 64, 128).expect("paper L2 geometry is valid")
    }

    /// Total capacity in bytes.
    #[inline]
    pub const fn total_bytes(self) -> u64 {
        self.total_bytes
    }

    /// Set associativity.
    #[inline]
    pub const fn ways(self) -> u32 {
        self.ways
    }

    /// Number of independent banks.
    #[inline]
    pub const fn banks(self) -> u32 {
        self.banks
    }

    /// Line size in bytes.
    #[inline]
    pub const fn line_bytes(self) -> u64 {
        self.line_bytes
    }

    /// Sub-block width in bits (128 in the paper).
    #[inline]
    pub const fn sub_block_bits(self) -> u32 {
        self.sub_block_bits
    }

    /// Sub-block width in bytes.
    #[inline]
    pub const fn sub_block_bytes(self) -> u64 {
        self.sub_block_bits as u64 / 8
    }

    /// Number of sub-blocks per line (4 in the paper).
    #[inline]
    pub const fn sub_blocks_per_line(self) -> u32 {
        (self.line_bytes / (self.sub_block_bits as u64 / 8)) as u32
    }

    /// Total number of sets across all banks.
    #[inline]
    pub const fn total_sets(self) -> u32 {
        (self.total_bytes / self.line_bytes) as u32 / self.ways
    }

    /// Number of sets per bank.
    #[inline]
    pub const fn sets_per_bank(self) -> u32 {
        self.total_sets() / self.banks
    }

    /// Bank holding `line`: low line-address bits select the bank
    /// (line-interleaved banking, Sec. V).
    #[inline]
    pub fn bank_of_line(self, line: LineAddr) -> BankId {
        BankId((line.raw() & u64::from(self.banks - 1)) as u8)
    }

    /// Set within the bank for `line`: the line-address bits above the bank
    /// selector.
    #[inline]
    pub fn set_of_line(self, line: LineAddr) -> SetIndex {
        let above_bank = line.raw() >> self.banks.trailing_zeros();
        SetIndex((above_bank & u64::from(self.sets_per_bank() - 1)) as u32)
    }

    /// Tag for `line`: the line-address bits above bank and set selectors.
    #[inline]
    pub fn tag_of_line(self, line: LineAddr) -> u64 {
        line.raw() >> (self.banks.trailing_zeros() + self.sets_per_bank().trailing_zeros())
    }

    /// Sub-block touched by byte offset `offset_in_line`.
    #[inline]
    pub fn sub_block_of(self, offset_in_line: u32) -> SubBlockId {
        SubBlockId((u64::from(offset_in_line) / self.sub_block_bytes()) as u8)
    }

    /// Number of tag bits for a 32-bit physical address space with the given
    /// page geometry (used by the energy model to size tag arrays).
    pub fn tag_bits(self, address_bits: u32) -> u32 {
        let line_bits = self.line_bytes.trailing_zeros();
        let index_bits =
            self.banks.trailing_zeros() + self.sets_per_bank().trailing_zeros() + line_bits;
        address_bits.saturating_sub(index_bits)
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        Self::paper_l1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_page_geometry_matches_paper() {
        let g = PageGeometry::default();
        assert_eq!(g.page_bytes(), 4096);
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.lines_per_page(), 64);
        assert_eq!(g.page_offset_bits(), 12);
        assert_eq!(g.line_offset_bits(), 6);
    }

    #[test]
    fn page_geometry_rejects_bad_sizes() {
        assert!(PageGeometry::new(4095, 64).is_err());
        assert!(PageGeometry::new(4096, 48).is_err());
        assert!(PageGeometry::new(4096, 4).is_err());
        assert!(PageGeometry::new(64, 64).is_err());
    }

    #[test]
    fn page_slicing() {
        let g = PageGeometry::default();
        let a = VAddr::new(0x0001_2fc4);
        assert_eq!(g.vpage_of(a).raw(), 0x12);
        assert_eq!(g.line_in_page(a.raw()), (0xfc4 >> 6) as u8);
        assert_eq!(g.offset_in_line(a.raw()), 0x04);
    }

    #[test]
    fn paddr_of_line_roundtrip() {
        let g = PageGeometry::default();
        let p = g.paddr_of_line(PPageId::new(0x77), 63);
        assert_eq!(g.ppage_of(p).raw(), 0x77);
        assert_eq!(g.line_in_page(p.raw()), 63);
        assert_eq!(g.offset_in_line(p.raw()), 0);
    }

    #[test]
    fn paper_l1_geometry() {
        let l1 = CacheGeometry::paper_l1();
        assert_eq!(l1.total_sets(), 128);
        assert_eq!(l1.sets_per_bank(), 32);
        assert_eq!(l1.sub_blocks_per_line(), 4);
        assert_eq!(l1.sub_block_bytes(), 16);
        // 32-bit address: tag = 32 - (2 bank + 5 set + 6 line) = 19 bits.
        assert_eq!(l1.tag_bits(32), 19);
    }

    #[test]
    fn paper_l2_geometry() {
        let l2 = CacheGeometry::paper_l2();
        assert_eq!(l2.ways(), 16);
        assert_eq!(l2.total_sets(), 1024);
        assert_eq!(l2.sets_per_bank(), 1024);
    }

    #[test]
    fn bank_interleaving_is_by_low_line_bits() {
        let l1 = CacheGeometry::paper_l1();
        for i in 0..16u64 {
            assert_eq!(l1.bank_of_line(LineAddr::new(i)).0, (i % 4) as u8);
        }
        // Lines 0, 4, 8, ... map to the same bank (Sec. V).
        assert_eq!(
            l1.bank_of_line(LineAddr::new(0)),
            l1.bank_of_line(LineAddr::new(60))
        );
    }

    #[test]
    fn rejects_invalid_cache_geometry() {
        assert!(CacheGeometry::new(32 * 1024 + 1, 4, 4, 64, 128).is_err());
        assert!(CacheGeometry::new(32 * 1024, 3, 4, 64, 128).is_err());
        assert!(CacheGeometry::new(32 * 1024, 4, 4, 64, 100).is_err());
        assert!(CacheGeometry::new(512, 4, 4, 64, 128).is_err());
    }

    #[test]
    fn sub_block_of_offsets() {
        let l1 = CacheGeometry::paper_l1();
        assert_eq!(l1.sub_block_of(0).0, 0);
        assert_eq!(l1.sub_block_of(15).0, 0);
        assert_eq!(l1.sub_block_of(16).0, 1);
        assert_eq!(l1.sub_block_of(63).0, 3);
    }

    proptest! {
        #[test]
        fn prop_line_decomposition_is_a_partition(raw in 0u64..(1 << 32)) {
            let g = PageGeometry::default();
            let l1 = CacheGeometry::paper_l1();
            let line = g.line_of(raw);
            let bank = l1.bank_of_line(line);
            let set = l1.set_of_line(line);
            let tag = l1.tag_of_line(line);
            // Reassemble the line address from tag/set/bank.
            let rebuilt = (tag << (5 + 2)) | (u64::from(set.0) << 2) | u64::from(bank.0);
            prop_assert_eq!(rebuilt, line.raw());
        }

        #[test]
        fn prop_same_page_same_vpage(base in 0u64..(1u64 << 32), off in 0u64..4096) {
            let g = PageGeometry::default();
            let page_base = base & !0xfff;
            let a = VAddr::new(page_base);
            let b = VAddr::new(page_base + off);
            prop_assert_eq!(g.vpage_of(a), g.vpage_of(b));
        }

        #[test]
        fn prop_line_in_page_bounds(raw in proptest::num::u64::ANY) {
            let g = PageGeometry::default();
            prop_assert!(u32::from(g.line_in_page(raw)) < g.lines_per_page());
        }
    }
}
