//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Error produced when constructing an invalid configuration or geometry.
///
/// # Example
///
/// ```
/// use malec_types::geometry::PageGeometry;
///
/// let err = PageGeometry::new(1000, 64).unwrap_err();
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    /// Creates a configuration error with a static description.
    pub const fn new(message: &'static str) -> Self {
        Self { message }
    }

    /// The human-readable description.
    pub const fn message(&self) -> &'static str {
        self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_message() {
        let e = ConfigError::new("bad geometry");
        assert_eq!(e.to_string(), "bad geometry");
        assert_eq!(e.message(), "bad geometry");
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
