//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Error produced when constructing an invalid configuration or geometry.
///
/// # Example
///
/// ```
/// use malec_types::geometry::PageGeometry;
///
/// let err = PageGeometry::new(1000, 64).unwrap_err();
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    /// Creates a configuration error with a static description.
    pub const fn new(message: &'static str) -> Self {
        Self { message }
    }

    /// The human-readable description.
    pub const fn message(&self) -> &'static str {
        self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl Error for ConfigError {}

/// The broad class of a runtime failure — coarse enough to be stable
/// across layers (scheduler, HTTP surface, client), fine enough for a
/// caller to decide whether retrying can help.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A worker panicked while simulating (the panic payload is the
    /// detail). Retrying is safe: cells are pure and content-addressed.
    Panic,
    /// An operation exceeded its deadline.
    Timeout,
    /// An I/O operation failed (socket, cache log).
    Io,
    /// The service refused the request (saturated, draining).
    Unavailable,
    /// The request itself is invalid; retrying cannot help.
    Invalid,
}

impl FailureKind {
    /// The stable lowercase tag used in status JSON and logs.
    pub const fn tag(self) -> &'static str {
        match self {
            Self::Panic => "panic",
            Self::Timeout => "timeout",
            Self::Io => "io",
            Self::Unavailable => "unavailable",
            Self::Invalid => "invalid",
        }
    }

    /// Whether an identical retry can succeed. Panics and timeouts are
    /// transient for pure content-addressed work; invalid requests never
    /// are.
    pub const fn retryable(self) -> bool {
        !matches!(self, Self::Invalid)
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A runtime failure: a [`FailureKind`] plus the human-readable detail
/// that goes into a job's `error` payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Failure {
    /// The failure class.
    pub kind: FailureKind,
    /// Human-readable detail (panic payload, I/O error text, ...).
    pub detail: String,
}

impl Failure {
    /// Creates a failure of `kind` with `detail`.
    pub fn new(kind: FailureKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`FailureKind::Panic`] failure.
    pub fn panic(detail: impl Into<String>) -> Self {
        Self::new(FailureKind::Panic, detail)
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl Error for Failure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_message() {
        let e = ConfigError::new("bad geometry");
        assert_eq!(e.to_string(), "bad geometry");
        assert_eq!(e.message(), "bad geometry");
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<Failure>();
    }

    #[test]
    fn failure_tags_are_stable_and_displayed() {
        let f = Failure::panic("cell blew up");
        assert_eq!(f.kind.tag(), "panic");
        assert_eq!(f.to_string(), "panic: cell blew up");
        assert!(f.kind.retryable());
        assert!(!FailureKind::Invalid.retryable());
        assert!(FailureKind::Timeout.retryable());
        assert_eq!(FailureKind::Unavailable.tag(), "unavailable");
    }
}
