//! The analyzed configurations (Table I) and their Fig. 4 latency variants.
//!
//! | Config       | Addr. comp. per cycle | uTLB/TLB ports | Cache ports   |
//! |--------------|-----------------------|----------------|---------------|
//! | `Base1ldst`  | 1 ld/st               | 1 rd/wt        | 1 rd/wt       |
//! | `Base2ld1st` | 2 ld + 1 st           | 1 rd/wt + 2 rd | 1 rd/wt + 1 rd|
//! | `MALEC`      | 1 ld + 2 ld/st        | 1 rd/wt        | 1 rd/wt       |

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::geometry::{CacheGeometry, PageGeometry};
use crate::params;

/// Which L1 data interface microarchitecture is simulated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum InterfaceKind {
    /// Energy-oriented baseline: one load *or* one store per cycle; every
    /// structure single-ported.
    Base1LdSt,
    /// Performance-oriented baseline: up to two loads plus one store per
    /// cycle via physical multi-porting on top of banking.
    Base2Ld1St,
    /// The paper's proposal: page-based access grouping (+ optional
    /// page-based way determination), single-ported structures.
    Malec,
}

impl InterfaceKind {
    /// Human-readable name as used in the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            InterfaceKind::Base1LdSt => "Base1ldst",
            InterfaceKind::Base2Ld1St => "Base2ld1st",
            InterfaceKind::Malec => "MALEC",
        }
    }
}

impl std::fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// L1 hit latency variant analyzed in Fig. 4 (the baseline latency is
/// 2 cycles; the variants move it by ±1 cycle).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum LatencyVariant {
    /// 1-cycle L1 hit latency (`Base2ld1st_1cycleL1`).
    OneCycle,
    /// The Table II default of 2 cycles.
    #[default]
    TwoCycle,
    /// 3-cycle L1 hit latency (`MALEC_3cycleL1`).
    ThreeCycle,
}

impl LatencyVariant {
    /// The L1 hit latency in cycles.
    pub const fn l1_latency(self) -> u32 {
        match self {
            LatencyVariant::OneCycle => 1,
            LatencyVariant::TwoCycle => 2,
            LatencyVariant::ThreeCycle => 3,
        }
    }

    /// Suffix used in figure labels ("", "_1cycleL1", "_3cycleL1").
    pub const fn label_suffix(self) -> &'static str {
        match self {
            LatencyVariant::OneCycle => "_1cycleL1",
            LatencyVariant::TwoCycle => "",
            LatencyVariant::ThreeCycle => "_3cycleL1",
        }
    }
}

/// Which way-determination scheme (if any) assists the MALEC interface.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum WayDetermination {
    /// No way information: every access is a conventional parallel
    /// tag + data lookup.
    None,
    /// Page-Based Way Determination: way tables (uWT + WT) coupled to the
    /// TLBs, with the last-entry feedback register enabled (Sec. V).
    #[default]
    WayTables,
    /// Way tables without the "uWT miss but L1 hit" feedback update;
    /// the ablation that drops coverage from ~94 % to ~75 %.
    WayTablesNoFeedback,
    /// Nicolaescu-style Way Determination Unit extended with validity bits,
    /// with the given number of line-granularity entries (8/16/32 in
    /// Sec. VI-C).
    Wdu(u16),
}

impl WayDetermination {
    /// Short label for report rows.
    pub fn label(self) -> String {
        match self {
            WayDetermination::None => "none".to_owned(),
            WayDetermination::WayTables => "WT".to_owned(),
            WayDetermination::WayTablesNoFeedback => "WT(no-feedback)".to_owned(),
            WayDetermination::Wdu(n) => format!("WDU{n}"),
        }
    }
}

/// Read/write port counts of one hardware structure, used both by the timing
/// model (arbitration) and by the energy model (per-port cost scaling).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PortConfig {
    /// Number of shared read/write ports.
    pub rw: u8,
    /// Number of read-only ports.
    pub rd: u8,
    /// Number of write-only ports.
    pub wr: u8,
}

impl PortConfig {
    /// A single shared read/write port (the energy-efficient default).
    pub const SINGLE: Self = Self {
        rw: 1,
        rd: 0,
        wr: 0,
    };

    /// Total number of ports.
    pub const fn total(self) -> u8 {
        self.rw + self.rd + self.wr
    }

    /// Number of ports usable for reads.
    pub const fn read_capable(self) -> u8 {
        self.rw + self.rd
    }

    /// Number of ports usable for writes.
    pub const fn write_capable(self) -> u8 {
        self.rw + self.wr
    }
}

impl Default for PortConfig {
    fn default() -> Self {
        Self::SINGLE
    }
}

/// Per-cycle address-computation (AGU) capability of a configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AgwConfig {
    /// AGU slots usable only by loads.
    pub load_only: u8,
    /// AGU slots usable only by stores.
    pub store_only: u8,
    /// AGU slots usable by either.
    pub shared: u8,
}

impl AgwConfig {
    /// Maximum loads that can compute an address this cycle.
    pub const fn max_loads(self) -> u8 {
        self.load_only + self.shared
    }

    /// Maximum stores that can compute an address this cycle.
    pub const fn max_stores(self) -> u8 {
        self.store_only + self.shared
    }

    /// Maximum total memory operations per cycle.
    pub const fn max_total(self) -> u8 {
        self.load_only + self.store_only + self.shared
    }
}

/// Complete simulation configuration: interface kind, latency variant,
/// geometry, structure sizes, and the MALEC feature toggles used by the
/// ablation benches.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Which interface microarchitecture.
    pub interface: InterfaceKind,
    /// L1 hit-latency variant.
    pub latency: LatencyVariant,
    /// Way-determination scheme (only meaningful for [`InterfaceKind::Malec`]).
    pub way_determination: WayDetermination,
    /// Whether MALEC merges loads to the same cache line (Sec. VI-B measures
    /// its contribution by disabling it).
    pub load_merging: bool,
    /// Whether cache fills avoid the way that a line's WT slot cannot encode
    /// (Sec. V: lines are limited to 3 of 4 ways; toggle for the
    /// sensitivity bench).
    pub restrict_fill_ways: bool,
    /// L1 geometry.
    pub l1: CacheGeometry,
    /// L2 geometry.
    pub l2: CacheGeometry,
    /// Page/line geometry.
    pub page: PageGeometry,
    /// TLB entries (64 in Table II).
    pub tlb_entries: u16,
    /// Micro-TLB entries (16 in Table II).
    pub utlb_entries: u16,
    /// Load-queue entries (40).
    pub lq_entries: u16,
    /// Store-buffer entries (24).
    pub sb_entries: u16,
    /// Merge-buffer entries (4).
    pub mb_entries: u16,
    /// Reorder-buffer entries (168).
    pub rob_entries: u16,
    /// Fetch/dispatch width (6).
    pub dispatch_width: u8,
    /// Issue width (8).
    pub issue_width: u8,
    /// L2 hit latency in cycles (12).
    pub l2_latency: u32,
    /// DRAM latency in cycles (54).
    pub dram_latency: u32,
    /// Number of result buses limiting parallel load completion (4).
    pub result_buses: u8,
    /// Input-buffer capacity for loads held across cycles (MALEC only).
    pub input_buffer_held: u8,
    /// Address-space width in bits (32 in Table II).
    pub address_bits: u32,
    /// Overrides the Table I AGU configuration (used by the Fig. 2a wide
    /// MALEC parameterization: four loads and two stores in parallel).
    pub agu_override: Option<AgwConfig>,
}

impl SimConfig {
    /// The `Base1ldst` configuration from Table I.
    pub fn base1ldst() -> Self {
        Self {
            interface: InterfaceKind::Base1LdSt,
            ..Self::paper_defaults(InterfaceKind::Base1LdSt)
        }
    }

    /// The `Base2ld1st` configuration from Table I.
    pub fn base2ld1st() -> Self {
        Self::paper_defaults(InterfaceKind::Base2Ld1St)
    }

    /// The analyzed MALEC configuration from Table I (1 ld + 2 ld/st AGUs,
    /// single-ported structures, way tables with feedback).
    pub fn malec() -> Self {
        Self::paper_defaults(InterfaceKind::Malec)
    }

    /// Applies a latency variant, returning the modified configuration.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyVariant) -> Self {
        self.latency = latency;
        self
    }

    /// Applies a way-determination scheme, returning the modified
    /// configuration.
    #[must_use]
    pub fn with_way_determination(mut self, wd: WayDetermination) -> Self {
        self.way_determination = wd;
        self
    }

    /// Disables or enables load merging, returning the modified
    /// configuration.
    #[must_use]
    pub fn with_load_merging(mut self, enabled: bool) -> Self {
        self.load_merging = enabled;
        self
    }

    fn paper_defaults(interface: InterfaceKind) -> Self {
        Self {
            interface,
            latency: LatencyVariant::TwoCycle,
            way_determination: if matches!(interface, InterfaceKind::Malec) {
                WayDetermination::WayTables
            } else {
                WayDetermination::None
            },
            load_merging: matches!(interface, InterfaceKind::Malec),
            // Sec. V: each line is limited to 3 of the 4 ways so its WT slot
            // can always represent residency; fills steer around the
            // excluded way ("no measurable increase of the L1 miss rate").
            restrict_fill_ways: matches!(interface, InterfaceKind::Malec),
            l1: CacheGeometry::paper_l1(),
            l2: CacheGeometry::paper_l2(),
            page: PageGeometry::default(),
            tlb_entries: params::TLB_ENTRIES,
            utlb_entries: params::UTLB_ENTRIES,
            lq_entries: params::LQ_ENTRIES,
            sb_entries: params::SB_ENTRIES,
            mb_entries: params::MB_ENTRIES,
            rob_entries: params::ROB_ENTRIES,
            dispatch_width: params::DISPATCH_WIDTH,
            issue_width: params::ISSUE_WIDTH,
            l2_latency: params::L2_LATENCY,
            dram_latency: params::DRAM_LATENCY,
            result_buses: params::RESULT_BUSES,
            input_buffer_held: params::INPUT_BUFFER_HELD_LOADS,
            address_bits: params::ADDRESS_BITS,
            agu_override: None,
        }
    }

    /// The wide MALEC parameterization of Fig. 2a: up to four loads and two
    /// stores per cycle (the figure's demonstration of scalability; the
    /// analyzed Table I configuration uses 1 ld + 2 ld/st).
    pub fn malec_wide() -> Self {
        let mut cfg = Self::paper_defaults(InterfaceKind::Malec);
        cfg.agu_override = Some(AgwConfig {
            load_only: 2,
            store_only: 0,
            shared: 2,
        });
        cfg
    }

    /// Figure label for this configuration (e.g. `MALEC_3cycleL1`).
    pub fn label(&self) -> String {
        format!("{}{}", self.interface.name(), self.latency.label_suffix())
    }

    /// AGU capability per Table I (or the explicit override).
    pub fn agus(&self) -> AgwConfig {
        if let Some(agus) = self.agu_override {
            return agus;
        }
        match self.interface {
            InterfaceKind::Base1LdSt => AgwConfig {
                load_only: 0,
                store_only: 0,
                shared: 1,
            },
            InterfaceKind::Base2Ld1St => AgwConfig {
                load_only: 2,
                store_only: 1,
                shared: 0,
            },
            InterfaceKind::Malec => AgwConfig {
                load_only: 1,
                store_only: 0,
                shared: 2,
            },
        }
    }

    /// TLB/uTLB port configuration per Table I.
    pub fn tlb_ports(&self) -> PortConfig {
        match self.interface {
            InterfaceKind::Base2Ld1St => PortConfig {
                rw: 1,
                rd: 2,
                wr: 0,
            },
            _ => PortConfig::SINGLE,
        }
    }

    /// L1 cache-bank port configuration per Table I.
    pub fn cache_ports(&self) -> PortConfig {
        match self.interface {
            InterfaceKind::Base2Ld1St => PortConfig {
                rw: 1,
                rd: 1,
                wr: 0,
            },
            _ => PortConfig::SINGLE,
        }
    }

    /// L1 hit latency in cycles for this variant.
    pub fn l1_latency(&self) -> u32 {
        self.latency.l1_latency()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if structure sizes are zero, the way
    /// determination scheme conflicts with the interface kind, or geometries
    /// disagree on the line size.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tlb_entries == 0 || self.utlb_entries == 0 {
            return Err(ConfigError::new("TLB and uTLB must have entries"));
        }
        if u32::from(self.utlb_entries) > u32::from(self.tlb_entries) {
            return Err(ConfigError::new("uTLB cannot be larger than the TLB"));
        }
        if self.rob_entries == 0 || self.lq_entries == 0 || self.sb_entries == 0 {
            return Err(ConfigError::new("ROB, LQ and SB must have entries"));
        }
        if self.mb_entries == 0 {
            return Err(ConfigError::new("merge buffer must have entries"));
        }
        if self.dispatch_width == 0 || self.issue_width == 0 {
            return Err(ConfigError::new("pipeline widths must be nonzero"));
        }
        if self.l1.line_bytes() != self.page.line_bytes() {
            return Err(ConfigError::new(
                "L1 and page geometry disagree on line size",
            ));
        }
        if self.l2.line_bytes() != self.l1.line_bytes() {
            return Err(ConfigError::new("L1 and L2 must share a line size"));
        }
        if !matches!(self.interface, InterfaceKind::Malec)
            && !matches!(self.way_determination, WayDetermination::None)
        {
            return Err(ConfigError::new(
                "way determination is only modelled for the MALEC interface",
            ));
        }
        if matches!(self.way_determination, WayDetermination::Wdu(0)) {
            return Err(ConfigError::new("WDU needs at least one entry"));
        }
        if self.result_buses == 0 {
            return Err(ConfigError::new("at least one result bus is required"));
        }
        Ok(())
    }

    /// Resolves a figure label (as produced by [`SimConfig::label`]) back
    /// to its configuration: `Base1ldst`, `Base2ld1st`,
    /// `Base2ld1st_1cycleL1`, `MALEC`, or `MALEC_3cycleL1`. This is the
    /// vocabulary scenario sweep specs name configurations with.
    pub fn by_label(label: &str) -> Option<SimConfig> {
        Self::figure4_set()
            .into_iter()
            .find(|cfg| cfg.label() == label)
    }

    /// The five configurations plotted in Fig. 4, in the paper's order:
    /// `Base1ldst`, `Base2ld1st_1cycleL1`, `Base2ld1st`, `MALEC`,
    /// `MALEC_3cycleL1`.
    pub fn figure4_set() -> Vec<SimConfig> {
        vec![
            Self::base1ldst(),
            Self::base2ld1st().with_latency(LatencyVariant::OneCycle),
            Self::base2ld1st(),
            Self::malec(),
            Self::malec().with_latency(LatencyVariant::ThreeCycle),
        ]
    }
}

impl Default for SimConfig {
    /// Defaults to the analyzed MALEC configuration.
    fn default() -> Self {
        Self::malec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_agus() {
        assert_eq!(SimConfig::base1ldst().agus().max_total(), 1);
        let b2 = SimConfig::base2ld1st().agus();
        assert_eq!(b2.max_loads(), 2);
        assert_eq!(b2.max_stores(), 1);
        assert_eq!(b2.max_total(), 3);
        let m = SimConfig::malec().agus();
        assert_eq!(m.max_loads(), 3);
        assert_eq!(m.max_stores(), 2);
        assert_eq!(m.max_total(), 3);
    }

    #[test]
    fn table1_ports() {
        let b1 = SimConfig::base1ldst();
        assert_eq!(b1.tlb_ports().total(), 1);
        assert_eq!(b1.cache_ports().total(), 1);
        let b2 = SimConfig::base2ld1st();
        assert_eq!(b2.tlb_ports().read_capable(), 3);
        assert_eq!(b2.cache_ports().read_capable(), 2);
        let m = SimConfig::malec();
        assert_eq!(m.tlb_ports(), PortConfig::SINGLE);
        assert_eq!(m.cache_ports(), PortConfig::SINGLE);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SimConfig::base1ldst().label(), "Base1ldst");
        assert_eq!(
            SimConfig::base2ld1st()
                .with_latency(LatencyVariant::OneCycle)
                .label(),
            "Base2ld1st_1cycleL1"
        );
        assert_eq!(
            SimConfig::malec()
                .with_latency(LatencyVariant::ThreeCycle)
                .label(),
            "MALEC_3cycleL1"
        );
    }

    #[test]
    fn figure4_set_order() {
        let set = SimConfig::figure4_set();
        let labels: Vec<String> = set.iter().map(SimConfig::label).collect();
        assert_eq!(
            labels,
            [
                "Base1ldst",
                "Base2ld1st_1cycleL1",
                "Base2ld1st",
                "MALEC",
                "MALEC_3cycleL1"
            ]
        );
        for cfg in &set {
            cfg.validate().expect("paper configs validate");
        }
    }

    #[test]
    fn by_label_roundtrips_the_figure4_set() {
        for cfg in SimConfig::figure4_set() {
            assert_eq!(SimConfig::by_label(&cfg.label()), Some(cfg.clone()));
        }
        assert_eq!(SimConfig::by_label("NoSuchConfig"), None);
    }

    #[test]
    fn defaults_validate() {
        SimConfig::default().validate().expect("default validates");
        assert_eq!(SimConfig::default().interface, InterfaceKind::Malec);
        assert_eq!(SimConfig::default().l1_latency(), 2);
    }

    #[test]
    fn validation_rejects_inconsistency() {
        let mut cfg = SimConfig::base1ldst();
        cfg.way_determination = WayDetermination::WayTables;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::malec();
        cfg.utlb_entries = 128;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::malec();
        cfg.way_determination = WayDetermination::Wdu(0);
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::malec();
        cfg.result_buses = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn way_determination_labels() {
        assert_eq!(WayDetermination::WayTables.label(), "WT");
        assert_eq!(WayDetermination::Wdu(16).label(), "WDU16");
        assert_eq!(
            WayDetermination::WayTablesNoFeedback.label(),
            "WT(no-feedback)"
        );
        assert_eq!(WayDetermination::None.label(), "none");
    }

    #[test]
    fn wide_malec_overrides_agus() {
        let wide = SimConfig::malec_wide();
        wide.validate().expect("wide MALEC validates");
        assert_eq!(wide.agus().max_loads(), 4);
        assert_eq!(wide.agus().max_stores(), 2);
        // Ports stay single: that is the whole point of page grouping.
        assert_eq!(wide.tlb_ports(), PortConfig::SINGLE);
        assert_eq!(wide.cache_ports(), PortConfig::SINGLE);
    }

    #[test]
    fn latency_variants() {
        assert_eq!(LatencyVariant::OneCycle.l1_latency(), 1);
        assert_eq!(LatencyVariant::TwoCycle.l1_latency(), 2);
        assert_eq!(LatencyVariant::ThreeCycle.l1_latency(), 3);
        assert_eq!(LatencyVariant::default(), LatencyVariant::TwoCycle);
    }

    #[test]
    fn interface_display() {
        assert_eq!(InterfaceKind::Malec.to_string(), "MALEC");
        assert_eq!(InterfaceKind::Base1LdSt.to_string(), "Base1ldst");
        assert_eq!(InterfaceKind::Base2Ld1St.to_string(), "Base2ld1st");
    }
}
