//! Common foundation types for the MALEC reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`addr`] — strongly-typed virtual/physical addresses and the derived
//!   quantities MALEC reasons about (page identifiers, line indices within a
//!   page, cache bank/set/way coordinates, sub-block indices);
//! * [`geometry`] — cache and page geometry descriptors used to slice
//!   addresses ([`CacheGeometry`], [`PageGeometry`]);
//! * [`op`] — memory-operation records flowing from the CPU model through the
//!   L1 interface ([`MemOp`], [`MemOpKind`]);
//! * [`config`] — the analyzed configurations from Table I of the paper
//!   ([`InterfaceKind`], [`SimConfig`]) plus the latency variants of Fig. 4;
//! * [`params`] — the Table II simulation parameters as named constants;
//! * [`peer`] — peer identity for distributed serving ([`PeerId`]).
//!
//! # Example
//!
//! ```
//! use malec_types::addr::VAddr;
//! use malec_types::geometry::PageGeometry;
//!
//! let page = PageGeometry::default(); // 4 KiB pages, 64 B lines
//! let a = VAddr::new(0x1234_5678);
//! assert_eq!(page.vpage_of(a).raw(), 0x12345);
//! assert_eq!(page.line_in_page(a.raw()), (0x678 >> 6) as u8);
//! ```
//!
//! [`CacheGeometry`]: geometry::CacheGeometry
//! [`PageGeometry`]: geometry::PageGeometry
//! [`MemOp`]: op::MemOp
//! [`MemOpKind`]: op::MemOpKind
//! [`InterfaceKind`]: config::InterfaceKind
//! [`SimConfig`]: config::SimConfig
//! [`PeerId`]: peer::PeerId

pub mod addr;
pub mod config;
pub mod error;
pub mod geometry;
pub mod op;
pub mod params;
pub mod peer;
pub mod stable;

pub use addr::{BankId, LineAddr, PAddr, PPageId, SetIndex, SubBlockId, VAddr, VPageId, WayId};
pub use config::{InterfaceKind, LatencyVariant, PortConfig, SimConfig, WayDetermination};
pub use error::ConfigError;
pub use geometry::{CacheGeometry, PageGeometry};
pub use op::{MemOp, MemOpKind, OpId};
pub use peer::PeerId;
pub use stable::{stable_key, StableHasher, StableKey};
