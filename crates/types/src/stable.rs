//! Stable, process-independent key derivation for cache addressing.
//!
//! The `malec-serve` result cache maps one `(SimConfig, workload, seed,
//! horizon)` tuple to one `RunSummary` forever, so its keys must be
//! **stable**: identical across processes, hosts and restarts, and sensitive
//! to every field that can change simulated behavior. `std::hash::Hash` gives
//! neither guarantee (hasher state is allowed to be randomized, and derive
//! order is an implementation detail), so this module provides an explicit
//! alternative:
//!
//! * [`StableHasher`] — FNV-1a over a 128-bit state, fed through typed
//!   `write_*` calls that length-prefix variable-size data (two adjacent
//!   strings can never collide by shifting bytes between them);
//! * [`StableKey`] — the trait a type implements to fold *every*
//!   behavior-relevant field, with explicit discriminant tags for enums so
//!   the key survives reordering of variant declarations.
//!
//! [`SimConfig`] implements [`StableKey`] here; workload types (scenarios,
//! profiles) implement it in `malec-trace`. Changing any encoding is a
//! breaking change for persisted caches — bump the cache's format version
//! when you do.
//!
//! # Example
//!
//! ```
//! use malec_types::stable::{stable_key, StableKey};
//! use malec_types::SimConfig;
//!
//! let a = stable_key(&SimConfig::malec());
//! let b = stable_key(&SimConfig::malec());
//! assert_eq!(a, b, "same config, same key, forever");
//! assert_ne!(a, stable_key(&SimConfig::base1ldst()));
//! ```

use crate::config::{AgwConfig, InterfaceKind, LatencyVariant, SimConfig, WayDetermination};
use crate::geometry::{CacheGeometry, PageGeometry};

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// An incremental FNV-1a hasher over a 128-bit state with typed,
/// length-prefixed writes. See the module docs for the stability contract.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self {
            state: FNV128_OFFSET,
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.state ^= u128::from(v);
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Folds raw bytes (no length prefix; use [`write_str`](Self::write_str)
    /// or [`write_len_bytes`](Self::write_len_bytes) for variable-size
    /// data).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Folds a length prefix followed by the bytes.
    pub fn write_len_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_bytes(bytes);
    }

    /// Folds a `u32` (little-endian byte order).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian byte order).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by bit pattern (`-0.0` and `0.0` therefore differ;
    /// behavioral parameters never rely on that distinction).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Folds a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_len_bytes(s.as_bytes());
    }

    /// The 128-bit digest of everything written so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// A type whose behavior-relevant identity can be folded into a
/// [`StableHasher`]. Implementations must fold **every** field that can
/// change simulated output, tag enum variants with explicit constants, and
/// never change an existing encoding without a cache-format version bump.
pub trait StableKey {
    /// Folds this value into `h`.
    fn fold(&self, h: &mut StableHasher);
}

/// The 128-bit stable key of one value (a fresh hasher, folded, finished).
pub fn stable_key<T: StableKey + ?Sized>(value: &T) -> u128 {
    let mut h = StableHasher::new();
    value.fold(&mut h);
    h.finish()
}

// Primitive encodings, so composite keys (e.g. a cache key folding a
// replicate index next to a config) can fold scalars uniformly. Each
// integer width has a distinct byte length, and strings are
// length-prefixed, so adjacent fields cannot shift bytes between them.
impl StableKey for u8 {
    fn fold(&self, h: &mut StableHasher) {
        h.write_u8(*self);
    }
}

impl StableKey for u32 {
    fn fold(&self, h: &mut StableHasher) {
        h.write_u32(*self);
    }
}

impl StableKey for u64 {
    fn fold(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableKey for bool {
    fn fold(&self, h: &mut StableHasher) {
        h.write_bool(*self);
    }
}

impl StableKey for str {
    fn fold(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableKey for InterfaceKind {
    fn fold(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            InterfaceKind::Base1LdSt => 0,
            InterfaceKind::Base2Ld1St => 1,
            InterfaceKind::Malec => 2,
        });
    }
}

impl StableKey for LatencyVariant {
    fn fold(&self, h: &mut StableHasher) {
        h.write_u32(self.l1_latency());
    }
}

impl StableKey for WayDetermination {
    fn fold(&self, h: &mut StableHasher) {
        match self {
            WayDetermination::None => h.write_u8(0),
            WayDetermination::WayTables => h.write_u8(1),
            WayDetermination::WayTablesNoFeedback => h.write_u8(2),
            WayDetermination::Wdu(n) => {
                h.write_u8(3);
                h.write_u64(u64::from(*n));
            }
        }
    }
}

impl StableKey for AgwConfig {
    fn fold(&self, h: &mut StableHasher) {
        h.write_u8(self.load_only);
        h.write_u8(self.store_only);
        h.write_u8(self.shared);
    }
}

impl StableKey for CacheGeometry {
    fn fold(&self, h: &mut StableHasher) {
        h.write_u64(self.total_bytes());
        h.write_u32(self.ways());
        h.write_u32(self.banks());
        h.write_u64(self.line_bytes());
        h.write_u32(self.sub_block_bits());
    }
}

impl StableKey for PageGeometry {
    fn fold(&self, h: &mut StableHasher) {
        h.write_u64(self.page_bytes());
        h.write_u64(self.line_bytes());
    }
}

impl StableKey for SimConfig {
    fn fold(&self, h: &mut StableHasher) {
        self.interface.fold(h);
        self.latency.fold(h);
        self.way_determination.fold(h);
        h.write_bool(self.load_merging);
        h.write_bool(self.restrict_fill_ways);
        self.l1.fold(h);
        self.l2.fold(h);
        self.page.fold(h);
        h.write_u64(u64::from(self.tlb_entries));
        h.write_u64(u64::from(self.utlb_entries));
        h.write_u64(u64::from(self.lq_entries));
        h.write_u64(u64::from(self.sb_entries));
        h.write_u64(u64::from(self.mb_entries));
        h.write_u64(u64::from(self.rob_entries));
        h.write_u8(self.dispatch_width);
        h.write_u8(self.issue_width);
        h.write_u32(self.l2_latency);
        h.write_u32(self.dram_latency);
        h.write_u8(self.result_buses);
        h.write_u8(self.input_buffer_held);
        h.write_u32(self.address_bits);
        match &self.agu_override {
            None => h.write_u8(0),
            Some(agus) => {
                h.write_u8(1);
                agus.fold(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_step_matches_the_definition() {
        // FNV-1a: empty input hashes to the offset basis; one byte hashes
        // to (offset ^ byte) * prime.
        let h = StableHasher::new();
        assert_eq!(h.finish(), FNV128_OFFSET);
        let mut h = StableHasher::new();
        h.write_u8(b'a');
        assert_eq!(
            h.finish(),
            (FNV128_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV128_PRIME)
        );
    }

    #[test]
    fn length_prefix_prevents_boundary_shifts() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn every_figure4_config_keys_distinctly() {
        let keys: Vec<u128> = SimConfig::figure4_set().iter().map(stable_key).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn key_is_sensitive_to_each_toggle() {
        let base = stable_key(&SimConfig::malec());
        let mut cfg = SimConfig::malec();
        cfg.load_merging = false;
        assert_ne!(stable_key(&cfg), base);
        let mut cfg = SimConfig::malec();
        cfg.tlb_entries -= 1;
        assert_ne!(stable_key(&cfg), base);
        let mut cfg = SimConfig::malec();
        cfg.way_determination = WayDetermination::Wdu(16);
        assert_ne!(stable_key(&cfg), base);
        assert_ne!(stable_key(&SimConfig::malec_wide()), base);
    }

    #[test]
    fn primitive_keys_are_width_distinct() {
        // u32 and u64 of the same numeric value must key differently (their
        // byte encodings differ in length), so a composite key cannot be
        // forged by retyping a field.
        assert_ne!(stable_key(&7u32), stable_key(&7u64));
        assert_eq!(
            stable_key(&0u8),
            stable_key(&false),
            "same one-byte encoding"
        );
        assert_eq!(stable_key("ab"), stable_key("ab"));
        assert_ne!(stable_key("ab"), stable_key("ba"));
    }

    #[test]
    fn key_is_stable_across_calls() {
        // The contract the persistent cache rests on: no per-process
        // randomness anywhere in the derivation.
        assert_eq!(
            stable_key(&SimConfig::base2ld1st()),
            stable_key(&SimConfig::base2ld1st())
        );
    }
}
