//! Strongly-typed address quantities.
//!
//! The paper assumes a 32-bit address space with 4 KiB pages and 64 B cache
//! lines (Table II). All address slicing is nevertheless performed through
//! [`crate::geometry`] so alternative geometries (Sec. VI-D sensitivity) work
//! unchanged; the newtypes here only prevent the classic unit mix-ups
//! (virtual vs physical, page id vs full address).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident, $inner:ty) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw value.
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw underlying value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl fmt::Octal for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Octal::fmt(&self.0, f)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(v: $name) -> $inner {
                v.0
            }
        }
    };
}

addr_newtype!(
    /// A virtual byte address (32-bit address space per Table II).
    VAddr,
    u64
);
addr_newtype!(
    /// A physical byte address.
    PAddr,
    u64
);
addr_newtype!(
    /// A virtual page identifier (`vaddr >> page_bits`); 20 bits for 4 KiB
    /// pages in a 32-bit address space.
    VPageId,
    u64
);
addr_newtype!(
    /// A physical page identifier (`paddr >> page_bits`).
    PPageId,
    u64
);
addr_newtype!(
    /// A line-aligned address (`addr >> line_bits`), used as the unit of
    /// cache residency and of load merging.
    LineAddr,
    u64
);

impl VAddr {
    /// Byte-offset addition, saturating at the top of the address space.
    #[inline]
    #[must_use]
    pub fn offset(self, bytes: u64) -> Self {
        Self(self.0.saturating_add(bytes))
    }
}

impl PAddr {
    /// Byte-offset addition, saturating at the top of the address space.
    #[inline]
    #[must_use]
    pub fn offset(self, bytes: u64) -> Self {
        Self(self.0.saturating_add(bytes))
    }
}

/// Index of a cache bank (0-based; the paper uses 4 banks).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct BankId(pub u8);

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// Index of a cache way (0-based; the paper's L1 is 4-way set-associative).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct WayId(pub u8);

impl fmt::Display for WayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "way{}", self.0)
    }
}

/// Index of a set within a single cache bank.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SetIndex(pub u32);

impl fmt::Display for SetIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set{}", self.0)
    }
}

/// Index of a 128-bit sub-block within a cache line (4 per 64 B line).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SubBlockId(pub u8);

impl fmt::Display for SubBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtype_roundtrip() {
        let a = VAddr::new(0xdead_beef);
        assert_eq!(a.raw(), 0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(VAddr::from(0xdead_beefu64), a);
    }

    #[test]
    fn debug_is_nonempty_and_hex() {
        let a = PAddr::new(0xff);
        assert_eq!(format!("{a:?}"), "PAddr(0xff)");
        assert_eq!(format!("{a}"), "0xff");
        assert_eq!(format!("{a:x}"), "ff");
        assert_eq!(format!("{a:X}"), "FF");
        assert_eq!(format!("{a:b}"), "11111111");
        assert_eq!(format!("{a:o}"), "377");
    }

    #[test]
    fn offset_saturates() {
        let a = VAddr::new(u64::MAX - 1);
        assert_eq!(a.offset(10).raw(), u64::MAX);
        let p = PAddr::new(u64::MAX);
        assert_eq!(p.offset(1).raw(), u64::MAX);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(LineAddr::new(1) < LineAddr::new(2));
        assert!(VPageId::new(0x10) > VPageId::new(0xf));
    }

    #[test]
    fn ids_display() {
        assert_eq!(BankId(2).to_string(), "bank2");
        assert_eq!(WayId(3).to_string(), "way3");
        assert_eq!(SetIndex(7).to_string(), "set7");
        assert_eq!(SubBlockId(1).to_string(), "sub1");
    }

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VAddr>();
        assert_send_sync::<PAddr>();
        assert_send_sync::<VPageId>();
        assert_send_sync::<PPageId>();
        assert_send_sync::<LineAddr>();
        assert_send_sync::<BankId>();
        assert_send_sync::<WayId>();
    }
}
