//! Peer identity for distributed serving.
//!
//! A serving peer is identified by the `host:port` address it listens on —
//! the same string every peer of a cluster lists in `--peers`. The newtype
//! pins down the total order that ownership tie-breaking relies on (plain
//! byte-wise string ordering, identical on every platform) and keeps peer
//! addresses from mixing with arbitrary strings in signatures.
//!
//! # Example
//!
//! ```
//! use malec_types::peer::PeerId;
//!
//! let a = PeerId::new("127.0.0.1:4173");
//! let b = PeerId::new("127.0.0.1:4174");
//! assert_eq!(a.as_str(), "127.0.0.1:4173");
//! assert!(a < b, "peers order by their address bytes");
//! ```

use std::fmt;

/// One serving peer's address (`host:port`) — the identity rendezvous
/// hashing scores cache keys against.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PeerId(String);

impl PeerId {
    /// Wraps an address string.
    pub fn new(addr: impl Into<String>) -> Self {
        Self(addr.into())
    }

    /// The `host:port` string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<String> for PeerId {
    fn from(addr: String) -> Self {
        Self(addr)
    }
}

impl From<&str> for PeerId {
    fn from(addr: &str) -> Self {
        Self(addr.to_owned())
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_bytewise_and_stable() {
        let mut peers = [
            PeerId::new("10.0.0.2:4173"),
            PeerId::new("10.0.0.10:4173"),
            PeerId::new("10.0.0.1:4173"),
        ];
        peers.sort();
        // Byte-wise, not numeric: "10.0.0.10:" < "10.0.0.1:" (the digit
        // '0' sorts before ':'), and both sort before "10.0.0.2:".
        assert_eq!(
            peers.iter().map(PeerId::as_str).collect::<Vec<_>>(),
            vec!["10.0.0.10:4173", "10.0.0.1:4173", "10.0.0.2:4173"],
        );
    }

    #[test]
    fn display_and_conversions_round_trip() {
        let p: PeerId = "127.0.0.1:4173".into();
        assert_eq!(p.to_string(), "127.0.0.1:4173");
        assert_eq!(PeerId::from("127.0.0.1:4173".to_owned()), p);
    }
}
