//! Memory-operation records exchanged between the CPU model and the L1
//! interface implementations.

use serde::{Deserialize, Serialize};

use crate::addr::VAddr;

/// Unique, monotonically increasing identifier of a dynamic memory operation.
///
/// Ids double as program-order priority: a lower id is older and therefore
/// has higher priority in the Input Buffer and the Arbitration Unit.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct OpId(pub u64);

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// The kind of a memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MemOpKind {
    /// A load; completion wakes dependent instructions.
    Load,
    /// A store; retires through the store buffer and merge buffer.
    Store,
    /// An evicted merge-buffer entry performing the actual L1 write
    /// (not time critical: the stores it contains already committed).
    MergeBufferEvict,
}

impl MemOpKind {
    /// Whether this operation reads the cache.
    #[inline]
    pub const fn is_load(self) -> bool {
        matches!(self, MemOpKind::Load)
    }

    /// Whether this operation writes the cache when serviced.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, MemOpKind::MergeBufferEvict)
    }
}

/// A dynamic memory operation as seen by the L1 data interface.
///
/// # Example
///
/// ```
/// use malec_types::op::{MemOp, MemOpKind, OpId};
/// use malec_types::addr::VAddr;
///
/// let op = MemOp::load(OpId(7), VAddr::new(0x1000), 8);
/// assert!(op.kind.is_load());
/// assert_eq!(op.size, 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MemOp {
    /// Program-order identity (lower = older = higher priority).
    pub id: OpId,
    /// Load, store, or merge-buffer eviction.
    pub kind: MemOpKind,
    /// Virtual byte address of the access.
    pub vaddr: VAddr,
    /// Access size in bytes (1..=16; SIMD accesses in the paper are 128-bit).
    pub size: u8,
}

impl MemOp {
    /// Creates a load.
    pub const fn load(id: OpId, vaddr: VAddr, size: u8) -> Self {
        Self {
            id,
            kind: MemOpKind::Load,
            vaddr,
            size,
        }
    }

    /// Creates a store.
    pub const fn store(id: OpId, vaddr: VAddr, size: u8) -> Self {
        Self {
            id,
            kind: MemOpKind::Store,
            vaddr,
            size,
        }
    }

    /// Creates a merge-buffer eviction write.
    pub const fn merge_evict(id: OpId, vaddr: VAddr, size: u8) -> Self {
        Self {
            id,
            kind: MemOpKind::MergeBufferEvict,
            vaddr,
            size,
        }
    }

    /// Last byte address touched by this access.
    #[inline]
    pub fn end_vaddr(&self) -> VAddr {
        self.vaddr.offset(u64::from(self.size.max(1)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let a = VAddr::new(0x40);
        assert_eq!(MemOp::load(OpId(0), a, 4).kind, MemOpKind::Load);
        assert_eq!(MemOp::store(OpId(1), a, 4).kind, MemOpKind::Store);
        assert_eq!(
            MemOp::merge_evict(OpId(2), a, 16).kind,
            MemOpKind::MergeBufferEvict
        );
    }

    #[test]
    fn kind_predicates() {
        assert!(MemOpKind::Load.is_load());
        assert!(!MemOpKind::Store.is_load());
        assert!(MemOpKind::MergeBufferEvict.is_write());
        assert!(!MemOpKind::Load.is_write());
    }

    #[test]
    fn end_vaddr_spans_size() {
        let op = MemOp::load(OpId(0), VAddr::new(0x100), 16);
        assert_eq!(op.end_vaddr().raw(), 0x10f);
        let one = MemOp::load(OpId(0), VAddr::new(0x100), 1);
        assert_eq!(one.end_vaddr().raw(), 0x100);
        let zero = MemOp::load(OpId(0), VAddr::new(0x100), 0);
        assert_eq!(zero.end_vaddr().raw(), 0x100);
    }

    #[test]
    fn op_id_orders_by_age() {
        assert!(OpId(3) < OpId(9));
        assert_eq!(OpId(5).to_string(), "op#5");
    }
}
