//! The contract between the core and an L1 data interface implementation.

use malec_types::op::{MemOp, OpId};

/// Why an offered memory operation was (not) accepted this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcceptKind {
    /// The interface took the operation; completion will be reported by a
    /// later [`L1DataInterface::tick`].
    Accepted,
    /// Structural stall (input buffer / store buffer full, port conflict);
    /// the core must retry next cycle and the owning AGU stalls.
    Rejected,
}

impl AcceptKind {
    /// Whether the op was accepted.
    pub const fn is_accepted(self) -> bool {
        matches!(self, AcceptKind::Accepted)
    }
}

/// One L1 data-memory-subsystem implementation (Base1ldst, Base2ld1st or
/// MALEC).
///
/// Protocol, per simulated cycle:
///
/// 1. the core calls [`tick`](Self::tick), which advances the interface by
///    one cycle and appends the ids of loads whose data became available
///    this cycle to `completed`;
/// 2. the core issues memory operations whose addresses computed this cycle
///    via [`offer_load`](Self::offer_load) / [`offer_store`](Self::offer_store)
///    (AGU arbitration is the core's job; acceptance is the interface's);
/// 3. the core notifies [`commit_store`](Self::commit_store) for each store
///    it retires, moving the store-buffer entry toward the merge buffer.
pub trait L1DataInterface {
    /// Advances one cycle: performs this cycle's page grouping, arbitration,
    /// translations and cache accesses, and reports completed loads.
    fn tick(&mut self, cycle: u64, completed: &mut Vec<OpId>);

    /// Offers a load whose address computation finishes this cycle.
    fn offer_load(&mut self, op: MemOp) -> AcceptKind;

    /// Offers a store whose address computation finishes this cycle
    /// (the store enters the store buffer on acceptance).
    fn offer_store(&mut self, op: MemOp) -> AcceptKind;

    /// Notifies that the store `id` has committed and may drain from the
    /// store buffer into the merge buffer.
    fn commit_store(&mut self, id: OpId);

    /// Number of in-flight loads the interface still owes completions for
    /// (used to drain the pipeline at the end of a run).
    fn pending_loads(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_kind_predicate() {
        assert!(AcceptKind::Accepted.is_accepted());
        assert!(!AcceptKind::Rejected.is_accepted());
    }
}
