//! The trace-driven out-of-order engine.
//!
//! A deliberately compact but cycle-accurate model of the Table II core:
//! dispatch (6-wide) into a 168-entry ROB, dependency-checked issue
//! (8-wide) with per-configuration AGU arbitration for memory operations,
//! in-order commit (6-wide), and front-end stalls on mispredicted branches.
//! Loads complete when the plugged [`L1DataInterface`] says their data
//! arrived; everything else completes after a fixed execution latency.

use std::collections::VecDeque;

use serde::Serialize;

use malec_trace::inst::TraceInst;
use malec_types::config::SimConfig;
use malec_types::op::{MemOp, OpId};

use crate::interface::L1DataInterface;

/// Cycles to refill the front-end after a mispredicted branch resolves.
const MISPREDICT_REFILL: u64 = 5;
/// Watchdog: a commit drought this long means the interface lost an op.
const DEADLOCK_LIMIT: u64 = 100_000;
/// Non-memory execution units (ALU/FP issue slots per cycle).
const ALU_UNITS: usize = 4;
const NO_DEP: u64 = u64::MAX;
const UNKNOWN: u64 = u64::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EntryKind {
    Op { latency: u8 },
    Load,
    Store,
    Branch { mispredicted: bool },
}

#[derive(Clone, Copy, Debug)]
struct RobEntry {
    kind: EntryKind,
    mem: Option<MemOp>,
    deps: [u64; 2],
    done_at: u64,
    issued: bool,
}

/// Aggregate statistics of one run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize)]
pub struct CoreStats {
    /// Cycles elapsed until the last instruction committed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Branches committed.
    pub branches: u64,
    /// Cycles in which at least one AGU stalled on a rejected offer.
    pub agu_stall_cycles: u64,
    /// Issue slots actually used.
    pub issued_ops: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The out-of-order core bound to one L1 data interface.
///
/// # Example
///
/// ```no_run
/// use malec_cpu::OoOCore;
/// use malec_types::SimConfig;
///
/// # fn demo(interface: impl malec_cpu::L1DataInterface, trace: Vec<malec_trace::TraceInst>) {
/// let config = SimConfig::malec();
/// let mut core = OoOCore::new(&config, interface);
/// let stats = core.run(trace.into_iter());
/// println!("IPC = {:.2}", stats.ipc());
/// # }
/// ```
#[derive(Debug)]
pub struct OoOCore<I> {
    interface: I,
    rob_size: usize,
    dispatch_width: usize,
    issue_width: usize,
    lq_entries: usize,
    load_only_agus: u32,
    store_only_agus: u32,
    shared_agus: u32,
    rob: VecDeque<RobEntry>,
    rob_base: u64,
    next_idx: u64,
    cycle: u64,
    inflight_loads: usize,
    fe_blocked_on: Option<u64>,
    fe_resume_at: u64,
    stats: CoreStats,
    completed_buf: Vec<OpId>,
    /// Issue candidates: absolute indices of not-yet-issued ROB entries in
    /// program order. Issue walks this (typically short) list instead of
    /// rescanning all 168 ROB entries every cycle; entries leave the moment
    /// they issue and are compacted in place, so steady state allocates
    /// nothing.
    unissued: Vec<u64>,
}

impl<I: L1DataInterface> OoOCore<I> {
    /// Creates a core with the Table II parameters of `config`, bound to
    /// `interface`.
    pub fn new(config: &SimConfig, interface: I) -> Self {
        let agus = config.agus();
        Self {
            interface,
            rob_size: usize::from(config.rob_entries),
            dispatch_width: usize::from(config.dispatch_width),
            issue_width: usize::from(config.issue_width),
            lq_entries: usize::from(config.lq_entries),
            load_only_agus: u32::from(agus.load_only),
            store_only_agus: u32::from(agus.store_only),
            shared_agus: u32::from(agus.shared),
            rob: VecDeque::with_capacity(usize::from(config.rob_entries)),
            rob_base: 0,
            next_idx: 0,
            cycle: 0,
            inflight_loads: 0,
            fe_blocked_on: None,
            fe_resume_at: 0,
            stats: CoreStats::default(),
            completed_buf: Vec::with_capacity(8),
            unissued: Vec::with_capacity(usize::from(config.rob_entries)),
        }
    }

    /// Consumes the core, returning the interface (for its statistics).
    pub fn into_interface(self) -> I {
        self.interface
    }

    /// A reference to the interface.
    pub fn interface(&self) -> &I {
        &self.interface
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the interface stops making forward progress (an op is lost),
    /// which indicates a bug in an interface implementation rather than a
    /// property of any valid simulation.
    pub fn run(&mut self, mut trace: impl Iterator<Item = TraceInst>) -> CoreStats {
        let mut trace_done = false;
        let mut last_commit_cycle = 0u64;

        loop {
            // 1. Interface cycle: collect load completions.
            self.completed_buf.clear();
            let mut completed = std::mem::take(&mut self.completed_buf);
            self.interface.tick(self.cycle, &mut completed);
            for id in &completed {
                let pos = id.0.checked_sub(self.rob_base).map(|o| o as usize);
                if let Some(pos) = pos {
                    if let Some(e) = self.rob.get_mut(pos) {
                        debug_assert_eq!(e.kind, EntryKind::Load);
                        e.done_at = self.cycle;
                        self.inflight_loads -= 1;
                    }
                }
            }
            self.completed_buf = completed;

            // 2. Commit.
            let mut commits = 0;
            while commits < self.dispatch_width {
                let Some(head) = self.rob.front() else { break };
                if head.done_at == UNKNOWN || head.done_at > self.cycle {
                    break;
                }
                let head = self.rob.pop_front().expect("front exists");
                let idx = self.rob_base;
                self.rob_base += 1;
                commits += 1;
                self.stats.committed += 1;
                match head.kind {
                    EntryKind::Load => self.stats.loads += 1,
                    EntryKind::Store => {
                        self.stats.stores += 1;
                        self.interface.commit_store(OpId(idx));
                    }
                    EntryKind::Branch { .. } => self.stats.branches += 1,
                    EntryKind::Op { .. } => {}
                }
            }
            if commits > 0 {
                last_commit_cycle = self.cycle;
            }

            // 3. Issue.
            self.issue_cycle();

            // 4. Dispatch.
            if !trace_done {
                trace_done = self.dispatch_cycle(&mut trace);
            }

            // 5. Termination / watchdog.
            if trace_done && self.rob.is_empty() {
                break;
            }
            if self.cycle.saturating_sub(last_commit_cycle) > DEADLOCK_LIMIT {
                panic!(
                    "no commit for {DEADLOCK_LIMIT} cycles at cycle {}: \
                     rob={} inflight={} pending={}",
                    self.cycle,
                    self.rob.len(),
                    self.inflight_loads,
                    self.interface.pending_loads()
                );
            }
            self.cycle += 1;
        }

        self.stats.cycles = self.cycle.max(1);
        self.stats
    }

    fn dep_satisfied(&self, dep: u64) -> bool {
        if dep == NO_DEP || dep < self.rob_base {
            return true;
        }
        let pos = (dep - self.rob_base) as usize;
        match self.rob.get(pos) {
            Some(e) => e.done_at != UNKNOWN && e.done_at <= self.cycle,
            None => true,
        }
    }

    /// One issue pass over the unissued candidate list (program order).
    ///
    /// Behaviorally identical to scanning the whole ROB and skipping issued
    /// entries — committed entries cannot appear here (commit requires a
    /// `done_at`, which only issue or load completion sets), and entries
    /// are appended in dispatch order — but the walk touches only the
    /// entries that can still issue. Entries that issue this cycle are
    /// dropped from the list by in-place compaction; everything else keeps
    /// its (program-order) position.
    fn issue_cycle(&mut self) {
        let mut issued = 0usize;
        let mut alu_used = 0usize;
        let mut load_agus = self.load_only_agus;
        let mut store_agus = self.store_only_agus;
        let mut shared_agus = self.shared_agus;
        let mut agu_stalled = false;
        // Stores allocate store-buffer entries in program order; letting a
        // younger store claim the last SB slot while an older one waits
        // would deadlock the buffer (it drains strictly in order).
        let mut older_store_unissued = false;

        let mut kept = 0usize;
        for u in 0..self.unissued.len() {
            let idx = self.unissued[u];
            // Issue width exhausted: everything further stays a candidate.
            if issued >= self.issue_width {
                self.unissued[kept] = idx;
                kept += 1;
                continue;
            }
            let pos = (idx - self.rob_base) as usize;
            let e = self.rob[pos];
            debug_assert!(!e.issued, "issued entries leave the candidate list");
            let is_store = matches!(e.kind, EntryKind::Store);
            let deps_ok = !(is_store && older_store_unissued)
                && self.dep_satisfied(e.deps[0])
                && self.dep_satisfied(e.deps[1]);
            if !deps_ok {
                if is_store {
                    older_store_unissued = true;
                }
                self.unissued[kept] = idx;
                kept += 1;
                continue;
            }
            let mut did_issue = false;
            match e.kind {
                EntryKind::Op { latency } => {
                    if alu_used < ALU_UNITS {
                        alu_used += 1;
                        let entry = &mut self.rob[pos];
                        entry.issued = true;
                        entry.done_at = self.cycle + u64::from(latency);
                        issued += 1;
                        did_issue = true;
                    }
                }
                EntryKind::Branch { .. } => {
                    let entry = &mut self.rob[pos];
                    entry.issued = true;
                    entry.done_at = self.cycle + 1;
                    issued += 1;
                    did_issue = true;
                    // A mispredicted branch resolves here: schedule the
                    // front-end restart (resolution + refill).
                    if self.fe_blocked_on == Some(idx) {
                        self.fe_blocked_on = None;
                        self.fe_resume_at = self.cycle + 1 + MISPREDICT_REFILL;
                    }
                }
                EntryKind::Load => {
                    if self.inflight_loads < self.lq_entries {
                        // Claim an AGU: prefer a load-only unit.
                        let have_agu = if load_agus > 0 {
                            load_agus -= 1;
                            true
                        } else if shared_agus > 0 {
                            shared_agus -= 1;
                            true
                        } else {
                            false
                        };
                        if have_agu {
                            let op = e.mem.expect("load carries a MemOp");
                            debug_assert_eq!(op.id, OpId(idx));
                            if self.interface.offer_load(op).is_accepted() {
                                let entry = &mut self.rob[pos];
                                entry.issued = true;
                                self.inflight_loads += 1;
                                issued += 1;
                                did_issue = true;
                            } else {
                                // The AGU cycle is wasted (the paper stalls
                                // AGUs when the Input Buffer is full).
                                agu_stalled = true;
                            }
                        }
                    }
                }
                EntryKind::Store => {
                    let have_agu = if store_agus > 0 {
                        store_agus -= 1;
                        true
                    } else if shared_agus > 0 {
                        shared_agus -= 1;
                        true
                    } else {
                        false
                    };
                    if have_agu {
                        let op = e.mem.expect("store carries a MemOp");
                        if self.interface.offer_store(op).is_accepted() {
                            let entry = &mut self.rob[pos];
                            entry.issued = true;
                            entry.done_at = self.cycle + 1;
                            issued += 1;
                            did_issue = true;
                        } else {
                            agu_stalled = true;
                            older_store_unissued = true;
                        }
                    } else {
                        older_store_unissued = true;
                    }
                }
            }
            if !did_issue {
                self.unissued[kept] = idx;
                kept += 1;
            }
        }
        self.unissued.truncate(kept);

        if agu_stalled {
            self.stats.agu_stall_cycles += 1;
        }
        self.stats.issued_ops += issued as u64;
    }

    /// Returns true when the trace is exhausted.
    fn dispatch_cycle(&mut self, trace: &mut impl Iterator<Item = TraceInst>) -> bool {
        // Front-end blocked on an unresolved mispredicted branch, or still
        // refilling after one resolved?
        if self.fe_blocked_on.is_some() || self.cycle < self.fe_resume_at {
            return false;
        }

        for _ in 0..self.dispatch_width {
            if self.rob.len() >= self.rob_size {
                return false;
            }
            let Some(inst) = trace.next() else {
                return true;
            };
            let idx = self.next_idx;
            self.next_idx += 1;
            let dep_of = |d: Option<u32>| match d {
                // A distance reaching before the start of the trace means
                // the producer already executed: no constraint.
                Some(dist) if u64::from(dist) <= idx => idx - u64::from(dist),
                _ => NO_DEP,
            };
            let entry = match inst {
                TraceInst::Op { latency, dep } => RobEntry {
                    kind: EntryKind::Op { latency },
                    mem: None,
                    deps: [dep_of(dep), NO_DEP],
                    done_at: UNKNOWN,
                    issued: false,
                },
                TraceInst::Load {
                    vaddr,
                    size,
                    addr_dep,
                } => RobEntry {
                    kind: EntryKind::Load,
                    mem: Some(MemOp::load(OpId(idx), vaddr, size)),
                    deps: [dep_of(addr_dep), NO_DEP],
                    done_at: UNKNOWN,
                    issued: false,
                },
                TraceInst::Store {
                    vaddr,
                    size,
                    data_dep,
                } => RobEntry {
                    kind: EntryKind::Store,
                    mem: Some(MemOp::store(OpId(idx), vaddr, size)),
                    deps: [dep_of(data_dep), NO_DEP],
                    done_at: UNKNOWN,
                    issued: false,
                },
                TraceInst::Branch { mispredicted, dep } => RobEntry {
                    kind: EntryKind::Branch { mispredicted },
                    mem: None,
                    deps: [dep_of(dep), NO_DEP],
                    done_at: UNKNOWN,
                    issued: false,
                },
            };
            let is_mispredict = matches!(entry.kind, EntryKind::Branch { mispredicted: true });
            self.rob.push_back(entry);
            self.unissued.push(idx);
            if is_mispredict {
                self.fe_blocked_on = Some(idx);
                return false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::AcceptKind;
    use malec_types::addr::VAddr;

    /// Fixed-latency interface: every load completes `latency` cycles after
    /// acceptance; accepts up to `per_cycle` loads per cycle.
    #[derive(Debug)]
    struct FixedLatency {
        latency: u64,
        per_cycle: usize,
        accepted_this_cycle: usize,
        inflight: Vec<(u64, OpId)>,
        cycle: u64,
        commits_seen: Vec<OpId>,
    }

    impl FixedLatency {
        fn new(latency: u64, per_cycle: usize) -> Self {
            Self {
                latency,
                per_cycle,
                accepted_this_cycle: 0,
                inflight: Vec::new(),
                cycle: 0,
                commits_seen: Vec::new(),
            }
        }
    }

    impl L1DataInterface for FixedLatency {
        fn tick(&mut self, cycle: u64, completed: &mut Vec<OpId>) {
            self.cycle = cycle;
            self.accepted_this_cycle = 0;
            self.inflight.retain(|&(due, id)| {
                if due <= cycle {
                    completed.push(id);
                    false
                } else {
                    true
                }
            });
        }

        fn offer_load(&mut self, op: MemOp) -> AcceptKind {
            if self.accepted_this_cycle >= self.per_cycle {
                return AcceptKind::Rejected;
            }
            self.accepted_this_cycle += 1;
            self.inflight.push((self.cycle + self.latency, op.id));
            AcceptKind::Accepted
        }

        fn offer_store(&mut self, _op: MemOp) -> AcceptKind {
            AcceptKind::Accepted
        }

        fn commit_store(&mut self, id: OpId) {
            self.commits_seen.push(id);
        }

        fn pending_loads(&self) -> usize {
            self.inflight.len()
        }
    }

    fn ld(addr: u64) -> TraceInst {
        TraceInst::Load {
            vaddr: VAddr::new(addr),
            size: 4,
            addr_dep: None,
        }
    }

    fn op() -> TraceInst {
        TraceInst::Op {
            latency: 1,
            dep: None,
        }
    }

    fn run_trace(trace: Vec<TraceInst>, iface: FixedLatency) -> (CoreStats, FixedLatency) {
        let mut core = OoOCore::new(&SimConfig::malec(), iface);
        let stats = core.run(trace.into_iter());
        (stats, core.into_interface())
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let (stats, _) = run_trace(vec![], FixedLatency::new(3, 4));
        assert_eq!(stats.committed, 0);
        assert!(stats.cycles <= 2);
    }

    #[test]
    fn commits_everything_in_order() {
        let trace: Vec<TraceInst> = (0..100)
            .map(|i| if i % 3 == 0 { ld(0x1000 + i * 8) } else { op() })
            .collect();
        let (stats, iface) = run_trace(trace, FixedLatency::new(3, 4));
        assert_eq!(stats.committed, 100);
        assert_eq!(stats.loads, 34);
        assert_eq!(iface.pending_loads(), 0);
    }

    #[test]
    fn store_commit_is_notified() {
        let trace = vec![
            TraceInst::Store {
                vaddr: VAddr::new(0x2000),
                size: 4,
                data_dep: None,
            },
            op(),
        ];
        let (stats, iface) = run_trace(trace, FixedLatency::new(2, 4));
        assert_eq!(stats.stores, 1);
        assert_eq!(iface.commits_seen, vec![OpId(0)]);
    }

    #[test]
    fn dependent_ops_wait_for_load_latency() {
        // load -> dependent op chain: each pair costs >= load latency.
        let mut trace = Vec::new();
        for i in 0..50 {
            trace.push(TraceInst::Load {
                vaddr: VAddr::new(0x1000 + i * 64),
                size: 4,
                // Each load's address depends on the previous op, which
                // depends on the previous load: a fully serial chain.
                addr_dep: Some(1),
            });
            trace.push(TraceInst::Op {
                latency: 1,
                dep: Some(1),
            });
        }
        let slow = run_trace(trace.clone(), FixedLatency::new(10, 4)).0;
        let fast = run_trace(trace, FixedLatency::new(2, 4)).0;
        assert!(
            slow.cycles > fast.cycles + 100,
            "long load latency must slow a dependent chain: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn independent_loads_overlap() {
        // 100 independent loads with 10-cycle latency but 4 per cycle:
        // should take far less than 100 * 10 cycles.
        let trace: Vec<TraceInst> = (0..100).map(|i| ld(0x1000 + i * 64)).collect();
        let (stats, _) = run_trace(trace, FixedLatency::new(10, 4));
        assert!(stats.cycles < 200, "loads must pipeline: {}", stats.cycles);
    }

    #[test]
    fn acceptance_limit_throttles() {
        let trace: Vec<TraceInst> = (0..300).map(|i| ld(0x1000 + i * 64)).collect();
        let wide = run_trace(trace.clone(), FixedLatency::new(2, 4)).0;
        let narrow = run_trace(trace, FixedLatency::new(2, 1)).0;
        assert!(
            narrow.cycles > wide.cycles * 2,
            "1/cycle acceptance must throttle: {} vs {}",
            narrow.cycles,
            wide.cycles
        );
        assert!(narrow.agu_stall_cycles > 0);
    }

    #[test]
    fn mispredicted_branch_stalls_frontend() {
        let mut with_miss = Vec::new();
        let mut without = Vec::new();
        for _ in 0..50 {
            with_miss.push(TraceInst::Branch {
                mispredicted: true,
                dep: None,
            });
            without.push(TraceInst::Branch {
                mispredicted: false,
                dep: None,
            });
            for _ in 0..5 {
                with_miss.push(op());
                without.push(op());
            }
        }
        let a = run_trace(with_miss, FixedLatency::new(2, 4)).0;
        let b = run_trace(without, FixedLatency::new(2, 4)).0;
        assert!(
            a.cycles > b.cycles + 100,
            "mispredictions must cost cycles: {} vs {}",
            a.cycles,
            b.cycles
        );
    }

    #[test]
    fn rob_capacity_limits_overlap() {
        // A very long-latency load at the head; the ROB (168) fills behind it.
        let mut trace = vec![ld(0x1000)];
        for _ in 0..400 {
            trace.push(op());
        }
        let (stats, _) = run_trace(trace, FixedLatency::new(80, 4));
        // All 400 ops are independent; without ROB limits the run would be
        // ~80 cycles. The 168-entry ROB forces the tail to wait.
        assert!(stats.cycles >= 80 + (400 - 168) / 6);
        assert_eq!(stats.committed, 401);
    }

    #[test]
    fn ipc_is_computed() {
        let trace: Vec<TraceInst> = (0..600).map(|_| op()).collect();
        let (stats, _) = run_trace(trace, FixedLatency::new(2, 4));
        let ipc = stats.ipc();
        assert!(
            ipc > 3.0,
            "independent ops should flow near dispatch width: {ipc}"
        );
        assert!(ipc <= 6.01);
    }
}
