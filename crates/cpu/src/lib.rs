//! Cycle-level out-of-order core model — the gem5 substitute's CPU side.
//!
//! The paper extends gem5 for cycle-level evaluation of the L1 data
//! interface. The properties its results depend on are (a) the Table II core
//! parameters (168-entry ROB, 6-wide fetch/dispatch, 8-wide issue, 40-entry
//! LQ), (b) the per-configuration address-computation capability (Table I),
//! and (c) the interaction between load completion latency and dependent
//! instructions. This crate models exactly that: a trace-driven out-of-order
//! engine with dispatch/issue/commit stages, dependency wakeup, AGU
//! arbitration, and a pluggable [`L1DataInterface`] (implemented three ways
//! in `malec-core`).
//!
//! What is deliberately *not* modelled (identically for every configuration,
//! so normalized comparisons are unaffected): instruction caches, detailed
//! functional units, register renaming beyond dependency distances, and
//! multi-core effects (the paper analyzes a single core, Sec. VI-D).
//!
//! * [`engine`] — the out-of-order core ([`OoOCore`], [`CoreStats`]);
//! * [`interface`] — the [`L1DataInterface`] trait and completion records.
//!
//! [`OoOCore`]: engine::OoOCore
//! [`CoreStats`]: engine::CoreStats
//! [`L1DataInterface`]: interface::L1DataInterface

pub mod engine;
pub mod interface;

pub use engine::{CoreStats, OoOCore};
pub use interface::{AcceptKind, L1DataInterface};
