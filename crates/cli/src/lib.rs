//! `malec-cli` — the TOML-driven scenario sweep runner.
//!
//! The library side holds everything the binary does, so it is testable
//! without spawning processes:
//!
//! * [`toml`] — the minimal TOML parser (the vendored serde is an
//!   API-shape stub, so parsing is hand-rolled here);
//! * [`spec`] — the `[scenario]` / `[sweep]` / `[report]` spec model;
//! * [`report`] — JSON report emission, shape-compatible with
//!   `BENCH_simulator.json`;
//! * [`run`] — the record → sweep → replay-verify pipeline.

pub mod report;
pub mod run;
pub mod spec;
pub mod toml;
