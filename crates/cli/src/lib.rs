//! `malec-cli` — the TOML-driven scenario sweep runner and `malec-serve`
//! client.
//!
//! The spec language, TOML parser and report schema moved to `malec-serve`
//! in PR 3 (a submitted job *is* a spec, so the service owns the format);
//! they are re-exported here under their historical paths. What remains
//! native to this crate:
//!
//! * [`run`] — the local record → sweep → replay-verify pipeline behind
//!   `malec-cli run`;
//! * [`compare`] — the paired-seed comparison pipeline behind `malec-cli
//!   compare` (shared-seed deltas, paired CIs, win/loss/tie verdicts);
//! * the binary's `serve` / `submit` / `status` subcommands, thin wrappers
//!   over [`malec_serve::server`] and [`malec_serve::client`].

pub mod compare;
pub mod run;

pub use malec_serve::report;
pub use malec_serve::spec;
pub use malec_serve::toml;
