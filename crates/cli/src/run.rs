//! The record → sweep → replay-verify pipeline behind `malec-cli run`.
//!
//! One spec run does four things, in order:
//!
//! 1. **Record** — generate the scenario's instruction stream once and
//!    stream it into the spec's `.mtr` file;
//! 2. **Sweep** — fan the configurations out over [`parallel_map_with`]
//!    (capped by the operator's `--jobs N`, if given), each cell simulating
//!    the *generator* stream;
//! 3. **Replay-verify** — each cell also simulates the recorded `.mtr`
//!    stream and both summaries are digested: replay must be bit-identical
//!    to generation, every cell, every config;
//! 4. **Report** — write the JSON report next to the spec's `out` path.

use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::time::Instant;

use malec_core::parallel::{parallel_map_with, workers_for};
use malec_core::{ScenarioSource, Simulator};
use malec_trace::TraceWriter;

use malec_serve::report::{render, CellResult};
use malec_serve::spec::{parse_spec, SweepSpec};

/// Everything a finished spec run produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The resolved spec.
    pub spec: SweepSpec,
    /// Per-config results in spec order.
    pub cells: Vec<CellResult>,
    /// Workers the parallel fan-out actually used.
    pub workers: usize,
    /// Wall-clock of the sweep (record and report excluded).
    pub wall_seconds: f64,
    /// Where the trace was recorded.
    pub mtr_path: PathBuf,
    /// Where the JSON report was written.
    pub out_path: PathBuf,
}

impl SweepOutcome {
    /// Whether every cell's replay digest matched its generator digest.
    pub fn all_replays_match(&self) -> bool {
        self.cells.iter().all(CellResult::replay_matches)
    }
}

/// Records `spec`'s scenario stream to `path` (streaming; the trace is
/// never held in memory).
///
/// # Errors
///
/// Propagates file-creation and write errors, naming the path.
pub fn record_trace(spec: &SweepSpec, path: &Path) -> Result<u64, String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    let file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut writer = TraceWriter::new(BufWriter::new(file))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    for inst in spec.scenario.generator(spec.seed).take(spec.insts as usize) {
        writer
            .write(inst)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    let written = writer.written();
    writer
        .finish()
        .map_err(|e| format!("flush {}: {e}", path.display()))?;
    Ok(written)
}

/// Runs a parsed spec end to end. Paths in the spec are resolved relative
/// to `base_dir` (the process working directory for the CLI). `jobs` caps
/// the parallel fan-out (`None` uses every available core; results are
/// bit-identical at any cap).
///
/// # Errors
///
/// Returns a descriptive message on I/O failure. A replay-digest mismatch
/// is **not** an early error — the report records it and the caller decides
/// (the CLI exits nonzero so CI catches it).
pub fn run_parsed_spec(
    spec: SweepSpec,
    spec_path: &str,
    base_dir: &Path,
    jobs: Option<usize>,
) -> Result<SweepOutcome, String> {
    let mtr_path = base_dir.join(&spec.mtr);
    let out_path = base_dir.join(&spec.out);
    record_trace(&spec, &mtr_path)?;

    let replay = ScenarioSource::Replay {
        name: spec.scenario.name.clone(),
        path: mtr_path.clone(),
    };
    let generate = ScenarioSource::Scenario(spec.scenario.clone());
    let configs = spec.configs.clone();
    let workers = workers_for(configs.len(), jobs);
    let t = Instant::now();
    let cells: Vec<Result<CellResult, String>> = parallel_map_with(
        configs,
        |cfg| {
            let sim = Simulator::new(cfg.clone());
            let generated = sim
                .run_source(&generate, spec.insts, spec.seed)
                .map_err(|e| format!("{}: generator run: {e}", cfg.label()))?;
            let replayed = sim
                .run_source(&replay, spec.insts, spec.seed)
                .map_err(|e| format!("{}: replay run: {e}", cfg.label()))?;
            Ok(CellResult::new(generated, &replayed))
        },
        workers,
    );
    let wall_seconds = t.elapsed().as_secs_f64();
    let cells: Vec<CellResult> = cells.into_iter().collect::<Result<_, _>>()?;

    let json = render(
        spec_path,
        &spec.scenario.name,
        &spec.scenario.segment_labels(),
        &spec.mtr,
        spec.insts,
        spec.seed,
        workers,
        wall_seconds,
        &cells,
    );
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    std::fs::write(&out_path, &json).map_err(|e| format!("write {}: {e}", out_path.display()))?;

    Ok(SweepOutcome {
        spec,
        cells,
        workers,
        wall_seconds,
        mtr_path,
        out_path,
    })
}

/// Reads and runs a spec file. `jobs` caps the fan-out as in
/// [`run_parsed_spec`].
///
/// # Errors
///
/// Returns a descriptive message for unreadable files, spec errors, and
/// I/O failures during the run.
pub fn run_spec_file(path: &Path, jobs: Option<usize>) -> Result<SweepOutcome, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let spec = parse_spec(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    run_parsed_spec(spec, &path.display().to_string(), Path::new("."), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec(dir: &Path, name: &str) -> SweepSpec {
        let doc = format!(
            "[scenario]\nname = \"{name}\"\nmode = \"mixed\"\nblock = 24\n\
             [[scenario.part]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\nweight = 2\n\
             [[scenario.part]]\nkind = \"store_burst\"\nweight = 1\n\
             [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 3000\nseed = 11\n\
             [report]\nout = \"{name}.json\"\nmtr = \"{name}.mtr\"\n"
        );
        let _ = dir; // paths are resolved by run_parsed_spec's base_dir
        parse_spec(&doc).expect("demo spec parses")
    }

    #[test]
    fn end_to_end_replay_is_bit_identical() {
        let dir = std::env::temp_dir().join("malec_cli_run_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let spec = demo_spec(&dir, "cli_e2e");
        let outcome = run_parsed_spec(spec, "inline", &dir, None).expect("run succeeds");
        assert_eq!(outcome.cells.len(), 2);
        assert!(outcome.all_replays_match(), "replay must be bit-identical");
        assert!(outcome.workers >= 1);
        assert!(outcome.mtr_path.exists());
        let json = std::fs::read_to_string(&outcome.out_path).expect("report written");
        assert!(json.contains("\"replay_matches_generator\": true"));
        assert!(json.contains("malec_scenario_sweep"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_trace_counts_records() {
        let dir = std::env::temp_dir().join("malec_cli_record_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let spec = demo_spec(&dir, "cli_record");
        let path = dir.join("t.mtr");
        let written = record_trace(&spec, &path).expect("record");
        assert_eq!(written, 3000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_spec_is_a_clean_error() {
        let e = run_spec_file(Path::new("/nonexistent/spec.toml"), None).expect_err("must fail");
        assert!(e.contains("spec.toml"), "{e}");
    }

    #[test]
    fn jobs_cap_does_not_change_results() {
        let dir = std::env::temp_dir().join("malec_cli_jobs_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let free = run_parsed_spec(demo_spec(&dir, "cli_jobs_a"), "inline", &dir, None)
            .expect("uncapped run");
        let capped = run_parsed_spec(demo_spec(&dir, "cli_jobs_a"), "inline", &dir, Some(1))
            .expect("capped run");
        assert_eq!(capped.workers, 1, "the cap is honored");
        for (f, c) in free.cells.iter().zip(&capped.cells) {
            assert_eq!(f.digest, c.digest, "fan-out must not leak into results");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
