//! The record → sweep → replay-verify pipeline behind `malec-cli run`.
//!
//! One spec run does four things, in order:
//!
//! 1. **Record** — generate the scenario's instruction stream once (under
//!    the base seed) and stream it into the spec's `.mtr` file;
//! 2. **Sweep** — fan `(configuration, replicate)` cells out over
//!    [`parallel_map_with`] (capped by the operator's `--jobs N`, if
//!    given); replicate `i` simulates the generator stream under
//!    `replicate_seed(seed, i)`, and with a `ci_target` a configuration
//!    stops spawning replicates once the target metric's relative 95 % CI
//!    half-width converges (never before `min_seeds`);
//! 3. **Replay-verify** — replicate 0 of each configuration (the recorded
//!    seed) also simulates the `.mtr` stream and both summaries are
//!    digested: replay must be bit-identical to generation, every config;
//! 4. **Report** — write the JSON report (single-seed columns from
//!    replicate 0, mean ± CI per metric when `seeds > 1`) next to the
//!    spec's `out` path.

use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::time::Instant;

use malec_core::parallel::workers_for;
use malec_core::stats::{replicate_seed, ReplicateStats};
use malec_core::sweep::replicate_rounds;
use malec_core::{RunSummary, ScenarioSource, Simulator};
use malec_trace::TraceWriter;

use malec_serve::report::{render, CellResult, ReportMeta};
use malec_serve::spec::{parse_spec, SweepSpec};

/// Everything a finished spec run produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The resolved spec.
    pub spec: SweepSpec,
    /// Per-config results in spec order (replicate 0 carries the
    /// single-seed columns; `stats` the replicate distribution).
    pub cells: Vec<CellResult>,
    /// Every replicate summary, config-major, replicate order (index 0 is
    /// the legacy seed path).
    pub replicates: Vec<Vec<RunSummary>>,
    /// Workers the parallel fan-out actually used.
    pub workers: usize,
    /// Wall-clock of the sweep (record and report excluded).
    pub wall_seconds: f64,
    /// Where the trace was recorded.
    pub mtr_path: PathBuf,
    /// Where the JSON report was written.
    pub out_path: PathBuf,
}

impl SweepOutcome {
    /// Whether every cell's replay digest matched its generator digest.
    pub fn all_replays_match(&self) -> bool {
        self.cells.iter().all(CellResult::replay_matches)
    }
}

/// Records `spec`'s scenario stream to `path` (streaming; the trace is
/// never held in memory).
///
/// # Errors
///
/// Propagates file-creation and write errors, naming the path.
pub fn record_trace(spec: &SweepSpec, path: &Path) -> Result<u64, String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    let file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut writer = TraceWriter::new(BufWriter::new(file))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    for inst in spec.scenario.generator(spec.seed).take(spec.insts as usize) {
        writer
            .write(inst)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    let written = writer.written();
    writer
        .finish()
        .map_err(|e| format!("flush {}: {e}", path.display()))?;
    Ok(written)
}

/// Runs a parsed spec end to end. Paths in the spec are resolved relative
/// to `base_dir` (the process working directory for the CLI). `jobs` caps
/// the parallel fan-out (`None` uses every available core; results are
/// bit-identical at any cap).
///
/// # Errors
///
/// Returns a descriptive message on I/O failure. A replay-digest mismatch
/// is **not** an early error — the report records it and the caller decides
/// (the CLI exits nonzero so CI catches it).
pub fn run_parsed_spec(
    spec: SweepSpec,
    spec_path: &str,
    base_dir: &Path,
    jobs: Option<usize>,
) -> Result<SweepOutcome, String> {
    let mtr_path = base_dir.join(&spec.mtr);
    let out_path = base_dir.join(&spec.out);
    record_trace(&spec, &mtr_path)?;

    let replay = ScenarioSource::Replay {
        name: spec.scenario.name.clone(),
        path: mtr_path.clone(),
    };
    let generate = ScenarioSource::Scenario(spec.scenario.clone());
    let configs = spec.configs.clone();
    let rep = spec.replication;
    let workers = workers_for(configs.len() * rep.initial_count() as usize, jobs);
    let t = Instant::now();

    // Shared round-based replicate driver (see `replicate_rounds`): each
    // replicate produces its generator summary, and replicate 0 — the
    // recorded seed — additionally verifies the .mtr replay reproduces the
    // generator stream bit for bit. The per-config count is a pure
    // function of the ordered replicate prefix, so results are
    // bit-identical at any --jobs cap.
    let rounds: Vec<Vec<(RunSummary, Option<RunSummary>)>> = replicate_rounds(
        configs.len(),
        &rep,
        jobs,
        |c, r| {
            let cfg = &configs[c];
            let sim = Simulator::new(cfg.clone());
            let seed = replicate_seed(spec.seed, r);
            let generated = sim
                .run_source(&generate, spec.insts, seed)
                .map_err(|e| format!("{}: generator run: {e}", cfg.label()))?;
            let replayed = if r == 0 {
                Some(
                    sim.run_source(&replay, spec.insts, seed)
                        .map_err(|e| format!("{}: replay run: {e}", cfg.label()))?,
                )
            } else {
                None
            };
            Ok::<_, String>((generated, replayed))
        },
        |pair| &pair.0,
    )?;
    let wall_seconds = t.elapsed().as_secs_f64();

    let mut replicates: Vec<Vec<RunSummary>> = Vec::with_capacity(configs.len());
    let mut cells: Vec<CellResult> = Vec::with_capacity(configs.len());
    for pairs in rounds {
        let replayed = pairs[0].1.clone().expect("replicate 0 always replays");
        let reps: Vec<RunSummary> = pairs.into_iter().map(|(generated, _)| generated).collect();
        let cell = CellResult::new(reps[0].clone(), &replayed);
        cells.push(if rep.replicated() {
            cell.with_stats(ReplicateStats::from_replicates(&reps, rep.seeds))
        } else {
            cell
        });
        replicates.push(reps);
    }

    let json = render(
        &ReportMeta {
            spec_path,
            scenario: &spec.scenario.name,
            segments: &spec.scenario.segment_labels(),
            mtr_path: &spec.mtr,
            insts: spec.insts,
            seed: spec.seed,
            seeds: rep.seeds,
            workers,
            wall_seconds,
        },
        &cells,
    );
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    std::fs::write(&out_path, &json).map_err(|e| format!("write {}: {e}", out_path.display()))?;

    Ok(SweepOutcome {
        spec,
        cells,
        replicates,
        workers,
        wall_seconds,
        mtr_path,
        out_path,
    })
}

/// Reads and runs a spec file. `jobs` caps the fan-out as in
/// [`run_parsed_spec`].
///
/// # Errors
///
/// Returns a descriptive message for unreadable files, spec errors, and
/// I/O failures during the run.
pub fn run_spec_file(path: &Path, jobs: Option<usize>) -> Result<SweepOutcome, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let spec = parse_spec(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    run_parsed_spec(spec, &path.display().to_string(), Path::new("."), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec(dir: &Path, name: &str) -> SweepSpec {
        let doc = format!(
            "[scenario]\nname = \"{name}\"\nmode = \"mixed\"\nblock = 24\n\
             [[scenario.part]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\nweight = 2\n\
             [[scenario.part]]\nkind = \"store_burst\"\nweight = 1\n\
             [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 3000\nseed = 11\n\
             [report]\nout = \"{name}.json\"\nmtr = \"{name}.mtr\"\n"
        );
        let _ = dir; // paths are resolved by run_parsed_spec's base_dir
        parse_spec(&doc).expect("demo spec parses")
    }

    #[test]
    fn end_to_end_replay_is_bit_identical() {
        let dir = std::env::temp_dir().join("malec_cli_run_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let spec = demo_spec(&dir, "cli_e2e");
        let outcome = run_parsed_spec(spec, "inline", &dir, None).expect("run succeeds");
        assert_eq!(outcome.cells.len(), 2);
        assert!(outcome.all_replays_match(), "replay must be bit-identical");
        assert!(outcome.workers >= 1);
        assert!(outcome.mtr_path.exists());
        let json = std::fs::read_to_string(&outcome.out_path).expect("report written");
        assert!(json.contains("\"replay_matches_generator\": true"));
        assert!(json.contains("malec_scenario_sweep"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_trace_counts_records() {
        let dir = std::env::temp_dir().join("malec_cli_record_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let spec = demo_spec(&dir, "cli_record");
        let path = dir.join("t.mtr");
        let written = record_trace(&spec, &path).expect("record");
        assert_eq!(written, 3000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_spec_is_a_clean_error() {
        let e = run_spec_file(Path::new("/nonexistent/spec.toml"), None).expect_err("must fail");
        assert!(e.contains("spec.toml"), "{e}");
    }

    #[test]
    fn jobs_cap_does_not_change_results() {
        let dir = std::env::temp_dir().join("malec_cli_jobs_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let free = run_parsed_spec(demo_spec(&dir, "cli_jobs_a"), "inline", &dir, None)
            .expect("uncapped run");
        let capped = run_parsed_spec(demo_spec(&dir, "cli_jobs_a"), "inline", &dir, Some(1))
            .expect("capped run");
        assert_eq!(capped.workers, 1, "the cap is honored");
        for (f, c) in free.cells.iter().zip(&capped.cells) {
            assert_eq!(f.digest, c.digest, "fan-out must not leak into results");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
