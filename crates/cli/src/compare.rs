//! The paired-comparison pipeline behind `malec-cli compare`.
//!
//! Where `run` sweeps every configuration marginally (record → sweep →
//! replay-verify → report), `compare` runs exactly two interfaces —
//! baseline and candidate — over **shared replicate seeds** and reports the
//! per-seed *deltas*: mean ± paired CI, relative improvement over the
//! baseline, and a win/loss/tie verdict per metric at the spec's alpha.
//!
//! Both sides simulate the generator stream directly (no `.mtr` recording
//! pass — the cells are exactly what the `malec-serve` scheduler would
//! simulate for the same spec, which is what makes a local `compare`
//! bit-identical to `GET /v1/jobs/<id>/compare` on a submitted copy).
//! Under a `ci_target` the pair stops spawning shared seeds once the
//! paired CI half-width on the target metric's delta converges — the
//! stopping rule is a pure function of the ordered pair prefix, so serial,
//! `--jobs N`, and server runs all stop at identical counts.

use std::path::{Path, PathBuf};
use std::time::Instant;

use malec_core::compare::{paired_rounds, CompareStats, PairSide};
use malec_core::parallel::workers_for;
use malec_core::stats::replicate_seed;
use malec_core::{RunSummary, ScenarioSource, Simulator};

use malec_serve::report::{render_compare, CompareReportMeta};
use malec_serve::spec::{parse_spec, SweepSpec};

/// Everything a finished comparison produced.
#[derive(Debug)]
pub struct CompareOutcome {
    /// The resolved spec.
    pub spec: SweepSpec,
    /// The aggregated delta blocks.
    pub stats: CompareStats,
    /// Baseline replicate summaries, replicate order.
    pub baseline: Vec<RunSummary>,
    /// Candidate replicate summaries, replicate order.
    pub candidate: Vec<RunSummary>,
    /// Workers the parallel fan-out actually used.
    pub workers: usize,
    /// Wall-clock of the paired sweep (report excluded).
    pub wall_seconds: f64,
    /// The rendered compare-report JSON.
    pub json: String,
    /// Where the JSON report was written.
    pub out_path: PathBuf,
}

/// Runs a parsed spec's paired comparison end to end. The spec's
/// `[compare]` section picks the pair (defaulting to Base1ldst vs MALEC at
/// `alpha = 0.05`); paths resolve relative to `base_dir`; `jobs` caps the
/// fan-out (`None` uses every core; results are bit-identical at any cap).
///
/// # Errors
///
/// Returns a descriptive message when the spec has no resolvable pair
/// (missing configs, single seed), when a workload source fails, or on
/// I/O failure writing the report.
pub fn compare_parsed_spec(
    spec: SweepSpec,
    spec_path: &str,
    base_dir: &Path,
    jobs: Option<usize>,
) -> Result<CompareOutcome, String> {
    let resolved = spec.resolve_compare().map_err(|e| e.to_string())?;
    let source = ScenarioSource::Scenario(spec.scenario.clone());
    let rep = spec.replication;
    let workers = workers_for(2 * rep.initial_count() as usize, jobs);
    let t = Instant::now();
    let (baseline, candidate) = paired_rounds(
        &rep,
        resolved.alpha,
        jobs,
        |side, r| {
            let cfg = match side {
                PairSide::Baseline => &spec.configs[resolved.baseline],
                PairSide::Candidate => &spec.configs[resolved.candidate],
            };
            Simulator::new(cfg.clone())
                .run_source(&source, spec.insts, replicate_seed(spec.seed, r))
                .map_err(|e| format!("{}: generator run: {e}", cfg.label()))
        },
        |s| s,
    )?;
    let wall_seconds = t.elapsed().as_secs_f64();
    let stats = CompareStats::from_pairs(&baseline, &candidate, rep.seeds, resolved.alpha);
    let json = render_compare(
        &CompareReportMeta {
            spec_path,
            scenario: &spec.scenario.name,
            segments: &spec.scenario.segment_labels(),
            insts: spec.insts,
            seed: spec.seed,
            seeds: rep.seeds,
            workers,
            wall_seconds,
        },
        &stats,
    );
    let out_path = base_dir.join(&spec.compare_out);
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    std::fs::write(&out_path, &json).map_err(|e| format!("write {}: {e}", out_path.display()))?;
    Ok(CompareOutcome {
        spec,
        stats,
        baseline,
        candidate,
        workers,
        wall_seconds,
        json,
        out_path,
    })
}

/// Reads and compares a spec file. `jobs` caps the fan-out as in
/// [`compare_parsed_spec`].
///
/// # Errors
///
/// Returns a descriptive message for unreadable files, spec errors, and
/// failures during the comparison.
pub fn compare_spec_file(path: &Path, jobs: Option<usize>) -> Result<CompareOutcome, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let spec = parse_spec(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    compare_parsed_spec(spec, &path.display().to_string(), Path::new("."), jobs)
}

/// Renders one delta block as the `compare` stdout line: signed delta ±
/// CI, relative %, and the oriented verdict.
#[must_use]
pub fn delta_line(name: &str, d: &malec_core::compare::DeltaSummary) -> String {
    let ci = d.ci.map_or_else(|| "n/a".to_owned(), |w| format!("{w:.5}"));
    let rel = d
        .relative
        .map_or_else(String::new, |r| format!("  ({:+.2}%)", 100.0 * r));
    format!(
        "  {name:<18} {:>10.4} -> {:>10.4}  delta {:+.5} ± {ci}{rel}  {}",
        d.baseline_mean,
        d.candidate_mean,
        d.delta_mean,
        d.verdict.name().to_uppercase(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_core::compare::Verdict;

    fn demo_spec(seeds: u32, extra: &str) -> SweepSpec {
        let doc = format!(
            "[scenario]\nname = \"cmp\"\nmode = \"mixed\"\nblock = 24\n\
             [[scenario.part]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\nweight = 2\n\
             [[scenario.part]]\nkind = \"store_burst\"\nweight = 1\n\
             [compare]\nbaseline = \"Base1ldst\"\ncandidate = \"MALEC\"\n\
             [sweep]\ninsts = 3000\nseed = 11\nseeds = {seeds}\n{extra}\
             [report]\ncompare = \"cmp_compare.json\"\n"
        );
        parse_spec(&doc).expect("demo spec parses")
    }

    #[test]
    fn compare_runs_end_to_end_and_pairs_share_seeds() {
        let dir = std::env::temp_dir().join("malec_cli_compare_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let outcome =
            compare_parsed_spec(demo_spec(4, ""), "inline", &dir, None).expect("compare runs");
        assert_eq!(outcome.baseline.len(), 4);
        assert_eq!(outcome.candidate.len(), 4);
        assert_eq!(outcome.stats.n, 4);
        // Shared seeds: both sides simulated the same generated stream, so
        // the committed instruction counts match pairwise.
        for (b, c) in outcome.baseline.iter().zip(&outcome.candidate) {
            assert_eq!(b.core.committed, c.core.committed);
        }
        let json = std::fs::read_to_string(&outcome.out_path).expect("report written");
        assert!(json.contains("\"bench\": \"malec_compare\""));
        assert!(json.contains("\"verdict\""));
        // MALEC against the 1-port baseline on a load-rich mix: the IPC
        // delta is positive and certified (the paper's headline).
        let ipc = outcome.stats.metric("ipc").expect("ipc");
        assert!(ipc.delta_mean > 0.0, "MALEC must out-run Base1ldst");
        assert_eq!(ipc.verdict, Verdict::Win);
        // The line renderer carries the verdict and both means.
        let line = delta_line("ipc", ipc);
        assert!(line.contains("WIN") && line.contains("delta +"), "{line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_is_bit_identical_at_any_jobs_cap() {
        let dir = std::env::temp_dir().join("malec_cli_compare_jobs");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let serial =
            compare_parsed_spec(demo_spec(4, ""), "inline", &dir, Some(1)).expect("serial");
        let parallel =
            compare_parsed_spec(demo_spec(4, ""), "inline", &dir, None).expect("parallel");
        assert_eq!(
            malec_core::compare::compare_digest(&serial.stats),
            malec_core::compare::compare_digest(&parallel.stats),
            "fan-out must not leak into the deltas"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unresolvable_compare_is_a_clean_error() {
        // seeds = 1 cannot carry a paired interval; parse_spec rejects the
        // explicit section, and a plain single-seed spec fails at resolve.
        let doc = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n";
        let spec = parse_spec(doc).expect("plain spec parses");
        let e = compare_parsed_spec(spec, "inline", Path::new("."), None).expect_err("must fail");
        assert!(e.contains("`seeds` >= 2"), "{e}");
    }
}
