//! `malec-cli` — compose workloads from a TOML spec, sweep configurations,
//! record/replay `.mtr` traces, and emit JSON reports.
//!
//! ```text
//! malec-cli run <spec.toml>                 record + sweep + replay-verify + report
//! malec-cli record <spec.toml> [-o F.mtr]   record the scenario stream only
//! malec-cli replay <F.mtr> [--config L] [--insts N] [--seed N]
//! malec-cli presets                         list the built-in scenarios
//! ```
//!
//! Exit status is nonzero on any error **and** on a replay-digest mismatch,
//! so CI can gate on `run`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use malec_bench::goldens::digest;
use malec_cli::run::{record_trace, run_spec_file};
use malec_cli::spec::parse_spec;
use malec_core::{ScenarioSource, Simulator};
use malec_trace::scenario::presets;
use malec_types::SimConfig;

fn usage() -> String {
    "usage:\n  malec-cli run <spec.toml>\n  malec-cli record <spec.toml> [-o out.mtr]\n  malec-cli replay <trace.mtr> [--config LABEL] [--insts N] [--seed N] [--name NAME]\n  malec-cli presets\n\nThe replay digest folds the workload name; pass --name <scenario name>\n(the [scenario] name the trace was recorded under) to make it comparable\nwith the digests in a `run` report."
        .to_owned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("malec-cli: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(args.get(1).ok_or_else(usage)?),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("presets") => {
            cmd_presets();
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn cmd_run(spec_path: &str) -> Result<(), String> {
    let outcome = run_spec_file(Path::new(spec_path))?;
    println!(
        "scenario {} ({}): {} cells x {} insts, {} worker(s), {:.3}s",
        outcome.spec.scenario.name,
        outcome.spec.scenario.segment_labels().join(" + "),
        outcome.cells.len(),
        outcome.spec.insts,
        outcome.workers,
        outcome.wall_seconds,
    );
    for cell in &outcome.cells {
        let s = &cell.generated;
        println!(
            "  {:<22} cycles {:>9}  ipc {:>5.2}  l1miss {:>6.3}  coverage {:>5.1}%  replay {}",
            s.config,
            s.core.cycles,
            s.core.ipc(),
            s.l1_miss_rate,
            100.0 * s.interface.coverage(),
            if cell.replay_matches() {
                "ok"
            } else {
                "MISMATCH"
            },
        );
    }
    println!(
        "  trace  -> {}\n  report -> {}",
        outcome.mtr_path.display(),
        outcome.out_path.display()
    );
    if outcome.all_replays_match() {
        Ok(())
    } else {
        Err("replayed .mtr run diverged from the generator run".to_owned())
    }
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let spec_path = args.first().ok_or_else(usage)?;
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
    let spec = parse_spec(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    let out = match args.iter().position(|a| a == "-o") {
        Some(i) => PathBuf::from(args.get(i + 1).ok_or_else(usage)?),
        None => PathBuf::from(&spec.mtr),
    };
    let written = record_trace(&spec, &out)?;
    println!(
        "recorded {written} instructions of `{}` (seed {}) -> {}",
        spec.scenario.name,
        spec.seed,
        out.display()
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let trace = args.first().ok_or_else(usage)?;
    let mut config = SimConfig::malec();
    let mut insts = u64::MAX;
    let mut seed = malec_cli::spec::DEFAULT_SEED;
    let mut name: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--name" => {
                name = Some(args.get(i + 1).ok_or_else(usage)?.clone());
                i += 2;
            }
            "--config" => {
                let label = args.get(i + 1).ok_or_else(usage)?;
                config = SimConfig::by_label(label)
                    .ok_or_else(|| format!("unknown config `{label}`"))?;
                i += 2;
            }
            "--insts" => {
                insts = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(usage)?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(usage)?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    // The digest folds the workload name, so default to the file stem but
    // let --name restore the recorded scenario's name for bit-identity
    // checks against a `run` report.
    let name = name.unwrap_or_else(|| {
        Path::new(trace)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "replay".to_owned())
    });
    let source = ScenarioSource::Replay {
        name,
        path: PathBuf::from(trace),
    };
    let summary = Simulator::new(config)
        .run_source(&source, insts, seed)
        .map_err(|e| e.to_string())?;
    println!(
        "{} / {}: {} insts in {} cycles (ipc {:.2}), l1 miss {:.3}, energy {:.1}, digest {:#018x}",
        summary.benchmark,
        summary.config,
        summary.core.committed,
        summary.core.cycles,
        summary.core.ipc(),
        summary.l1_miss_rate,
        summary.energy.total(),
        digest(&summary),
    );
    Ok(())
}

fn cmd_presets() {
    println!("built-in scenarios (use with `mode = \"preset\"`):");
    for s in presets() {
        println!("  {:<26} [{}]", s.name, s.segment_labels().join(" + "));
    }
}
