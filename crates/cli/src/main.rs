//! `malec-cli` — compose workloads from a TOML spec, sweep configurations,
//! record/replay `.mtr` traces, emit JSON reports, and run or drive a
//! `malec-serve` batch service.
//!
//! ```text
//! malec-cli run <spec.toml> [--jobs N]      record + sweep + replay-verify + report
//! malec-cli compare <spec.toml> [--jobs N] [--addr A] [-o OUT]
//!                                           paired MALEC-vs-baseline deltas
//!                                           (local, or via a server with --addr)
//! malec-cli record <spec.toml> [-o F.mtr]   record the scenario stream only
//! malec-cli replay <F.mtr> [--config L] [--insts N] [--seed N]
//! malec-cli presets                         list the built-in scenarios
//! malec-cli serve [--addr A] [--cache F] [--jobs N] [--fsync P]
//!                 [--max-conns N] [--drain-timeout S] [--job-ttl S]
//!                 [--cache-max-bytes N] [--compact-threshold R]
//!                 [--warm-from A] [--peers A,A,...] [--faults SCHED]
//!                                           run the batch service (blocking)
//! malec-cli submit <spec.toml> [--addr A] [-o OUT] [--no-wait] [--retries N]
//!                                           submit the spec to a server
//! malec-cli status [JOB] [--addr A] [--retries N]
//!                                           job status, or cache stats without JOB
//! malec-cli cache compact [--addr A]        rewrite the server's cache log
//! malec-cli cache sync --from A -o FILE     download a server's live records
//! ```
//!
//! Exit status is nonzero on any error **and** on a replay-digest mismatch,
//! so CI can gate on `run`. A spec submitted with `submit` produces a
//! report bit-identical (per cell) to `run` on the same spec — the server
//! just may answer it from its result cache without simulating.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use malec_cli::compare::{compare_parsed_spec, delta_line};
use malec_cli::run::{record_trace, run_spec_file};
use malec_core::digest::digest;
use malec_core::{ScenarioSource, Simulator};
use malec_serve::client::{Client, RetryPolicy};
use malec_serve::http::{request, request_stream};
use malec_serve::json::{parse as parse_json, Value};
use malec_serve::server::{ServeOptions, Server, DEFAULT_ADDR};
use malec_serve::spec::parse_spec;
use malec_serve::{Faults, FsyncPolicy, ResultCache, ShardMap};
use malec_trace::scenario::presets;
use malec_types::SimConfig;

fn usage() -> String {
    "usage:\n  malec-cli run <spec.toml> [--jobs N]\n  malec-cli compare <spec.toml> [--jobs N] [--addr HOST:PORT] [-o report.json] [--retries N]\n  malec-cli record <spec.toml> [-o out.mtr]\n  malec-cli replay <trace.mtr> [--config LABEL] [--insts N] [--seed N] [--name NAME]\n  malec-cli presets\n  malec-cli serve [--addr HOST:PORT] [--cache FILE] [--jobs N] [--fsync always|on-close]\n                  [--max-conns N] [--drain-timeout SECS] [--job-ttl SECS]\n                  [--cache-max-bytes N] [--compact-threshold RATIO]\n                  [--warm-from HOST:PORT] [--peers HOST:PORT,...] [--faults SCHED]\n  malec-cli submit <spec.toml> [--addr HOST:PORT] [-o report.json] [--no-wait] [--retries N]\n  malec-cli status [JOB] [--addr HOST:PORT] [--retries N]\n  malec-cli cache compact [--addr HOST:PORT]\n  malec-cli cache sync --from HOST:PORT -o FILE\n  malec-cli analyze [--root DIR] [--pass NAME]... [--dump-graph]\n                  run the workspace-invariant lints (lock-order,\n                  panic-surface, determinism, failpoint-coverage);\n                  nonzero exit on any finding — see ANALYSIS.md\n\nThe replay digest folds the workload name; pass --name <scenario name>\n(the [scenario] name the trace was recorded under) to make it comparable\nwith the digests in a `run` report.\n\n`compare` pairs the spec's [compare] interfaces per shared replicate seed\nand reports deltas (mean ± paired CI, relative %, win/loss/tie at the\nspec's alpha); with --addr the spec is submitted to a server and the\ndeltas are assembled from its result cache instead of simulating locally.\n\n`serve` hosts the batch service (default address 127.0.0.1:4173); `submit`\nand `status` talk to it. --cache persists the result cache across\nrestarts; --jobs caps worker fan-out everywhere it appears. --fsync sets\nthe cache-log durability policy; --max-conns sheds load above N concurrent\nconnections (503 + Retry-After); --job-ttl expires finished job records;\n--cache-max-bytes bounds resident results (LRU eviction; disk space is\nreclaimed at the next compaction); --compact-threshold RATIO rewrites the\nlog automatically once that fraction of its payload is dead;\n--warm-from pulls a running peer's live records before serving;\n--peers ADDR,ADDR,... (self included) serves as one peer of a sharded\ncluster: every peer derives the same deterministic owner for every cell\nkey (rendezvous hashing — no coordination), a submission to any peer\nscatters config groups to their owners and gathers a report bit-identical\nto a standalone run, and a peer missing a cell it does not own fetches\nthe record from the owner before falling back to simulating locally;\n--faults arms the deterministic failpoint schedule (`name@hit[:param];...`,\nalso read from MALEC_FAULTS) — testing only.\n\n`cache compact` asks a server to rewrite its log keeping only live\nrecords; `cache sync` downloads a server's live record set\n(checksum-verified) into a local log file usable as `serve --cache` for a\nfresh peer.\n\n--retries N retries transport failures and retryable statuses (408/429/5xx)\nwith capped exponential backoff, and resubmits a job whose cells failed\n(completed cells are cached, so only failed work is re-simulated)."
        .to_owned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("malec-cli: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("presets") => {
            cmd_presets();
            Ok(())
        }
        _ => Err(usage()),
    }
}

/// Pulls a `--flag VALUE` pair out of `args`, parsing the value.
fn take_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{flag} needs a value\n{}", usage()));
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value `{value}` for {flag}\n{}", usage()))
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let jobs: Option<usize> = take_flag(&mut args, "--jobs")?;
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };
    let outcome = run_spec_file(Path::new(spec_path), jobs)?;
    let seeds = outcome.spec.replication.seeds;
    println!(
        "scenario {} ({}): {} cells x {} insts x {} seed(s), {} worker(s), {:.3}s",
        outcome.spec.scenario.name,
        outcome.spec.scenario.segment_labels().join(" + "),
        outcome.cells.len(),
        outcome.spec.insts,
        seeds,
        outcome.workers,
        outcome.wall_seconds,
    );
    for cell in &outcome.cells {
        let s = &cell.generated;
        println!(
            "  {:<22} cycles {:>9}  ipc {:>5.2}  l1miss {:>6.3}  coverage {:>5.1}%  replay {}",
            s.config,
            s.core.cycles,
            s.core.ipc(),
            s.l1_miss_rate,
            100.0 * s.interface.coverage(),
            if cell.replay_matches() {
                "ok"
            } else {
                "MISMATCH"
            },
        );
        if let Some(stats) = &cell.stats {
            let ipc = stats.metric("ipc").expect("ipc is always reported");
            let energy = stats
                .metric("energy_per_access")
                .expect("energy_per_access is always reported");
            let ci = |m: &malec_core::stats::MetricSummary| {
                m.ci95
                    .map_or_else(|| "n/a".to_owned(), |w| format!("{w:.4}"))
            };
            println!(
                "  {:<22} {} seed(s): ipc {:.3} ± {}  energy/access {:.4} ± {}{}",
                "",
                stats.n,
                ipc.mean,
                ci(ipc),
                energy.mean,
                ci(energy),
                if stats.saved > 0 {
                    format!("  (early stop saved {} replicate(s))", stats.saved)
                } else {
                    String::new()
                },
            );
        }
    }
    println!(
        "  trace  -> {}\n  report -> {}",
        outcome.mtr_path.display(),
        outcome.out_path.display()
    );
    if outcome.all_replays_match() {
        Ok(())
    } else {
        Err("replayed .mtr run diverged from the generator run".to_owned())
    }
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let jobs: Option<usize> = take_flag(&mut args, "--jobs")?;
    let addr: Option<String> = take_flag(&mut args, "--addr")?;
    let out: Option<String> = take_flag(&mut args, "-o")?;
    let retries: u32 = take_flag(&mut args, "--retries")?.unwrap_or(0);
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };
    if let Some(addr) = addr {
        return cmd_compare_remote(spec_path, &addr, out, retries);
    }
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
    let mut spec = parse_spec(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    if let Some(o) = out {
        // -o overrides the spec's report path outright — one output file,
        // not a stray copy at the default location.
        spec.compare_out = o;
    }
    let outcome = compare_parsed_spec(spec, spec_path, Path::new("."), jobs)?;
    let stats = &outcome.stats;
    let (wins, losses, ties) = stats.tally();
    println!(
        "compare {} ({}): {} vs {} — alpha {}, {}/{} shared seed(s){}, {} worker(s), {:.3}s",
        outcome.spec.scenario.name,
        outcome.spec.scenario.segment_labels().join(" + "),
        stats.candidate,
        stats.baseline,
        stats.alpha.value(),
        stats.n,
        outcome.spec.replication.seeds,
        if stats.saved > 0 {
            format!(" (early stop saved {})", stats.saved)
        } else {
            String::new()
        },
        outcome.workers,
        outcome.wall_seconds,
    );
    for (name, d) in &stats.metrics {
        println!("{}", delta_line(name, d));
    }
    println!("  verdicts: {wins} win(s), {losses} loss(es), {ties} tie(s)");
    println!("  report -> {}", outcome.out_path.display());
    Ok(())
}

/// `compare --addr`: submit the spec to a server and assemble the deltas
/// from its cache-keyed per-replicate cells (a resubmitted spec compares
/// without simulating a single cell).
fn cmd_compare_remote(
    spec_path: &str,
    addr: &str,
    out: Option<String>,
    retries: u32,
) -> Result<(), String> {
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
    // Parse + resolve locally first: a bad pairing should fail with the
    // parser's message before any network round trip.
    let spec = parse_spec(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    spec.resolve_compare().map_err(|e| e.to_string())?;

    let client = Client::new(addr.to_owned()).with_retry(RetryPolicy::retries(retries));
    let job = client.submit(&text)?;
    println!(
        "submitted `{}` to {addr}: job {job} ({} vs {})",
        spec.scenario.name,
        spec.compare
            .as_ref()
            .map_or_else(|| "MALEC".to_owned(), |c| c.candidate.label()),
        spec.compare
            .as_ref()
            .map_or_else(|| "Base1ldst".to_owned(), |c| c.baseline.label()),
    );
    let (job, view) = wait_with_resubmits(&client, &text, job, retries)?;
    let report = client.compare(job)?;
    let out_path = out.unwrap_or_else(|| spec.compare_out.clone());
    if let Some(parent) = Path::new(&out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    std::fs::write(&out_path, &report).map_err(|e| format!("write {out_path}: {e}"))?;
    println!(
        "job {job} done in {:.3}s: {} simulated, {} cached, {} coalesced, {} fetched",
        view.wall_seconds.unwrap_or(0.0),
        view.simulated,
        view.cached,
        view.coalesced,
        view.fetched,
    );
    println!(
        "  cache: {}/{} cells served from cache",
        view.served_without_simulation(),
        view.cells
    );
    println!("  compare report -> {out_path}");
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let spec_path = args.first().ok_or_else(usage)?;
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
    let spec = parse_spec(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    let out = match args.iter().position(|a| a == "-o") {
        Some(i) => PathBuf::from(args.get(i + 1).ok_or_else(usage)?),
        None => PathBuf::from(&spec.mtr),
    };
    let written = record_trace(&spec, &out)?;
    println!(
        "recorded {written} instructions of `{}` (seed {}) -> {}",
        spec.scenario.name,
        spec.seed,
        out.display()
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let trace = args.first().ok_or_else(usage)?;
    let mut config = SimConfig::malec();
    let mut insts = u64::MAX;
    let mut seed = malec_serve::spec::DEFAULT_SEED;
    let mut name: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--name" => {
                name = Some(args.get(i + 1).ok_or_else(usage)?.clone());
                i += 2;
            }
            "--config" => {
                let label = args.get(i + 1).ok_or_else(usage)?;
                config = SimConfig::by_label(label)
                    .ok_or_else(|| format!("unknown config `{label}`"))?;
                i += 2;
            }
            "--insts" => {
                insts = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(usage)?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(usage)?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    // The digest folds the workload name, so default to the file stem but
    // let --name restore the recorded scenario's name for bit-identity
    // checks against a `run` report.
    let name = name.unwrap_or_else(|| {
        Path::new(trace)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "replay".to_owned())
    });
    let source = ScenarioSource::Replay {
        name,
        path: PathBuf::from(trace),
    };
    let summary = Simulator::new(config)
        .run_source(&source, insts, seed)
        .map_err(|e| e.to_string())?;
    println!(
        "{} / {}: {} insts in {} cycles (ipc {:.2}), l1 miss {:.3}, energy {:.1}, digest {:#018x}",
        summary.benchmark,
        summary.config,
        summary.core.committed,
        summary.core.cycles,
        summary.core.ipc(),
        summary.l1_miss_rate,
        summary.energy.total(),
        digest(&summary),
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr: String = take_flag(&mut args, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    let cache: Option<String> = take_flag(&mut args, "--cache")?;
    let jobs: Option<usize> = take_flag(&mut args, "--jobs")?;
    let fsync: Option<FsyncPolicy> = take_flag(&mut args, "--fsync")?;
    let max_conns: Option<usize> = take_flag(&mut args, "--max-conns")?;
    let drain_timeout: Option<u64> = take_flag(&mut args, "--drain-timeout")?;
    let job_ttl: Option<u64> = take_flag(&mut args, "--job-ttl")?;
    let cache_max_bytes: Option<u64> = take_flag(&mut args, "--cache-max-bytes")?;
    let compact_threshold: Option<f64> = take_flag(&mut args, "--compact-threshold")?;
    let warm_from: Option<String> = take_flag(&mut args, "--warm-from")?;
    let peers: Option<String> = take_flag(&mut args, "--peers")?;
    let fault_schedule: Option<String> = take_flag(&mut args, "--faults")?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments {args:?}\n{}", usage()));
    }
    if let Some(t) = compact_threshold {
        if !(t > 0.0 && t <= 1.0) {
            return Err(format!(
                "--compact-threshold must be a dead-byte ratio in (0, 1], got {t}"
            ));
        }
    }
    // --faults overrides the MALEC_FAULTS environment variable; both parse
    // the same `name@hit[:param];...` schedule.
    let faults = match fault_schedule {
        Some(s) => Faults::parse(&s).map_err(|e| e.to_string())?,
        None => Faults::from_env().map_err(|e| e.to_string())?,
    };
    let armed = !faults.exhausted();
    let defaults = ServeOptions::default();
    let opts = ServeOptions {
        workers: jobs,
        cache_path: cache.as_deref().map(PathBuf::from),
        fsync: fsync.unwrap_or(defaults.fsync),
        faults,
        max_connections: max_conns.unwrap_or(defaults.max_connections),
        drain_timeout: drain_timeout.map_or(defaults.drain_timeout, Duration::from_secs),
        job_ttl: job_ttl.map(Duration::from_secs).or(defaults.job_ttl),
        cache_max_bytes,
        compact_threshold,
        ..defaults
    };
    let server = Server::bind_with(addr.as_str(), opts).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    // Install the shard map before any traffic: ownership must be in force
    // from the very first submission.
    let shard_peers: Vec<String> = match &peers {
        Some(list) => {
            let map = ShardMap::new(
                list.split(',').map(str::trim).filter(|s| !s.is_empty()),
                &addr,
            )
            .map_err(|e| format!("--peers: {e}"))?;
            let set = map.peers().iter().map(|p| p.as_str().to_owned()).collect();
            server.engine().set_shard(map);
            set
        }
        None => Vec::new(),
    };
    // Warm before accepting work: a fresh peer serves its first request at
    // 100% cache coverage or fails loudly at startup, never in between.
    if let Some(peer) = warm_from {
        let report = server
            .engine()
            .warm_from(&peer)
            .map_err(|e| format!("warm from {peer}: {e}"))?;
        if let Some(damage) = report.damaged {
            return Err(format!(
                "warm from {peer}: stream damaged after {} verified record(s): {damage}",
                report.records
            ));
        }
        println!(
            "warmed from {peer}: {} record(s), {} bytes ({} new)",
            report.records, report.bytes, report.inserted
        );
    }
    println!(
        "malec-serve listening on {bound} ({} worker(s), cache {})",
        server.engine().workers(),
        cache.as_deref().unwrap_or("in-memory"),
    );
    if armed {
        println!("  WARNING: fault injection armed — not for production use");
    }
    if !shard_peers.is_empty() {
        println!(
            "  sharding cells across {} peer(s): {}",
            shard_peers.len(),
            shard_peers.join(", "),
        );
    }
    println!("  POST /v1/jobs          submit a TOML sweep spec");
    println!("  GET  /v1/jobs/<id>     job status");
    println!("  GET  /v1/jobs/<id>/report");
    println!("  GET  /v1/cache/stats   result-cache counters");
    println!("  POST /v1/cache/compact rewrite the cache log, dropping dead records");
    println!("  GET  /v1/cache/sync    stream the live record set (peer warm-up)");
    println!("  GET  /v1/cache/record/<key>  one verified record (peer-miss fetch)");
    println!("  POST /v1/shutdown      drain and stop (?mode=abort skips the drain)");
    server.run().map_err(|e| e.to_string())
}

/// Waits for `job`; if it **fails** (a worker panic, say) and the retry
/// budget allows, resubmits the spec — completed cells were cached, so a
/// resubmission re-simulates only what actually failed. Returns the view
/// of the job that reached `done`.
fn wait_with_resubmits(
    client: &Client,
    text: &str,
    job: u64,
    retries: u32,
) -> Result<(u64, malec_serve::JobView), String> {
    let mut job = job;
    let mut view = client.wait(job, Duration::from_secs(600))?;
    let mut round = 0u32;
    while view.state == "failed" {
        let detail = view.error.as_deref().unwrap_or("unknown failure");
        if round >= retries {
            return Err(format!("job {job} failed: {detail}"));
        }
        round += 1;
        eprintln!("malec-cli: job {job} failed ({detail}); resubmitting ({round}/{retries})");
        job = client.submit(text)?;
        view = client.wait(job, Duration::from_secs(600))?;
    }
    Ok((job, view))
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr: String = take_flag(&mut args, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    let out: Option<String> = take_flag(&mut args, "-o")?;
    let retries: u32 = take_flag(&mut args, "--retries")?.unwrap_or(0);
    let no_wait = if let Some(i) = args.iter().position(|a| a == "--no-wait") {
        args.remove(i);
        true
    } else {
        false
    };
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
    // Parse locally first: a bad spec should fail with the parser's message
    // before any network round trip, and the report path comes from it.
    let spec = parse_spec(&text).map_err(|e| format!("{spec_path}: {e}"))?;

    let client = Client::new(addr.clone()).with_retry(RetryPolicy::retries(retries));
    let job = client.submit(&text)?;
    println!(
        "submitted `{}` to {addr}: job {job} ({} cells)",
        spec.scenario.name,
        spec.configs.len() * spec.replication.initial_count() as usize,
    );
    if no_wait {
        println!("  poll with: malec-cli status {job} --addr {addr}");
        return Ok(());
    }

    let (job, view) = wait_with_resubmits(&client, &text, job, retries)?;
    let report = client.report(job)?;
    let out_path = out.unwrap_or_else(|| spec.out.clone());
    if let Some(parent) = Path::new(&out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    std::fs::write(&out_path, &report).map_err(|e| format!("write {out_path}: {e}"))?;
    println!(
        "job {job} done in {:.3}s: {} simulated, {} cached, {} coalesced, {} fetched{}",
        view.wall_seconds.unwrap_or(0.0),
        view.simulated,
        view.cached,
        view.coalesced,
        view.fetched,
        if view.replicates_saved > 0 {
            format!(
                ", {} replicate(s) saved by early stop",
                view.replicates_saved
            )
        } else {
            String::new()
        },
    );
    println!(
        "  cache: {}/{} cells served from cache",
        view.served_without_simulation(),
        view.cells
    );
    println!("  report -> {out_path}");
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr: String = take_flag(&mut args, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    let retries: u32 = take_flag(&mut args, "--retries")?.unwrap_or(0);
    let client = Client::new(addr.clone()).with_retry(RetryPolicy::retries(retries));
    match args.as_slice() {
        [] => {
            let stats = client.cache_stats()?;
            println!("cache at {addr}:");
            println!("  entries          {}", stats.entries);
            println!("  loaded from disk {}", stats.loaded);
            println!("  hits             {}", stats.hits);
            println!("  misses           {}", stats.misses);
            println!("  coalesced        {}", stats.coalesced);
            println!("  fetched          {}", stats.fetched);
            println!("  bytes appended   {}", stats.bytes_appended);
            println!("  log bytes        {}", stats.log_bytes);
            println!("  live bytes       {}", stats.live_bytes);
            println!("  evicted          {}", stats.evicted);
            println!("  compactions      {}", stats.compactions);
            // A sharded server advertises its peer set; show one row per
            // peer so a cluster's health reads off a single command.
            let peers = client.peers().unwrap_or_default();
            if !peers.is_empty() {
                println!("peers:");
                println!(
                    "  {:<22} {:>8} {:>8} {:>8} {:>8}  healthy",
                    "address", "entries", "hits", "misses", "fetched"
                );
                for peer in peers {
                    let me = if peer == addr { " (self)" } else { "" };
                    match Client::new(peer.clone()).cache_stats() {
                        Ok(s) => println!(
                            "  {:<22} {:>8} {:>8} {:>8} {:>8}  yes{me}",
                            peer, s.entries, s.hits, s.misses, s.fetched
                        ),
                        Err(_) => println!(
                            "  {:<22} {:>8} {:>8} {:>8} {:>8}  NO{me}",
                            peer, "-", "-", "-", "-"
                        ),
                    }
                }
            }
            Ok(())
        }
        [job] => {
            let job: u64 = job
                .parse()
                .map_err(|_| format!("bad job id `{job}`\n{}", usage()))?;
            let view = client.status(job)?;
            println!(
                "job {job} (`{}`): {} — {}/{} cells done ({} simulated, {} cached, {} coalesced, {} fetched, {} failed, {} pending)",
                view.scenario,
                view.state,
                view.cells - view.pending - view.failed,
                view.cells,
                view.simulated,
                view.cached,
                view.coalesced,
                view.fetched,
                view.failed,
                view.pending,
            );
            if let Some(error) = &view.error {
                println!("  first failure: {error}");
            }
            Ok(())
        }
        _ => Err(usage()),
    }
}

/// `cache compact` / `cache sync` — the cache-log lifecycle operations.
fn cmd_cache(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("compact") => cmd_cache_compact(&args[1..]),
        Some("sync") => cmd_cache_sync(&args[1..]),
        _ => Err(usage()),
    }
}

fn cmd_cache_compact(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr: String = take_flag(&mut args, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    if !args.is_empty() {
        return Err(format!("unexpected arguments {args:?}\n{}", usage()));
    }
    let (status, body) = request(addr.as_str(), "POST", "/v1/cache/compact", b"")
        .map_err(|e| format!("POST {addr}/v1/cache/compact: {e}"))?;
    if status != 200 {
        let detail = parse_json(&body)
            .ok()
            .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_owned))
            .unwrap_or(body);
        return Err(format!("server returned {status}: {}", detail.trim()));
    }
    let v = parse_json(&body).map_err(|e| format!("malformed response: {e}"))?;
    let get = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
    println!(
        "compacted cache at {addr}: {} -> {} bytes, {} live record(s)",
        get("bytes_before"),
        get("bytes_after"),
        get("live_records"),
    );
    Ok(())
}

/// Streams a server's live record set into a local cache log, verifying
/// every record's checksum on the way in. The result is a valid log file:
/// point a fresh `serve --cache` at it to start at full coverage.
fn cmd_cache_sync(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let from: String = take_flag(&mut args, "--from")?
        .ok_or_else(|| format!("cache sync needs --from HOST:PORT\n{}", usage()))?;
    let out: String = take_flag(&mut args, "-o")?
        .ok_or_else(|| format!("cache sync needs -o FILE\n{}", usage()))?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments {args:?}\n{}", usage()));
    }
    let (status, mut stream) = request_stream(
        from.as_str(),
        "GET",
        "/v1/cache/sync",
        Duration::from_secs(60),
    )
    .map_err(|e| format!("GET {from}/v1/cache/sync: {e}"))?;
    if status != 200 {
        return Err(format!("{from} answered {status} to GET /v1/cache/sync"));
    }
    let mut cache = ResultCache::open(Path::new(&out)).map_err(|e| format!("open {out}: {e}"))?;
    let report = cache
        .ingest(&mut stream)
        .map_err(|e| format!("sync from {from}: {e}"))?;
    cache.sync().map_err(|e| format!("sync {out}: {e}"))?;
    if let Some(damage) = report.damaged {
        return Err(format!(
            "stream from {from} damaged after {} verified record(s) (kept): {damage}",
            report.records
        ));
    }
    println!(
        "synced {} record(s), {} bytes from {from} -> {out} ({} new, {} already present)",
        report.records,
        report.bytes,
        report.inserted,
        report.records - report.inserted,
    );
    Ok(())
}

/// `analyze`: the workspace-invariant lint gate, in-process (the same
/// passes the standalone `malec-analyze` binary and CI run).
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let root: Option<PathBuf> = take_flag(&mut args, "--root")?;
    let dump_graph = if let Some(i) = args.iter().position(|a| a == "--dump-graph") {
        args.remove(i);
        true
    } else {
        false
    };
    let mut passes: Vec<String> = Vec::new();
    while let Some(name) = take_flag::<String>(&mut args, "--pass")? {
        if !malec_analyze::PASSES.contains(&name.as_str()) {
            return Err(format!("unknown pass `{name}`\n{}", usage()));
        }
        passes.push(name);
    }
    if let Some(extra) = args.first() {
        return Err(format!("unknown argument `{extra}`\n{}", usage()));
    }

    let root = match root {
        Some(r) => r,
        None => std::env::current_dir()
            .ok()
            .and_then(|d| malec_analyze::find_root(&d))
            .ok_or("not inside a MALEC workspace (pass --root DIR)")?,
    };
    let sources = malec_analyze::load_workspace(&root)
        .map_err(|e| format!("failed to read workspace: {e}"))?;
    let selected: Vec<&str> = if passes.is_empty() {
        malec_analyze::PASSES.to_vec()
    } else {
        passes.iter().map(String::as_str).collect()
    };
    let report = malec_analyze::analyze(&sources, &selected);
    print!("{}", report.render(dump_graph));
    if report.findings.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} lint finding(s) — fix them or annotate the invariant",
            report.findings.len()
        ))
    }
}

fn cmd_presets() {
    println!("built-in scenarios (use with `mode = \"preset\"`):");
    for s in presets() {
        println!("  {:<26} [{}]", s.name, s.segment_labels().join(" + "));
    }
}
