//! `malec-analyze` — run the workspace-invariant lints from the shell.
//!
//! ```text
//! malec-analyze [--root DIR] [--pass NAME]... [--dump-graph]
//! ```
//!
//! With no `--root`, walks up from the current directory to the
//! workspace root. With no `--pass`, runs all four passes. Exits 1 if
//! any finding survives suppression — the CI contract.

use std::process::ExitCode;

use malec_analyze::{analyze, find_root, load_workspace, PASSES};

const USAGE: &str = "usage: malec-analyze [--root DIR] [--pass NAME]... [--dump-graph]
passes: lock-order, panic-surface, determinism, failpoint-coverage (default: all)";

fn main() -> ExitCode {
    let mut root = None;
    let mut passes: Vec<String> = Vec::new();
    let mut dump_graph = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(std::path::PathBuf::from(dir)),
                None => return fail("--root needs a directory"),
            },
            "--pass" => match args.next() {
                Some(name) if PASSES.contains(&name.as_str()) => passes.push(name),
                Some(name) => return fail(&format!("unknown pass `{name}`")),
                None => return fail("--pass needs a name"),
            },
            "--dump-graph" => dump_graph = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => return fail("not inside a MALEC workspace (and no --root given)"),
    };

    let sources = match load_workspace(&root) {
        Ok(s) => s,
        Err(e) => return fail(&format!("failed to read workspace: {e}")),
    };

    let selected: Vec<&str> = if passes.is_empty() {
        PASSES.to_vec()
    } else {
        passes.iter().map(String::as_str).collect()
    };
    let report = analyze(&sources, &selected);
    print!("{}", report.render(dump_graph));
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("malec-analyze: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
