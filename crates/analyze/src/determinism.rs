//! Determinism pass: the golden-digest crates must stay bit-stable.
//!
//! The repo's strongest regression net is its golden digests: 24
//! benchmark, 10 scenario and 5 compare digests that must reproduce
//! bit-for-bit on every machine and every run. Three things quietly
//! break that property without failing any test locally:
//!
//! * iterating a `HashMap`/`HashSet` (randomized iteration order leaks
//!   into any fold over the entries — use `BTreeMap`/`BTreeSet` or a
//!   sorted `Vec`);
//! * reading the wall clock (`Instant::now`, `SystemTime`) anywhere a
//!   value can flow into an output;
//! * branching on the environment (`std::env::var`, `env!`).
//!
//! This pass forbids all three in the digest-bearing crates, outside
//! `#[cfg(test)]`. Timing belongs in `malec-bench`'s measurement layer,
//! which is deliberately out of scope here.

use crate::lexer::Kind;
use crate::{Finding, Unit};

/// Crates whose outputs feed golden digests.
const GOLDEN: &[&str] = &[
    "crates/core/src/",
    "crates/mem/src/",
    "crates/cpu/src/",
    "crates/trace/src/",
    "crates/energy/src/",
    "crates/types/src/",
];

/// Runs the pass.
pub fn run(units: &[Unit]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for u in units {
        if !GOLDEN.iter().any(|p| u.path.starts_with(p)) {
            continue;
        }
        let toks = &u.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.in_test || t.kind != Kind::Ident {
                continue;
            }
            let msg = match t.text.as_str() {
                "HashMap" | "HashSet" => Some(format!(
                    "`{}` has randomized iteration order — use a BTree collection or a \
                     sorted Vec in a golden-digest crate",
                    t.text
                )),
                "Instant" | "SystemTime" => Some(format!(
                    "`{}` reads the wall clock — timing belongs in the bench layer, not a \
                     golden-digest crate",
                    t.text
                )),
                "env" => {
                    // `env::…` path or `env!(…)` macro; a variable named
                    // `env` on its own is fine.
                    let after_path = toks.get(i + 1).is_some_and(|n| n.kind == Kind::Punct(':'))
                        && toks.get(i + 2).is_some_and(|n| n.kind == Kind::Punct(':'));
                    let is_macro = toks.get(i + 1).is_some_and(|n| n.kind == Kind::Punct('!'));
                    (after_path || is_macro).then(|| {
                        "environment-dependent value in a golden-digest crate — outputs \
                         must not vary by machine"
                            .to_owned()
                    })
                }
                _ => None,
            };
            if let Some(message) = msg {
                findings.push(Finding {
                    path: u.path.clone(),
                    line: t.line,
                    lint: "determinism".to_owned(),
                    message,
                });
            }
        }
    }
    findings
}
