//! Panic-surface pass: request-path code must not be able to panic.
//!
//! The serving layer survives panicking *workers* by design (panic-safe
//! worker loops, poison-recovering locks), but a panic while parsing a
//! request, replaying the cache log, or framing a response tears down
//! the connection handler and turns one malformed byte into a 5xx for a
//! well-formed peer. The modules on that path parse untrusted bytes and
//! must stay total.
//!
//! Within the request-path modules, outside `#[cfg(test)]`, this pass
//! forbids:
//!
//! * `.unwrap()` / `.expect(…)` — convert to an error return, or
//!   annotate the invariant that makes the value present;
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`;
//! * slice/map indexing (`buf[i]`, `map[&k]`, `&rec[a..b]`) — use
//!   `.get(…)` and handle `None`.
//!
//! Invariant-backed exceptions carry an
//! `// analyze: allow(panic-surface) <why>` annotation; the reason is
//! mandatory and audited.

use crate::lexer::Kind;
use crate::{Finding, Unit, KEYWORDS};

/// Modules on the request path: HTTP framing, body/config parsing, the
/// cache log replay, and the client-side response parser.
const REQUEST_PATH: &[&str] = &[
    "crates/serve/src/http.rs",
    "crates/serve/src/json.rs",
    "crates/serve/src/toml.rs",
    "crates/serve/src/cache.rs",
    "crates/serve/src/client.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the pass.
pub fn run(units: &[Unit]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for u in units {
        if !REQUEST_PATH.contains(&u.path.as_str()) {
            continue;
        }
        let toks = &u.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| &toks[p].kind);
            let next = toks.get(i + 1).map(|n| &n.kind);
            match &t.kind {
                Kind::Ident
                    if (t.text == "unwrap" || t.text == "expect")
                        && prev == Some(&Kind::Punct('.'))
                        && next == Some(&Kind::Punct('(')) =>
                {
                    findings.push(finding(
                        u,
                        t.line,
                        format!(
                            "`.{}(…)` on the request path — return an error, or \
                             annotate the invariant that rules the panic out",
                            t.text
                        ),
                    ));
                }
                Kind::Ident
                    if PANIC_MACROS.contains(&t.text.as_str())
                        && next == Some(&Kind::Punct('!')) =>
                {
                    findings.push(finding(
                        u,
                        t.line,
                        format!(
                            "`{}!` on the request path — return an error instead",
                            t.text
                        ),
                    ));
                }
                Kind::Punct('[') => {
                    let indexes = match i.checked_sub(1).map(|p| &toks[p]) {
                        Some(p) => match &p.kind {
                            Kind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                            Kind::Punct(')') | Kind::Punct(']') => true,
                            _ => false,
                        },
                        None => false,
                    };
                    if indexes {
                        findings.push(finding(
                            u,
                            t.line,
                            "indexing can panic on the request path — use `.get(…)` and \
                             handle `None`"
                                .to_owned(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    findings
}

fn finding(u: &Unit, line: u32, message: String) -> Finding {
    Finding {
        path: u.path.clone(),
        line,
        lint: "panic-surface".to_owned(),
        message,
    }
}
