//! A hand-rolled Rust lexer, just deep enough for lexical lints.
//!
//! The analysis passes need a token stream that gets four famously
//! comment-adjacent things right — everything a `grep`-based lint trips
//! over:
//!
//! * **raw strings** (`r"…"`, `r#"…"#`, any hash depth, plus `b`/`br`
//!   variants): a `.unwrap()` *inside* a string literal is data, not code;
//! * **nested block comments** (`/* /* */ */`), which Rust allows and
//!   regex-based scanners get wrong;
//! * **`'a` lifetime vs `'a'` char**, so a lifetime never opens a
//!   phantom character literal that swallows real code;
//! * **`#[cfg(test)]` regions**: every token is flagged with whether it
//!   sits inside a test-only item, because most lints apply to production
//!   code only.
//!
//! The lexer never fails and never panics: on bytes that are not valid
//! Rust it degrades to single-character punctuation tokens and keeps
//! going (a property test feeds it arbitrary bytes). Precision beyond
//! what the passes read — numeric suffixes, operator glyph grouping —
//! is deliberately out of scope.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A character or byte-character literal (`'a'`, `b'\n'`).
    Char,
    /// Any string literal; `text` holds the inner bytes verbatim
    /// (escapes unprocessed, raw-string hashes stripped).
    Str,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// One token, with its 1-based source line and test-region flag.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token class.
    pub kind: Kind,
    /// Identifier name / literal payload; empty for punctuation.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// One comment (line or block), with the line it starts on. Block
/// comments keep their interior verbatim; line comments drop the `//`.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the opening delimiter.
    pub text: String,
}

/// The full lexical view of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens, in order, with test regions marked.
    pub tokens: Vec<Token>,
    /// Comments, in order (the suppression and doc-table carriers).
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes `src`. Total: consumes every byte, never panics.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut pos = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
                in_test: false,
            })
        };
    }

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                let start = pos + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&bytes[start..end]).into_owned(),
                });
                pos = end;
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                // Nested block comment: depth-counted, newline-counted.
                let comment_line = line;
                let start = pos + 2;
                let mut depth = 1usize;
                let mut end = start;
                while end < bytes.len() && depth > 0 {
                    if bytes[end] == b'\n' {
                        line += 1;
                        end += 1;
                    } else if bytes[end] == b'/' && bytes.get(end + 1) == Some(&b'*') {
                        depth += 1;
                        end += 2;
                    } else if bytes[end] == b'*' && bytes.get(end + 1) == Some(&b'/') {
                        depth -= 1;
                        end += 2;
                    } else {
                        end += 1;
                    }
                }
                let body_end = end.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: comment_line,
                    text: String::from_utf8_lossy(&bytes[start..body_end]).into_owned(),
                });
                pos = end;
            }
            b'r' | b'b' => {
                // r"…" / r#"…"# / b"…" / br#"…"# / b'…' / plain ident.
                let mut j = pos + 1;
                let mut is_raw = b == b'r';
                if b == b'b' {
                    if bytes.get(j) == Some(&b'r') {
                        is_raw = true;
                        j += 1;
                    } else if bytes.get(j) == Some(&b'\'') {
                        // Byte-char literal: delegate to the char scanner.
                        let (tok, npos, nline) = lex_char_or_lifetime(bytes, j, line);
                        pos = npos;
                        line = nline;
                        if let Some(t) = tok {
                            out.tokens.push(t);
                        }
                        continue;
                    }
                }
                let mut hashes = 0usize;
                if is_raw {
                    while bytes.get(j + hashes) == Some(&b'#') {
                        hashes += 1;
                    }
                }
                if (is_raw || b == b'b') && bytes.get(j + hashes) == Some(&b'"') && hashes == 0
                    || is_raw && bytes.get(j + hashes) == Some(&b'"')
                {
                    if is_raw {
                        // Raw (byte) string: ends at `"` + `hashes` hashes.
                        let body_start = j + hashes + 1;
                        let tok_line = line;
                        let mut end = body_start;
                        loop {
                            match bytes.get(end) {
                                None => break,
                                Some(b'\n') => {
                                    line += 1;
                                    end += 1;
                                }
                                Some(b'"') => {
                                    let close = &bytes[end + 1..];
                                    if close.len() >= hashes
                                        && close[..hashes].iter().all(|&h| h == b'#')
                                    {
                                        break;
                                    }
                                    end += 1;
                                }
                                Some(_) => end += 1,
                            }
                        }
                        push!(
                            Kind::Str,
                            String::from_utf8_lossy(&bytes[body_start..end.min(bytes.len())])
                                .into_owned(),
                            tok_line
                        );
                        pos = (end + 1 + hashes).min(bytes.len() + 1);
                    } else {
                        // b"…": a cooked byte string.
                        let (text, npos, nline) = lex_cooked_string(bytes, j + 1, line);
                        push!(Kind::Str, text, line);
                        pos = npos;
                        line = nline;
                    }
                } else if hashes > 0 && bytes.get(j + hashes).copied().is_some_and(is_ident_start) {
                    // Raw identifier r#ident.
                    let name_start = j + hashes;
                    let mut end = name_start;
                    while end < bytes.len() && is_ident_continue(bytes[end]) {
                        end += 1;
                    }
                    push!(
                        Kind::Ident,
                        String::from_utf8_lossy(&bytes[name_start..end]).into_owned(),
                        line
                    );
                    pos = end;
                } else {
                    // Plain identifier starting with r or b.
                    let mut end = pos;
                    while end < bytes.len() && is_ident_continue(bytes[end]) {
                        end += 1;
                    }
                    push!(
                        Kind::Ident,
                        String::from_utf8_lossy(&bytes[pos..end]).into_owned(),
                        line
                    );
                    pos = end;
                }
            }
            b'"' => {
                let tok_line = line;
                let (text, npos, nline) = lex_cooked_string(bytes, pos + 1, line);
                push!(Kind::Str, text, tok_line);
                pos = npos;
                line = nline;
            }
            b'\'' => {
                let (tok, npos, nline) = lex_char_or_lifetime(bytes, pos, line);
                pos = npos;
                line = nline;
                if let Some(t) = tok {
                    out.tokens.push(t);
                }
            }
            _ if is_ident_start(b) => {
                let mut end = pos;
                while end < bytes.len() && is_ident_continue(bytes[end]) {
                    end += 1;
                }
                push!(
                    Kind::Ident,
                    String::from_utf8_lossy(&bytes[pos..end]).into_owned(),
                    line
                );
                pos = end;
            }
            _ if b.is_ascii_digit() => {
                let mut end = pos + 1;
                loop {
                    match bytes.get(end) {
                        Some(&c) if is_ident_continue(c) => end += 1,
                        // A dot continues the number only before a digit
                        // (so `0..10` stays a range, not a float).
                        Some(b'.')
                            if bytes.get(end + 1).is_some_and(u8::is_ascii_digit)
                                && !bytes[pos..end].contains(&b'.') =>
                        {
                            end += 1;
                        }
                        _ => break,
                    }
                }
                push!(
                    Kind::Num,
                    String::from_utf8_lossy(&bytes[pos..end]).into_owned(),
                    line
                );
                pos = end;
            }
            _ if b.is_ascii() => {
                push!(Kind::Punct(b as char), String::new(), line);
                pos += 1;
            }
            _ => {
                // Non-ASCII outside a string/comment: not valid Rust at
                // top level; skip the byte, stay total.
                pos += 1;
            }
        }
    }

    mark_test_regions(&mut out.tokens);
    out
}

/// Scans a cooked (escaped) string body starting *after* the opening
/// quote. Returns (inner text, position past the closing quote, line).
fn lex_cooked_string(bytes: &[u8], start: usize, mut line: u32) -> (String, usize, u32) {
    let mut end = start;
    loop {
        match bytes.get(end) {
            None => break,
            Some(b'\\') => end = (end + 2).min(bytes.len()),
            Some(b'"') => break,
            Some(b'\n') => {
                line += 1;
                end += 1;
            }
            Some(_) => end += 1,
        }
    }
    let text = String::from_utf8_lossy(&bytes[start..end.min(bytes.len())]).into_owned();
    (text, (end + 1).min(bytes.len() + 1), line)
}

/// Disambiguates `'` at `pos`: lifetime, char literal, or stray quote.
fn lex_char_or_lifetime(bytes: &[u8], pos: usize, line: u32) -> (Option<Token>, usize, u32) {
    let make = |kind: Kind, text: String| {
        Some(Token {
            kind,
            text,
            line,
            in_test: false,
        })
    };
    match bytes.get(pos + 1) {
        // Escaped char literal: skip the escape head, then scan to the
        // closing quote (bounded by end-of-line — a lost quote must not
        // swallow the rest of the file).
        Some(b'\\') => {
            let mut end = pos + 3;
            while end < bytes.len() && bytes[end] != b'\'' && bytes[end] != b'\n' {
                end += 1;
            }
            (
                make(Kind::Char, String::new()),
                (end + 1).min(bytes.len() + 1),
                line,
            )
        }
        Some(&c) if is_ident_start(c) => {
            // Identifier run: `'a'` is a char, `'a` / `'static` a lifetime.
            let mut end = pos + 1;
            while end < bytes.len() && is_ident_continue(bytes[end]) {
                end += 1;
            }
            if bytes.get(end) == Some(&b'\'') {
                (make(Kind::Char, String::new()), end + 1, line)
            } else {
                (
                    make(
                        Kind::Lifetime,
                        String::from_utf8_lossy(&bytes[pos + 1..end]).into_owned(),
                    ),
                    end,
                    line,
                )
            }
        }
        // Any other single char (possibly multibyte) closed by a quote.
        Some(&c) if c != b'\'' && c != b'\n' => {
            let mut end = pos + 2;
            while end < bytes.len() && (bytes[end] & 0xc0) == 0x80 {
                end += 1; // UTF-8 continuation bytes of a multibyte char
            }
            if bytes.get(end) == Some(&b'\'') {
                (make(Kind::Char, String::new()), end + 1, line)
            } else {
                (make(Kind::Punct('\''), String::new()), pos + 1, line)
            }
        }
        _ => (make(Kind::Punct('\''), String::new()), pos + 1, line),
    }
}

/// Flags every token inside a `#[cfg(test)]`- or `#[test]`-attributed
/// item (attribute through end of the item's body or its `;`).
///
/// Recognized exactly: `#[test]` and `#[cfg(test)]`. Compound forms like
/// `#[cfg(all(test, unix))]` are *not* treated as test regions — the
/// lints stay conservative and the workspace does not use them.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        let Some((is_test, mut j)) = parse_attr(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = j;
            continue;
        }
        // Skip any further outer attributes stacked on the same item.
        while let Some((_, next)) = parse_attr(tokens, j) {
            j = next;
        }
        // Find the item's extent: first `{…}` body or `;` outside
        // parens/brackets.
        let mut depth = 0i32;
        while j < tokens.len() {
            match tokens[j].kind {
                Kind::Punct('(') | Kind::Punct('[') => depth += 1,
                Kind::Punct(')') | Kind::Punct(']') => depth -= 1,
                Kind::Punct('{') if depth == 0 => {
                    j = match_brace(tokens, j);
                    break;
                }
                Kind::Punct(';') if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end = j.min(tokens.len());
        for t in &mut tokens[i..end] {
            t.in_test = true;
        }
        i = j.max(i + 1);
    }
}

/// If `i` starts an outer attribute `#[…]`, returns
/// `(is_test_attribute, index past the closing bracket)`.
fn parse_attr(tokens: &[Token], i: usize) -> Option<(bool, usize)> {
    if tokens.get(i)?.kind != Kind::Punct('#') || tokens.get(i + 1)?.kind != Kind::Punct('[') {
        return None;
    }
    let mut depth = 1i32;
    let mut j = i + 2;
    while j < tokens.len() && depth > 0 {
        match tokens[j].kind {
            Kind::Punct('[') => depth += 1,
            Kind::Punct(']') => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    let inner = &tokens[i + 2..j.saturating_sub(1).max(i + 2)];
    let texts: Vec<&str> = inner
        .iter()
        .map(|t| {
            if t.kind == Kind::Ident {
                t.text.as_str()
            } else {
                ""
            }
        })
        .collect();
    let is_test = matches!(texts.as_slice(), ["test"])
        || (inner.len() == 4
            && texts.as_slice() == ["cfg", "", "test", ""]
            && inner[1].kind == Kind::Punct('(')
            && inner[3].kind == Kind::Punct(')'));
    Some((is_test, j))
}

/// Given `i` at a `{`, returns the index past its matching `}`.
fn match_brace(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].kind {
            Kind::Punct('{') => depth += 1,
            Kind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // `.unwrap()` inside raw strings of several hash depths is data.
        let src = r####"let a = r"x.unwrap()"; let b = r#"y.unwrap()"#; let c = r###"z"# .unwrap()"###;"####;
        let names = idents(src);
        assert!(!names.contains(&"unwrap".to_owned()), "{names:?}");
        let strs: Vec<String> = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs.len(), 3);
        assert_eq!(strs[0], "x.unwrap()");
        assert_eq!(strs[2], r##"z"# .unwrap()"##);
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let src = "a /* one /* two */ still comment .unwrap() */ b";
        let names = idents(src);
        assert_eq!(names, ["a", "b"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("still comment"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'a'; let n = '\\n'; c }";
        let lexed = lex(src);
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"], "two lifetime positions");
        let chars = lexed.tokens.iter().filter(|t| t.kind == Kind::Char).count();
        assert_eq!(chars, 2, "'a' and '\\n'");
        // The char literals did not swallow the trailing code.
        assert!(idents(src).contains(&"c".to_owned()));
    }

    #[test]
    fn byte_literals_and_byte_strings() {
        let src = r##"let a = b'\n'; let b = b"GET /"; let c = br#"raw"#;"##;
        let lexed = lex(src);
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.kind == Kind::Char).count(),
            1
        );
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["GET /", "raw"]);
    }

    #[test]
    fn cfg_test_region_boundaries_are_exact() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn live_again() { z.unwrap(); }\n";
        let lexed = lex(src);
        let unwraps: Vec<(u32, bool)> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident && t.text == "unwrap")
            .map(|t| (t.line, t.in_test))
            .collect();
        assert_eq!(unwraps, [(1, false), (4, true), (6, false)]);
    }

    #[test]
    fn test_attribute_marks_only_its_function() {
        let src = "#[test]\nfn a_test() { x.unwrap() }\nfn live() { y.unwrap() }";
        let flags: Vec<bool> = lex(src)
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(flags, [true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn shipped() { x.unwrap() }";
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .all(|t| !t.in_test));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb */\nr#\"x\ny\"#\n\"p\\\"\nq\"\nident";
        let lexed = lex(src);
        let id = lexed
            .tokens
            .iter()
            .find(|t| t.kind == Kind::Ident)
            .expect("ident");
        assert_eq!(id.line, 7);
    }

    #[test]
    fn lone_quote_and_truncated_input_stay_total() {
        for src in ["'", "'\\", "r#\"never closed", "\"open", "b'", "/* open"] {
            let _ = lex(src); // must not panic or hang
        }
    }

    // Lexer-construct openers, so random concatenations land on the
    // nastiest boundaries (a raw string opened and never closed, a quote
    // before a multibyte char, a comment opener at EOF, …).
    const FRAGMENTS: [&str; 14] = [
        "r#\"", "\"#", "r\"", "br##\"", "b'", "'", "'\\", "/*", "*/", "//", "\\", "\"", "é", "\n",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The lexer is total on arbitrary byte soup: no panic, no hang,
        /// and every token's line stays within the input's line count.
        #[test]
        fn lexing_arbitrary_bytes_never_panics(
            words in proptest::collection::vec(proptest::num::u64::ANY, 0..32),
        ) {
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let lines = src.lines().count().max(1) as u32;
            let lexed = lex(&src);
            for t in &lexed.tokens {
                prop_assert!(t.line >= 1 && t.line <= lines, "line {} of {lines}", t.line);
            }
        }

        /// Same totality under adversarial concatenations of the lexer's
        /// own construct openers (unclosed raw strings, stray quotes,
        /// comment markers at EOF, multibyte chars mid-literal).
        #[test]
        fn lexing_hostile_fragment_mixes_never_panics(
            picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..24),
        ) {
            let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
            let _ = lex(&src);
        }
    }
}
