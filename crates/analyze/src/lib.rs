//! `malec-analyze` — workspace-invariant static analysis.
//!
//! The workspace's correctness story rests on invariants no compiler
//! checks: bit-identical golden digests, a serve layer whose scheduler
//! holds several mutexes with only convention preventing deadlock,
//! untrusted-byte parsers that must never panic per request, and
//! string-named failpoints whose value is zero if a name is never
//! exercised by a test. This crate machine-checks those conventions with
//! four lexical analysis passes over the source tree (see [`lexer`] for
//! the tokenizer that makes a lexical approach sound):
//!
//! * [`lock_order`] — nested `lock(…)` acquisitions in `crates/serve`
//!   resolved to named lock fields; the acquisition graph must be
//!   acyclic, and every mutex acquisition must route through the
//!   poison-recovering `serve::sync::lock` funnel;
//! * [`panic_surface`] — no `unwrap`/`expect`/`panic!`-family macros or
//!   slice indexing in the request-path modules, outside `#[cfg(test)]`;
//! * [`determinism`] — no `HashMap`/`HashSet`, wall-clock reads or
//!   environment-dependent branches in the golden-digest crates;
//! * [`failpoint_coverage`] — every failpoint name is registered, armed
//!   at exactly one site, documented in the fault-table, and referenced
//!   by at least one test.
//!
//! Exceptions are explicit, in-source, and carry a mandatory reason:
//!
//! ```text
//! // analyze: allow(panic-surface) key comes from the LRU index, which mirrors the map
//! ```
//!
//! A suppression with no reason, or one that suppresses nothing, is
//! itself a finding — the annotation budget is audited on every run.
//! See `ANALYSIS.md` at the repository root for the full lint catalog.

pub mod determinism;
pub mod failpoint_coverage;
pub mod lexer;
pub mod lock_order;
pub mod panic_surface;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{Comment, Lexed};

/// The four analysis passes, in the order they run.
pub const PASSES: &[&str] = &[
    "lock-order",
    "panic-surface",
    "determinism",
    "failpoint-coverage",
];

/// One source file, with a workspace-relative path (always `/`-separated,
/// so findings render identically on every platform).
#[derive(Clone, Debug)]
pub struct Source {
    /// Workspace-relative path, e.g. `crates/serve/src/json.rs`.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The lint that fired (a name from [`PASSES`], or `annotation`).
    pub lint: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// One edge of the lock-acquisition graph: `from` was held while `to`
/// was acquired, first observed at `path:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// Where the nesting was first observed.
    pub path: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// What one analysis run produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, sorted by (path, line).
    pub findings: Vec<Finding>,
    /// The lock-acquisition graph (lock-order pass only).
    pub graph: Vec<Edge>,
    /// Files analyzed.
    pub files: usize,
    /// Findings silenced by an `// analyze: allow(…)` annotation.
    pub suppressed: usize,
}

impl Report {
    /// The one-line run summary (finding + suppression counts included,
    /// so the annotation budget is visible on every run).
    pub fn summary(&self) -> String {
        format!(
            "malec-analyze: {} finding{} across {} file{}, {} suppression{} honored",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.files,
            if self.files == 1 { "" } else { "s" },
            self.suppressed,
            if self.suppressed == 1 { "" } else { "s" },
        )
    }

    /// Renders findings (one `file:line: [lint] message` per row), the
    /// summary line, and optionally the lock graph.
    pub fn render(&self, dump_graph: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        if dump_graph {
            out.push_str("lock-order graph (held -> acquired):\n");
            for e in &self.graph {
                out.push_str(&format!(
                    "  {} -> {}  ({}:{})\n",
                    e.from, e.to, e.path, e.line
                ));
            }
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }
}

/// An `// analyze: allow(<lint>) <reason>` annotation.
#[derive(Clone, Debug)]
struct Suppression {
    line: u32,
    lint: String,
    reason: String,
}

/// Parses suppressions out of a file's comments.
fn suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("analyze:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let (lint, reason) = match rest.split_once(')') {
            Some((lint, reason)) => (lint.trim().to_owned(), reason.trim().to_owned()),
            None => (rest.trim().to_owned(), String::new()),
        };
        out.push(Suppression {
            line: c.line,
            lint,
            reason,
        });
    }
    out
}

/// A lexed source with its suppressions — what every pass consumes.
pub struct Unit {
    /// Workspace-relative path.
    pub path: String,
    /// The token/comment view.
    pub lexed: Lexed,
    suppressions: Vec<Suppression>,
}

/// Runs the requested `passes` (names from [`PASSES`]; unknown names are
/// ignored) over `sources` and applies suppressions.
pub fn analyze(sources: &[Source], passes: &[&str]) -> Report {
    let units: Vec<Unit> = sources
        .iter()
        .map(|s| {
            let lexed = lexer::lex(&s.text);
            let sup = suppressions(&lexed.comments);
            Unit {
                path: s.path.clone(),
                lexed,
                suppressions: sup,
            }
        })
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    let mut graph = Vec::new();
    if passes.contains(&"lock-order") {
        let (findings, edges) = lock_order::run(&units);
        raw.extend(findings);
        graph = edges;
    }
    if passes.contains(&"panic-surface") {
        raw.extend(panic_surface::run(&units));
    }
    if passes.contains(&"determinism") {
        raw.extend(determinism::run(&units));
    }
    if passes.contains(&"failpoint-coverage") {
        raw.extend(failpoint_coverage::run(&units));
    }

    // Apply suppressions: an annotation covers findings of its lint on
    // its own line and on the line directly below it.
    let mut suppressed = 0usize;
    let mut used = vec![Vec::new(); units.len()];
    for (ui, u) in units.iter().enumerate() {
        used[ui] = vec![false; u.suppressions.len()];
    }
    let mut findings: Vec<Finding> = Vec::new();
    'f: for f in raw {
        if let Some((ui, u)) = units.iter().enumerate().find(|(_, u)| u.path == f.path) {
            for (si, s) in u.suppressions.iter().enumerate() {
                if s.lint == f.lint && (s.line == f.line || s.line + 1 == f.line) {
                    used[ui][si] = true;
                    suppressed += 1;
                    continue 'f;
                }
            }
        }
        findings.push(f);
    }

    // Audit the annotations themselves: a reason is mandatory, and a
    // suppression that suppresses nothing (under the passes that ran) is
    // dead weight that hides drift.
    for (ui, u) in units.iter().enumerate() {
        for (si, s) in u.suppressions.iter().enumerate() {
            if !PASSES.contains(&s.lint.as_str()) {
                findings.push(Finding {
                    path: u.path.clone(),
                    line: s.line,
                    lint: "annotation".to_owned(),
                    message: format!("unknown lint `{}` in allow(…)", s.lint),
                });
                continue;
            }
            if s.reason.is_empty() {
                findings.push(Finding {
                    path: u.path.clone(),
                    line: s.line,
                    lint: "annotation".to_owned(),
                    message: format!(
                        "allow({}) without a reason — suppressions must say why",
                        s.lint
                    ),
                });
            }
            if passes.contains(&s.lint.as_str()) && !used[ui][si] {
                findings.push(Finding {
                    path: u.path.clone(),
                    line: s.line,
                    lint: "annotation".to_owned(),
                    message: format!("allow({}) suppresses nothing — remove it", s.lint),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, &a.lint).cmp(&(&b.path, b.line, &b.lint)));
    graph.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    Report {
        findings,
        graph,
        files: units.len(),
        suppressed,
    }
}

/// Loads every analyzable source under `root`: `crates/*/src/**/*.rs`
/// and `tests/*.rs`, sorted by path. Vendored stand-ins and build output
/// are out of scope.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn load_workspace(root: &Path) -> io::Result<Vec<Source>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let tests = root.join("tests");
    if tests.is_dir() {
        collect_rs(&tests, &mut files)?;
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push(Source {
            path: rel,
            text: std::fs::read_to_string(&f)?,
        });
    }
    Ok(out)
}

/// Recursively collects `*.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks up from `start` to the workspace root (the directory holding
/// `crates/serve/src/lib.rs`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("crates/serve/src/lib.rs").is_file() {
            return Some(d.to_owned());
        }
        dir = d.parent();
    }
    None
}

/// Rust keywords that can directly precede a `[` without it being an
/// index expression (slice patterns, array types after `mut`, …).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];
