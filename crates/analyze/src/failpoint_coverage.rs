//! Failpoint-coverage pass: every fault hook is real, documented, and
//! exercised.
//!
//! Fault injection is only as good as its registry hygiene. A failpoint
//! name that drifts from `KNOWN_POINTS` is silently never armed; a site
//! armed twice makes a `@N`-scheduled fault fire at the wrong place; an
//! undocumented point is invisible to operators writing fault specs;
//! and a point no test references is untested crash-handling code —
//! exactly the code that must not be wrong.
//!
//! The pass cross-references four things and fails on any mismatch:
//!
//! 1. every `faults.check("…")` / `check_delay("…", …)` call site names
//!    a registered point, and each point is armed at exactly one site;
//! 2. every registered point has a row in the fault-table doc comment
//!    at the top of `fault.rs` (and the table has no stale rows);
//! 3. every registered point appears in at least one test — a string
//!    literal containing the name in `tests/*.rs` or in `#[cfg(test)]`
//!    code (schedule strings like `"worker.panic@2"` count).

use crate::lexer::Kind;
use crate::{Finding, Unit};

const FAULT_RS: &str = "crates/serve/src/fault.rs";

/// Runs the pass.
pub fn run(units: &[Unit]) -> Vec<Finding> {
    let Some(fault) = units.iter().find(|u| u.path == FAULT_RS) else {
        return Vec::new(); // nothing to check outside the full workspace
    };
    let mut findings = Vec::new();

    let (known, known_line) = known_points(fault);
    let documented = doc_table(fault);
    let sites = call_sites(units);

    // 1. Sites name registered points, one site per point.
    let mut armed: Vec<&str> = Vec::new();
    for (name, path, line) in &sites {
        if !known.iter().any(|k| k == name) {
            findings.push(Finding {
                path: path.clone(),
                line: *line,
                lint: "failpoint-coverage".to_owned(),
                message: format!("failpoint `{name}` is not registered in KNOWN_POINTS"),
            });
        }
        if armed.contains(&name.as_str()) {
            findings.push(Finding {
                path: path.clone(),
                line: *line,
                lint: "failpoint-coverage".to_owned(),
                message: format!(
                    "failpoint `{name}` is armed at more than one site — `@N` schedules \
                     would fire ambiguously"
                ),
            });
        } else {
            armed.push(name);
        }
    }

    for name in &known {
        // 2. Registered points are armed and documented.
        if !sites.iter().any(|(n, _, _)| n == name) {
            findings.push(at_registry(
                fault,
                known_line,
                format!("failpoint `{name}` is registered but never armed at any call site"),
            ));
        }
        if !documented.iter().any(|d| d == name) {
            findings.push(at_registry(
                fault,
                known_line,
                format!("failpoint `{name}` has no row in the fault-table doc comment"),
            ));
        }
        // 3. Registered points are exercised by at least one test.
        if !test_references(units, name) {
            findings.push(at_registry(
                fault,
                known_line,
                format!("failpoint `{name}` is never referenced by any test"),
            ));
        }
    }

    for d in &documented {
        if !known.iter().any(|k| k == d) {
            findings.push(at_registry(
                fault,
                known_line,
                format!("fault-table documents `{d}`, which is not a registered failpoint"),
            ));
        }
    }

    findings
}

fn at_registry(fault: &Unit, line: u32, message: String) -> Finding {
    Finding {
        path: fault.path.clone(),
        line,
        lint: "failpoint-coverage".to_owned(),
        message,
    }
}

/// Extracts the `KNOWN_POINTS` array: the string literals between the
/// `[` and `]` that follow the identifier. Returns the names and the
/// line of the registry (diagnostics anchor).
fn known_points(fault: &Unit) -> (Vec<String>, u32) {
    let toks = &fault.lexed.tokens;
    let Some(start) = toks
        .iter()
        .position(|t| t.kind == Kind::Ident && t.text == "KNOWN_POINTS" && !t.in_test)
    else {
        return (Vec::new(), 1);
    };
    let line = toks[start].line;
    // The value array is the `[` after the `=` — not the one in the
    // `&[&str]` type annotation.
    let mut names = Vec::new();
    let mut seen_eq = false;
    let mut in_array = false;
    for t in &toks[start..] {
        match &t.kind {
            Kind::Punct('=') => seen_eq = true,
            Kind::Punct('[') if seen_eq => in_array = true,
            Kind::Punct(']') if in_array => break,
            Kind::Str if in_array => names.push(t.text.clone()),
            _ => {}
        }
    }
    (names, line)
}

/// Parses the fault-table rows out of `fault.rs`'s doc comments: lines
/// shaped `| `name` | kind | … |`, taking the backtick-quoted first cell.
fn doc_table(fault: &Unit) -> Vec<String> {
    let mut names = Vec::new();
    for c in &fault.lexed.comments {
        let row = c.text.trim_start_matches(['/', '!']).trim();
        if !row.starts_with('|') {
            continue;
        }
        let mut parts = row.split('`');
        if let (Some(_), Some(name)) = (parts.next(), parts.next()) {
            let name = name.trim();
            if !name.is_empty() && !name.contains(' ') && name.contains('.') {
                names.push(name.to_owned());
            }
        }
    }
    names
}

/// Finds every arming site: `.check("name")` / `.check_delay("name", …)`
/// on non-test code in `crates/serve/src`.
fn call_sites(units: &[Unit]) -> Vec<(String, String, u32)> {
    let mut sites = Vec::new();
    for u in units {
        if !u.path.starts_with("crates/serve/src/") {
            continue;
        }
        let toks = &u.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.in_test || t.kind != Kind::Ident {
                continue;
            }
            if t.text != "check" && t.text != "check_delay" {
                continue;
            }
            let dotted = i > 0 && toks[i - 1].kind == Kind::Punct('.');
            let open = toks.get(i + 1).is_some_and(|n| n.kind == Kind::Punct('('));
            if !dotted || !open {
                continue;
            }
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == Kind::Str {
                    sites.push((arg.text.clone(), u.path.clone(), t.line));
                }
            }
        }
    }
    sites
}

/// Whether any test mentions `name` inside a string literal — tokens in
/// `tests/*.rs` files or inside `#[cfg(test)]` regions anywhere.
fn test_references(units: &[Unit], name: &str) -> bool {
    units.iter().any(|u| {
        let test_file = u.path.starts_with("tests/");
        u.lexed
            .tokens
            .iter()
            .any(|t| t.kind == Kind::Str && (test_file || t.in_test) && t.text.contains(name))
    })
}
