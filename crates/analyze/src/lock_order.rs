//! Lock-order pass: the serve layer's deadlock-freedom argument,
//! machine-checked.
//!
//! `crates/serve` holds several mutexes (`cache`, `in_flight`, `jobs`,
//! `queue`, `handles`, the fault registry's `points`, the appender's
//! `inner`) and avoids deadlock purely by convention: the only permitted
//! nesting is `cache` before `in_flight`, and every acquisition must
//! route through the poison-recovering `serve::sync::lock` funnel so a
//! panicking worker can never wedge its peers.
//!
//! The pass walks each function in `crates/serve/src`, models guard
//! lifetimes (a `let`-bound guard lives to the end of its block or an
//! explicit `drop(guard)`; an unbound guard is a statement temporary),
//! records an edge `A -> B` whenever lock `B` is taken while `A` is
//! held, and fails on any cycle in the resulting acquisition graph —
//! including self-loops, which are immediate self-deadlocks with
//! non-reentrant mutexes. Direct `.lock()` calls are flagged wherever
//! they appear: outside the funnel they silently re-introduce poison
//! propagation.

use crate::lexer::{Kind, Token};
use crate::{Edge, Finding, Unit, KEYWORDS};

/// A currently-held guard.
struct Guard {
    /// The lock it guards (last path segment of the `lock(…)` argument).
    lock: String,
    /// Binding name, if `let`-bound (so `drop(name)` can release it).
    var: Option<String>,
    /// Brace depth of the binding; the guard dies when depth drops below.
    depth: i32,
    /// Statement temporary: dies at the next `;` or block boundary.
    temp: bool,
}

/// Runs the pass. Returns findings plus the deduplicated acquisition
/// graph (for `--dump-graph` and the harness's acyclicity test).
pub fn run(units: &[Unit]) -> (Vec<Finding>, Vec<Edge>) {
    let mut findings = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();

    for u in units {
        if !u.path.starts_with("crates/serve/src/") {
            continue;
        }
        scan_file(u, &mut findings, &mut edges);
    }

    // Cycle check over the whole-crate graph.
    findings.extend(find_cycles(&edges));
    (findings, edges)
}

fn scan_file(u: &Unit, findings: &mut Vec<Finding>, edges: &mut Vec<Edge>) {
    let toks = &u.lexed.tokens;
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0i32;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            Kind::Punct('{') => {
                depth += 1;
                held.retain(|g| !g.temp);
            }
            Kind::Punct('}') => {
                depth -= 1;
                held.retain(|g| !g.temp && g.depth <= depth);
            }
            Kind::Punct(';') => held.retain(|g| !g.temp),
            Kind::Ident if t.text == "drop" && !t.in_test => {
                // `drop(guard)` releases a named guard early.
                if let (
                    Some(Token {
                        kind: Kind::Punct('('),
                        ..
                    }),
                    Some(v),
                    Some(Token {
                        kind: Kind::Punct(')'),
                        ..
                    }),
                ) = (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
                {
                    if v.kind == Kind::Ident {
                        held.retain(|g| g.var.as_deref() != Some(v.text.as_str()));
                    }
                }
            }
            Kind::Ident if t.text == "lock" && !t.in_test => {
                let prev_dot = i > 0 && toks[i - 1].kind == Kind::Punct('.');
                let next_paren = toks.get(i + 1).is_some_and(|n| n.kind == Kind::Punct('('));
                if prev_dot {
                    findings.push(Finding {
                        path: u.path.clone(),
                        line: t.line,
                        lint: "lock-order".to_owned(),
                        message: "direct `.lock()` call bypasses the poison-recovering \
                                  `serve::sync::lock` funnel"
                            .to_owned(),
                    });
                } else if next_paren {
                    if let Some((lock, after)) = lock_target(toks, i + 1) {
                        for g in &held {
                            record_edge(edges, &g.lock, &lock, &u.path, t.line);
                        }
                        let (var, temp) = binding(toks, i, after);
                        held.push(Guard {
                            lock,
                            var,
                            depth,
                            temp,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Resolves the lock being acquired by `lock(…)`: the last identifier
/// inside the parens (`lock(&self.in_flight)` → `in_flight`,
/// `lock(&log.inner)` → `inner`). Returns the name and the index just
/// past the closing paren.
fn lock_target(toks: &[Token], open: usize) -> Option<(String, usize)> {
    let mut pdepth = 0i32;
    let mut last_ident: Option<&str> = None;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].kind {
            Kind::Punct('(') => pdepth += 1,
            Kind::Punct(')') => {
                pdepth -= 1;
                if pdepth == 0 {
                    return last_ident.map(|n| (n.to_owned(), j + 1));
                }
            }
            Kind::Ident => last_ident = Some(&toks[j].text),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Classifies the acquisition at token `i` (the `lock` identifier):
/// `let`-bound guard (`let g = lock(…);`) or statement temporary
/// (anything else, including method-chained `lock(…).get(…)`).
fn binding(toks: &[Token], i: usize, after_close: usize) -> (Option<String>, bool) {
    let whole_initializer = toks
        .get(after_close)
        .is_some_and(|t| t.kind == Kind::Punct(';'));
    if whole_initializer && i >= 3 {
        let eq = toks[i - 1].kind == Kind::Punct('=');
        let name = &toks[i - 2];
        if eq && name.kind == Kind::Ident && !KEYWORDS.contains(&name.text.as_str()) {
            let let_at = if toks.get(i.wrapping_sub(3)).is_some_and(|t| t.text == "mut") {
                i.checked_sub(4)
            } else {
                i.checked_sub(3)
            };
            if let_at
                .and_then(|k| toks.get(k))
                .is_some_and(|t| t.text == "let")
            {
                return (Some(name.text.clone()), false);
            }
        }
    }
    (None, true)
}

fn record_edge(edges: &mut Vec<Edge>, from: &str, to: &str, path: &str, line: u32) {
    if !edges.iter().any(|e| e.from == from && e.to == to) {
        edges.push(Edge {
            from: from.to_owned(),
            to: to.to_owned(),
            path: path.to_owned(),
            line,
        });
    }
}

/// Depth-first cycle search over the acquisition graph; one finding per
/// cycle, anchored at the edge that closes it.
fn find_cycles(edges: &[Edge]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        for n in [e.from.as_str(), e.to.as_str()] {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    for start in &nodes {
        let mut path: Vec<&str> = vec![start];
        if let Some(f) = dfs(start, edges, &mut path) {
            findings.push(f);
            break; // one cycle is enough to fail the build
        }
    }
    findings
}

fn dfs<'a>(node: &'a str, edges: &'a [Edge], path: &mut Vec<&'a str>) -> Option<Finding> {
    for e in edges.iter().filter(|e| e.from == node) {
        if path.contains(&e.to.as_str()) {
            let mut cycle: Vec<&str> = path
                .iter()
                .copied()
                .skip_while(|n| *n != e.to.as_str())
                .collect();
            cycle.push(&e.to);
            return Some(Finding {
                path: e.path.clone(),
                line: e.line,
                lint: "lock-order".to_owned(),
                message: format!(
                    "lock acquisition cycle: {} (deadlock if threads interleave)",
                    cycle.join(" -> ")
                ),
            });
        }
        path.push(&e.to);
        let hit = dfs(&e.to, edges, path);
        path.pop();
        if hit.is_some() {
            return hit;
        }
    }
    None
}
