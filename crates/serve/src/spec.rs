//! The scenario + sweep spec: what a `malec-cli` TOML file means.
//!
//! A spec names one [`Scenario`] (phased, mixed, single-segment, or a
//! preset), the configurations to sweep it over, the instruction budget and
//! seed, and where the report and recorded `.mtr` trace go. See
//! `examples/scenarios/` for complete files.

use std::collections::BTreeMap;
use std::fmt;

use malec_core::compare::Alpha;
use malec_core::stats::{CiMetric, Replication};
use malec_trace::benchmark_named;
use malec_trace::scenario::{
    preset_named, BankConflictParams, MixPart, Phase, Scenario, SegmentKind, StoreBurstParams,
    TlbThrashParams,
};
use malec_types::SimConfig;

use crate::toml::{parse, TomlError, Value};

/// Default instruction budget per sweep cell.
pub const DEFAULT_INSTS: u64 = 20_000;
/// Default seed (the repository-wide reproducibility seed).
pub const DEFAULT_SEED: u64 = 2013;
/// Default mandatory replicates before a `ci_target` may stop a cell.
pub const DEFAULT_MIN_SEEDS: u32 = 3;
/// Upper bound on `seeds`. Statistically, t-based CIs stop narrowing
/// meaningfully long before this; operationally, the scheduler eagerly
/// shards `configs x seeds` work units per submission, so an unbounded
/// knob would let one tiny POST body demand a multi-gigabyte allocation
/// (the same one-request kill class as unbounded parser nesting).
pub const MAX_SEEDS: u32 = 1024;

/// A fully resolved sweep spec.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// The composed scenario.
    pub scenario: Scenario,
    /// Configurations to sweep over.
    pub configs: Vec<SimConfig>,
    /// Instructions per cell.
    pub insts: u64,
    /// Base seed for generation and interface randomness (replicate 0 uses
    /// it verbatim; replicate `i` derives `replicate_seed(seed, i)`).
    pub seed: u64,
    /// Multi-seed replication policy (`seeds` / `min_seeds` / `ci_target` /
    /// `ci_metric` in `[sweep]`; defaults to the legacy single seed).
    pub replication: Replication,
    /// Paired comparison (`[compare]`), if the spec declares one. With a
    /// `ci_target`, the paired delta becomes the stopping criterion for
    /// the compared pair of configurations.
    pub compare: Option<CompareSpec>,
    /// JSON report path (`<scenario name>_report.json` if unset).
    pub out: String,
    /// Recorded trace path (`<scenario name>.mtr` if unset).
    pub mtr: String,
    /// Compare-report path (`<scenario name>_compare.json` if unset).
    pub compare_out: String,
}

/// The `[compare]` section: which two interfaces of the sweep are paired
/// per shared replicate seed, and the verdict significance level.
#[derive(Clone, Debug)]
pub struct CompareSpec {
    /// Baseline configuration.
    pub baseline: SimConfig,
    /// Candidate configuration (deltas are candidate − baseline).
    pub candidate: SimConfig,
    /// Verdict significance level (`alpha`; 0.10, 0.05 or 0.01).
    pub alpha: Alpha,
}

impl Default for CompareSpec {
    /// The paper's headline pairing: MALEC against the energy-oriented
    /// baseline at 95 % confidence.
    fn default() -> Self {
        Self {
            baseline: SimConfig::base1ldst(),
            candidate: SimConfig::malec(),
            alpha: Alpha::default(),
        }
    }
}

/// A fully resolved comparison over a spec's config list.
#[derive(Clone, Copy, Debug)]
pub struct ResolvedCompare {
    /// Index of the baseline in `SweepSpec::configs`.
    pub baseline: usize,
    /// Index of the candidate in `SweepSpec::configs`.
    pub candidate: usize,
    /// Verdict significance level.
    pub alpha: Alpha,
}

impl SweepSpec {
    /// Resolves this spec's comparison against its config list: the
    /// explicit `[compare]` section, or the default (Base1ldst vs MALEC at
    /// `alpha = 0.05`) when the spec has none — so `malec compare` and
    /// `GET /v1/jobs/<id>/compare` work on any spec whose configs carry
    /// the pair.
    ///
    /// # Errors
    ///
    /// Rejects comparisons whose baseline or candidate is not in the
    /// sweep's configs, and single-seed sweeps (a paired verdict needs at
    /// least two shared seeds). A `ci_target` without an explicit
    /// `[compare]` section is also rejected: early stopping must follow
    /// exactly one criterion everywhere, and only an explicit section
    /// makes the **paired delta** that criterion (the `malec-serve`
    /// scheduler keeps a plain replicated sweep on the marginal rule so
    /// `submit` stays bit-identical to `run`; an implicit pairing on top
    /// of it would stop at different counts than a local `compare`).
    pub fn resolve_compare(&self) -> Result<ResolvedCompare, SpecError> {
        if self.compare.is_none() && self.replication.ci_target.is_some() {
            return Err(bad(
                "[sweep]: `ci_target` with an implicit pairing is ambiguous — add an explicit \
                 [compare] section so the paired delta drives early stopping",
            ));
        }
        let cmp = self.compare.clone().unwrap_or_default();
        let index_of = |cfg: &SimConfig| {
            self.configs
                .iter()
                .position(|c| c.label() == cfg.label())
                .ok_or_else(|| {
                    bad(format!(
                        "[compare]: `{}` is not in the sweep's configs \
                         (add it to [sweep] configs or change the pairing)",
                        cfg.label()
                    ))
                })
        };
        if self.replication.seeds < 2 {
            return Err(bad(
                "[compare]: a paired comparison needs `seeds` >= 2 in [sweep] \
                 (one shared seed has no interval)",
            ));
        }
        Ok(ResolvedCompare {
            baseline: index_of(&cmp.baseline)?,
            candidate: index_of(&cmp.candidate)?,
            alpha: cmp.alpha,
        })
    }
}

/// A spec-level failure: parse error or semantic problem.
#[derive(Clone, Debug)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<TomlError> for SpecError {
    fn from(e: TomlError) -> Self {
        SpecError(e.to_string())
    }
}

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

type Table = BTreeMap<String, Value>;

fn get_str<'a>(t: &'a Table, key: &str, ctx: &str) -> Result<&'a str, SpecError> {
    t.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| bad(format!("{ctx}: missing or non-string `{key}`")))
}

fn opt_u64(t: &Table, key: &str, default: u64, ctx: &str) -> Result<u64, SpecError> {
    match t.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_int()
            .filter(|&i| i >= 0)
            .map(|i| i as u64)
            .ok_or_else(|| bad(format!("{ctx}: `{key}` must be a non-negative integer"))),
    }
}

fn opt_u32(t: &Table, key: &str, default: u32, ctx: &str) -> Result<u32, SpecError> {
    let v = opt_u64(t, key, u64::from(default), ctx)?;
    u32::try_from(v).map_err(|_| bad(format!("{ctx}: `{key}` too large")))
}

/// `opt_u32` with an upper bound — the adversarial generators own fixed
/// 32-bit address regions (slot 14 and the halves of slot 15), so their
/// page pools must not spill past them into each other or the benchmarks.
fn bounded_u32(t: &Table, key: &str, default: u32, max: u32, ctx: &str) -> Result<u32, SpecError> {
    let v = opt_u32(t, key, default, ctx)?;
    if v > max {
        return Err(bad(format!(
            "{ctx}: `{key}` must be at most {max} (address-region bound)"
        )));
    }
    Ok(v)
}

fn opt_f64(t: &Table, key: &str, default: f64, ctx: &str) -> Result<f64, SpecError> {
    match t.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_float()
            .filter(|f| f.is_finite())
            .ok_or_else(|| bad(format!("{ctx}: `{key}` must be a number"))),
    }
}

/// Rejects keys outside `allowed` — a typo'd or misplaced setting must
/// fail loudly instead of silently falling back to a default.
fn reject_unknown_keys(t: &Table, allowed: &[&str], ctx: &str) -> Result<(), SpecError> {
    for key in t.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(bad(format!(
                "{ctx}: unknown key `{key}` (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Parses a segment description (`kind = ...` plus kind-specific fields).
/// `extra` names the caller-level keys sharing the table (`insts` for
/// phases, `weight` for parts).
fn parse_segment(t: &Table, extra: &[&str], ctx: &str) -> Result<SegmentKind, SpecError> {
    let kind = get_str(t, "kind", ctx)?;
    let check = |kind_keys: &[&str]| {
        let mut allowed = vec!["kind"];
        allowed.extend_from_slice(extra);
        allowed.extend_from_slice(kind_keys);
        reject_unknown_keys(t, &allowed, ctx)
    };
    match kind {
        "benchmark" => {
            check(&["benchmark"])?;
            let name = get_str(t, "benchmark", ctx)?;
            let profile = benchmark_named(name)
                .ok_or_else(|| bad(format!("{ctx}: unknown benchmark `{name}`")))?;
            Ok(SegmentKind::Benchmark(profile))
        }
        "tlb_thrash" => {
            check(&["pages", "lines_per_page", "load_fraction"])?;
            let d = TlbThrashParams::default();
            Ok(SegmentKind::TlbThrash(TlbThrashParams {
                // Slot 14 of the 32-bit space: 256 MiB = 65536 pages.
                pages: bounded_u32(t, "pages", d.pages, 65_536, ctx)?,
                lines_per_page: opt_u32(t, "lines_per_page", d.lines_per_page, ctx)?,
                load_fraction: opt_f64(t, "load_fraction", d.load_fraction, ctx)?.clamp(0.0, 1.0),
            }))
        }
        "bank_conflict" => {
            check(&["stride_lines", "pages"])?;
            let d = BankConflictParams::default();
            Ok(SegmentKind::BankConflict(BankConflictParams {
                stride_lines: opt_u32(t, "stride_lines", d.stride_lines, ctx)?,
                // Lower half of slot 15: 128 MiB = 32768 pages.
                pages: bounded_u32(t, "pages", d.pages, 32_768, ctx)?,
            }))
        }
        "store_burst" => {
            check(&["burst", "loads_after", "lines_back", "gap", "pages"])?;
            let d = StoreBurstParams::default();
            Ok(SegmentKind::StoreBurst(StoreBurstParams {
                burst: opt_u32(t, "burst", d.burst, ctx)?,
                loads_after: opt_u32(t, "loads_after", d.loads_after, ctx)?,
                lines_back: opt_u32(t, "lines_back", d.lines_back, ctx)?,
                gap: opt_u32(t, "gap", d.gap, ctx)?,
                // Upper half of slot 15: 128 MiB = 32768 pages.
                pages: bounded_u32(t, "pages", d.pages, 32_768, ctx)?,
            }))
        }
        other => Err(bad(format!(
            "{ctx}: unknown segment kind `{other}` \
             (expected benchmark | tlb_thrash | bank_conflict | store_burst)"
        ))),
    }
}

fn parse_scenario(root: &Table) -> Result<Scenario, SpecError> {
    let t = root
        .get("scenario")
        .and_then(Value::as_table)
        .ok_or_else(|| bad("spec needs a [scenario] table"))?;
    let mode = t.get("mode").and_then(Value::as_str).unwrap_or("phased");
    if mode == "preset" {
        reject_unknown_keys(t, &["mode", "preset"], "[scenario]")?;
        let name = get_str(t, "preset", "[scenario]")?;
        return preset_named(name)
            .ok_or_else(|| bad(format!("[scenario]: unknown preset `{name}`")));
    }
    let name = get_str(t, "name", "[scenario]")?.to_owned();
    match mode {
        "phased" => {
            reject_unknown_keys(t, &["mode", "name", "phase"], "[scenario]")?;
            let phases = t
                .get("phase")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("phased scenarios need [[scenario.phase]] entries"))?;
            if phases.is_empty() {
                return Err(bad("phased scenarios need at least one phase"));
            }
            let phases = phases
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let ctx = format!("[[scenario.phase]] #{}", i + 1);
                    let pt = v
                        .as_table()
                        .ok_or_else(|| bad(format!("{ctx}: not a table")))?;
                    let insts = opt_u64(pt, "insts", 0, &ctx)?;
                    if insts == 0 {
                        return Err(bad(format!("{ctx}: needs `insts` > 0")));
                    }
                    Ok(Phase::new(parse_segment(pt, &["insts"], &ctx)?, insts))
                })
                .collect::<Result<Vec<_>, SpecError>>()?;
            Ok(Scenario::phased(name, phases))
        }
        "mixed" => {
            reject_unknown_keys(t, &["mode", "name", "block", "part"], "[scenario]")?;
            let parts = t
                .get("part")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("mixed scenarios need [[scenario.part]] entries"))?;
            if parts.is_empty() {
                return Err(bad("mixed scenarios need at least one part"));
            }
            let block = opt_u32(t, "block", 64, "[scenario]")?;
            if block == 0 {
                return Err(bad("[scenario]: `block` must be > 0"));
            }
            let parts = parts
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let ctx = format!("[[scenario.part]] #{}", i + 1);
                    let pt = v
                        .as_table()
                        .ok_or_else(|| bad(format!("{ctx}: not a table")))?;
                    let weight = opt_u32(pt, "weight", 1, &ctx)?;
                    if weight == 0 {
                        // Fail loudly: a zero-weight part would be silently
                        // clamped to 1 by MixPart::new, not disabled.
                        return Err(bad(format!(
                            "{ctx}: `weight` must be > 0 (delete the part to disable it)"
                        )));
                    }
                    Ok(MixPart::new(parse_segment(pt, &["weight"], &ctx)?, weight))
                })
                .collect::<Result<Vec<_>, SpecError>>()?;
            Ok(Scenario::mixed(name, parts, block))
        }
        other => Err(bad(format!(
            "[scenario]: unknown mode `{other}` (expected phased | mixed | preset)"
        ))),
    }
}

/// Parses a config label, naming the valid set on failure.
fn config_by_label(label: &str, ctx: &str) -> Result<SimConfig, SpecError> {
    SimConfig::by_label(label).ok_or_else(|| {
        bad(format!(
            "{ctx}: unknown config `{label}` (expected one of {})",
            SimConfig::figure4_set()
                .iter()
                .map(SimConfig::label)
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })
}

fn parse_compare(root: &Table) -> Result<Option<CompareSpec>, SpecError> {
    let Some(t) = root.get("compare").and_then(Value::as_table) else {
        return Ok(None);
    };
    reject_unknown_keys(t, &["baseline", "candidate", "alpha"], "[compare]")?;
    let d = CompareSpec::default();
    let side = |key: &str, default: SimConfig| match t.get(key) {
        None => Ok(default),
        Some(v) => {
            let label = v
                .as_str()
                .ok_or_else(|| bad(format!("[compare]: `{key}` must be a config label string")))?;
            config_by_label(label, "[compare]")
        }
    };
    let baseline = side("baseline", d.baseline)?;
    let candidate = side("candidate", d.candidate)?;
    if baseline.label() == candidate.label() {
        return Err(bad(
            "[compare]: `baseline` and `candidate` must differ (a config cannot be paired with itself)",
        ));
    }
    let alpha = match t.get("alpha") {
        None => d.alpha,
        Some(v) => {
            let f = v
                .as_float()
                .ok_or_else(|| bad("[compare]: `alpha` must be a number"))?;
            Alpha::from_value(f).ok_or_else(|| {
                bad("[compare]: `alpha` must be one of 0.10, 0.05, 0.01 (the exact t-table levels)")
            })?
        }
    };
    Ok(Some(CompareSpec {
        baseline,
        candidate,
        alpha,
    }))
}

fn parse_configs(root: &Table, compare: Option<&CompareSpec>) -> Result<Vec<SimConfig>, SpecError> {
    let sweep = root.get("sweep").and_then(Value::as_table);
    let Some(list) = sweep
        .and_then(|t| t.get("configs"))
        .and_then(Value::as_array)
    else {
        // No explicit list: the compared pair when a [compare] section
        // names one, otherwise the three Table I configurations.
        if let Some(cmp) = compare {
            return Ok(vec![cmp.baseline.clone(), cmp.candidate.clone()]);
        }
        return Ok(vec![
            SimConfig::base1ldst(),
            SimConfig::base2ld1st(),
            SimConfig::malec(),
        ]);
    };
    if list.is_empty() {
        return Err(bad("[sweep]: `configs` must not be empty"));
    }
    list.iter()
        .map(|v| {
            let label = v
                .as_str()
                .ok_or_else(|| bad("[sweep]: `configs` must be a list of strings"))?;
            config_by_label(label, "[sweep]")
        })
        .collect()
}

/// Parses a complete spec document.
///
/// # Errors
///
/// Returns a [`SpecError`] describing the first TOML or semantic problem.
pub fn parse_spec(input: &str) -> Result<SweepSpec, SpecError> {
    let root = parse(input)?;
    reject_unknown_keys(&root, &["scenario", "sweep", "report", "compare"], "spec")?;
    let scenario = parse_scenario(&root)?;
    let compare = parse_compare(&root)?;
    let configs = parse_configs(&root, compare.as_ref())?;
    let sweep = root.get("sweep").and_then(Value::as_table);
    let (insts, seed, replication) = match sweep {
        Some(t) => {
            reject_unknown_keys(
                t,
                &[
                    "configs",
                    "insts",
                    "seed",
                    "seeds",
                    "min_seeds",
                    "ci_target",
                    "ci_metric",
                ],
                "[sweep]",
            )?;
            (
                opt_u64(t, "insts", DEFAULT_INSTS, "[sweep]")?,
                opt_u64(t, "seed", DEFAULT_SEED, "[sweep]")?,
                parse_replication(t)?,
            )
        }
        None => (DEFAULT_INSTS, DEFAULT_SEED, Replication::single()),
    };
    if insts == 0 {
        return Err(bad("[sweep]: `insts` must be > 0"));
    }
    let report = root.get("report").and_then(Value::as_table);
    if let Some(t) = report {
        reject_unknown_keys(t, &["out", "mtr", "compare"], "[report]")?;
    }
    let out = report
        .and_then(|t| t.get("out"))
        .and_then(Value::as_str)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}_report.json", scenario.name));
    let mtr = report
        .and_then(|t| t.get("mtr"))
        .and_then(Value::as_str)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}.mtr", scenario.name));
    let compare_out = report
        .and_then(|t| t.get("compare"))
        .and_then(Value::as_str)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}_compare.json", scenario.name));
    let spec = SweepSpec {
        scenario,
        configs,
        insts,
        seed,
        replication,
        compare,
        out,
        mtr,
        compare_out,
    };
    if spec.compare.is_some() {
        // An explicit [compare] must be coherent with the rest of the spec
        // at parse time (membership in the configs, enough seeds for an
        // interval) — not only when someone eventually asks for deltas.
        spec.resolve_compare()?;
    }
    Ok(spec)
}

/// Parses and validates the `[sweep]` replication knobs.
fn parse_replication(t: &Table) -> Result<Replication, SpecError> {
    let seeds = opt_u32(t, "seeds", 1, "[sweep]")?;
    if seeds == 0 {
        return Err(bad(
            "[sweep]: `seeds` must be >= 1 (a cell needs at least one replicate)",
        ));
    }
    if seeds > MAX_SEEDS {
        return Err(bad(format!("[sweep]: `seeds` must be at most {MAX_SEEDS}")));
    }
    let ci_target = match t.get("ci_target") {
        None => None,
        Some(v) => {
            let f = v
                .as_float()
                .filter(|f| f.is_finite() && *f > 0.0)
                .ok_or_else(|| bad("[sweep]: `ci_target` must be a finite number > 0"))?;
            Some(f)
        }
    };
    if ci_target.is_some() && seeds < 2 {
        return Err(bad(
            "[sweep]: `ci_target` needs `seeds` >= 2 (one replicate has no interval)",
        ));
    }
    let min_seeds = opt_u32(t, "min_seeds", DEFAULT_MIN_SEEDS.min(seeds), "[sweep]")?;
    if ci_target.is_some() && min_seeds < 2 {
        return Err(bad(
            "[sweep]: `min_seeds` must be >= 2 with a `ci_target` (a CI needs two replicates)",
        ));
    }
    if min_seeds == 0 || min_seeds > seeds {
        return Err(bad(format!(
            "[sweep]: `min_seeds` must be in 1..=seeds (= {seeds})"
        )));
    }
    let metric = match t.get("ci_metric") {
        None => CiMetric::default(),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| bad("[sweep]: `ci_metric` must be a string"))?;
            CiMetric::parse(name).ok_or_else(|| {
                bad(format!(
                    "[sweep]: unknown ci_metric `{name}` (expected ipc | energy_per_access)"
                ))
            })?
        }
    };
    Ok(Replication {
        seeds,
        min_seeds,
        ci_target,
        metric,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use malec_trace::scenario::Composition;

    const MIXED: &str = r#"
[scenario]
name = "demo"
mode = "mixed"
block = 32

[[scenario.part]]
kind = "benchmark"
benchmark = "djpeg"
weight = 2

[[scenario.part]]
kind = "store_burst"
burst = 20

[sweep]
configs = ["Base1ldst", "MALEC"]
insts = 9000
seed = 7

[report]
out = "demo.json"
mtr = "demo.mtr"
"#;

    #[test]
    fn parses_a_mixed_spec() {
        let spec = parse_spec(MIXED).expect("parses");
        assert_eq!(spec.scenario.name, "demo");
        assert_eq!(spec.insts, 9000);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.out, "demo.json");
        assert_eq!(spec.mtr, "demo.mtr");
        assert_eq!(spec.configs.len(), 2);
        assert_eq!(spec.configs[1].label(), "MALEC");
        match &spec.scenario.composition {
            Composition::Mixed { parts, block } => {
                assert_eq!(*block, 32);
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[0].weight, 2);
                assert_eq!(parts[0].kind.label(), "djpeg");
                match &parts[1].kind {
                    SegmentKind::StoreBurst(p) => assert_eq!(p.burst, 20),
                    other => panic!("wrong kind: {other:?}"),
                }
            }
            other => panic!("wrong composition: {other:?}"),
        }
    }

    #[test]
    fn parses_a_phased_spec_with_defaults() {
        let spec = parse_spec(
            "[scenario]\nname = \"p\"\n\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 500\n",
        )
        .expect("parses");
        assert_eq!(spec.insts, DEFAULT_INSTS);
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.configs.len(), 3, "Table I defaults");
        assert_eq!(spec.out, "p_report.json");
        assert_eq!(spec.mtr, "p.mtr");
    }

    #[test]
    fn parses_replication_knobs_with_defaults() {
        // No knobs: the legacy single-seed behavior.
        let spec = parse_spec(MIXED).expect("parses");
        assert_eq!(spec.replication, Replication::single());

        // Fixed replication: min_seeds defaults to min(3, seeds).
        let doc = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n[sweep]\nseeds = 8\n";
        let spec = parse_spec(doc).expect("parses");
        assert_eq!(spec.replication.seeds, 8);
        assert_eq!(spec.replication.min_seeds, 3);
        assert_eq!(spec.replication.ci_target, None);
        assert_eq!(spec.replication.initial_count(), 8, "no target: run all");

        // CI-driven early stopping.
        let doc = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                   [sweep]\nseeds = 16\nmin_seeds = 4\nci_target = 0.02\nci_metric = \"energy_per_access\"\n";
        let spec = parse_spec(doc).expect("parses");
        assert_eq!(spec.replication.seeds, 16);
        assert_eq!(spec.replication.min_seeds, 4);
        assert_eq!(spec.replication.ci_target, Some(0.02));
        assert_eq!(spec.replication.metric, CiMetric::EnergyPerAccess);
        assert_eq!(spec.replication.initial_count(), 4, "target: start minimal");

        // seeds = 2 clamps the default minimum to the cap.
        let doc = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n[sweep]\nseeds = 2\n";
        assert_eq!(parse_spec(doc).expect("parses").replication.min_seeds, 2);
    }

    #[test]
    fn parses_compare_sections() {
        // Explicit pairing with its own alpha; configs default to the pair.
        let doc = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                   [compare]\nbaseline = \"Base2ld1st\"\ncandidate = \"MALEC\"\nalpha = 0.01\n\
                   [sweep]\nseeds = 4\n";
        let spec = parse_spec(doc).expect("parses");
        let cmp = spec.compare.as_ref().expect("compare section");
        assert_eq!(cmp.baseline.label(), "Base2ld1st");
        assert_eq!(cmp.candidate.label(), "MALEC");
        assert_eq!(cmp.alpha, Alpha::One);
        assert_eq!(
            spec.configs
                .iter()
                .map(SimConfig::label)
                .collect::<Vec<_>>(),
            ["Base2ld1st", "MALEC"],
            "no explicit configs: the compared pair is the sweep"
        );
        assert_eq!(spec.compare_out, "store_burst_compare.json");
        let resolved = spec.resolve_compare().expect("resolves");
        assert_eq!((resolved.baseline, resolved.candidate), (0, 1));
        assert_eq!(resolved.alpha, Alpha::One);

        // Empty [compare] table: the paper's default pairing at 0.05.
        let doc = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                   [compare]\n\n[sweep]\nseeds = 2\n\
                   [report]\ncompare = \"deltas.json\"\n";
        let spec = parse_spec(doc).expect("parses");
        let cmp = spec.compare.as_ref().expect("compare section");
        assert_eq!(cmp.baseline.label(), "Base1ldst");
        assert_eq!(cmp.candidate.label(), "MALEC");
        assert_eq!(cmp.alpha, Alpha::Five);
        assert_eq!(spec.compare_out, "deltas.json");

        // No [compare] at all: the spec still resolves to the default
        // pairing against its (Table I default) configs.
        let doc = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n[sweep]\nseeds = 3\n";
        let spec = parse_spec(doc).expect("parses");
        assert!(spec.compare.is_none());
        let resolved = spec.resolve_compare().expect("default pairing resolves");
        assert_eq!(spec.configs[resolved.baseline].label(), "Base1ldst");
        assert_eq!(spec.configs[resolved.candidate].label(), "MALEC");

        // ...but not when a ci_target is in play: a plain replicated sweep
        // stops marginally (submit stays bit-identical to run), so an
        // implicit pairing on top would diverge from a local paired run.
        // Stopping must follow exactly one criterion — demand an explicit
        // [compare].
        let doc = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                   [sweep]\nseeds = 8\nci_target = 0.1\n";
        let spec = parse_spec(doc).expect("still a valid run/submit spec");
        let e = spec
            .resolve_compare()
            .expect_err("implicit pairing + ci_target");
        assert!(e.to_string().contains("explicit"), "{e}");
    }

    #[test]
    fn rejects_bad_compare_sections() {
        for (doc, needle) in [
            (
                "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                 [compare]\nbaseline = \"Qux\"\n[sweep]\nseeds = 4\n",
                "unknown config `Qux`",
            ),
            (
                "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                 [compare]\nbaseline = \"MALEC\"\ncandidate = \"MALEC\"\n[sweep]\nseeds = 4\n",
                "must differ",
            ),
            (
                "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                 [compare]\nalpha = 0.07\n[sweep]\nseeds = 4\n",
                "one of 0.10, 0.05, 0.01",
            ),
            (
                "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                 [compare]\nalhpa = 0.05\n[sweep]\nseeds = 4\n",
                "unknown key `alhpa`",
            ),
            // A paired verdict needs an interval: one seed cannot carry one.
            (
                "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n[compare]\n",
                "`seeds` >= 2",
            ),
            // Explicit configs must contain the compared pair.
            (
                "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                 [compare]\ncandidate = \"MALEC\"\n\
                 [sweep]\nconfigs = [\"Base2ld1st\", \"MALEC\"]\nseeds = 4\n",
                "`Base1ldst` is not in the sweep's configs",
            ),
        ] {
            let e = parse_spec(doc).expect_err(doc);
            assert!(e.to_string().contains(needle), "`{e}` lacks `{needle}`");
        }
    }

    #[test]
    fn parses_a_preset_spec() {
        let spec = parse_spec("[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n")
            .expect("parses");
        assert_eq!(spec.scenario.name, "store_burst");
    }

    #[test]
    fn rejects_bad_specs() {
        for (doc, needle) in [
            ("x = 1\n", "unknown key `x`"),
            ("[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nconfigs = []\n", "must not be empty"),
            ("[scenario]\nname = \"a\"\n", "phase"),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"benchmark\"\nbenchmark = \"gzip\"\n",
                "insts",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"what\"\ninsts = 5\n",
                "unknown segment kind",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"benchmark\"\nbenchmark = \"nope\"\ninsts = 5\n",
                "unknown benchmark",
            ),
            (
                "[scenario]\nmode = \"preset\"\npreset = \"nope\"\n",
                "unknown preset",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nconfigs = [\"Qux\"]\n",
                "unknown config",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\ninsts = 0\n",
                "insts",
            ),
            // Misplaced and typo'd keys must fail loudly, not silently
            // fall back to defaults.
            (
                "[scenario]\nname = \"a\"\ninsts = 500000\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n",
                "unknown key `insts`",
            ),
            // Replication knobs validate hard: zero seeds, a minimum above
            // the cap, an interval target without replicates, an unknown
            // metric — each is a loud error, never a silent clamp.
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nseeds = 0\n",
                "`seeds` must be >= 1",
            ),
            // Unbounded seeds would let one tiny request demand a
            // configs x seeds work-unit allocation in malec-serve.
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nseeds = 4294967295\n",
                "`seeds` must be at most 1024",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nseeds = 4\nmin_seeds = 9\n",
                "`min_seeds` must be in 1..=seeds",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nci_target = 0.05\n",
                "`ci_target` needs `seeds` >= 2",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nseeds = 8\nci_target = 0.0\n",
                "`ci_target` must be a finite number > 0",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nseeds = 8\nci_target = 0.05\nmin_seeds = 1\n",
                "`min_seeds` must be >= 2 with a `ci_target`",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nseeds = 8\nci_metric = \"cycles\"\n",
                "unknown ci_metric",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[sweep]\nseedz = 7\n",
                "unknown key `seedz`",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"store_burst\"\nburts = 9\ninsts = 5\n",
                "unknown key `burts`",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\ninsts = 5\n[reprot]\nout = \"x\"\n",
                "unknown key `reprot`",
            ),
            // Region bounds and zero weights fail loudly too.
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"tlb_thrash\"\npages = 100000\ninsts = 5\n",
                "at most 65536",
            ),
            (
                "[scenario]\nname = \"a\"\n[[scenario.phase]]\nkind = \"bank_conflict\"\npages = 40000\ninsts = 5\n",
                "at most 32768",
            ),
            (
                "[scenario]\nname = \"a\"\nmode = \"mixed\"\n[[scenario.part]]\nkind = \"tlb_thrash\"\nweight = 0\n",
                "`weight` must be > 0",
            ),
        ] {
            let e = parse_spec(doc).expect_err(doc);
            assert!(e.to_string().contains(needle), "`{e}` lacks `{needle}`");
        }
    }
}
