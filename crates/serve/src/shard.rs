//! Deterministic key ownership for sharded peer serving.
//!
//! Rendezvous (highest-random-weight) hashing over the cache's stable
//! u128 keys: every peer, configured with the same `--peers` set,
//! computes the same owner for every key with no coordination — cell
//! results are location-independent pure functions of their key, so
//! ownership needs no consensus, only agreement on the hash. The score
//! is FNV-1a over `key ‖ peer address` — no `RandomState`, no clock —
//! so a map built tomorrow on another machine agrees with one built
//! today here.
//!
//! Rendezvous hashing also gives minimal key movement: when a peer
//! joins or leaves, the only keys that change owner are the ones that
//! peer wins (or was winning) — everyone else's argmax is untouched.
//! The proptests in `tests/sharding.rs` pin down determinism, balance,
//! and that movement bound.

use malec_types::peer::PeerId;

/// The deterministic key→owner map shared by every peer of a cluster.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// The full peer set, self included — sorted and deduplicated so
    /// every peer agrees on iteration order and tie-breaks regardless
    /// of the order addresses were listed in `--peers`.
    peers: Vec<PeerId>,
    /// Index of this process's own address in `peers`.
    self_index: usize,
}

impl ShardMap {
    /// Builds the map from the full peer list (order-insensitive;
    /// duplicates collapse) and this peer's own serving address, which
    /// must be in the list — a peer that excluded itself would forward
    /// every cell it is handed.
    ///
    /// # Errors
    ///
    /// The peer list is empty, or `self_addr` is not in it.
    pub fn new(
        peers: impl IntoIterator<Item = impl Into<PeerId>>,
        self_addr: &str,
    ) -> Result<Self, String> {
        let mut peers: Vec<PeerId> = peers.into_iter().map(Into::into).collect();
        peers.sort();
        peers.dedup();
        if peers.is_empty() {
            return Err("peer set is empty".to_owned());
        }
        let self_index = peers
            .iter()
            .position(|p| p.as_str() == self_addr)
            .ok_or_else(|| {
                format!("own address {self_addr} is not in the peer set (list it in --peers too)")
            })?;
        Ok(Self { peers, self_index })
    }

    /// Every peer of the cluster, sorted, self included.
    pub fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    /// This process's own serving address.
    pub fn self_addr(&self) -> &PeerId {
        &self.peers[self.self_index]
    }

    /// The key's owner: the peer with the highest FNV-1a score over
    /// `key ‖ peer address`. Ties (astronomically unlikely, but cheap
    /// to close) break toward the lexicographically larger address —
    /// an order the constructor's sort fixed identically on every peer.
    pub fn owner(&self, key: u128) -> &PeerId {
        self.peers
            .iter()
            .max_by(|a, b| score(key, a).cmp(&score(key, b)).then_with(|| a.cmp(b)))
            .expect("peer set is never empty")
    }

    /// Whether this peer owns `key`.
    pub fn is_owner(&self, key: u128) -> bool {
        self.owner(key).as_str() == self.self_addr().as_str()
    }
}

/// FNV-1a over the key's little-endian bytes, then the peer's address
/// bytes — deterministic across processes, platforms, and restarts.
fn score(key: u128, peer: &PeerId) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in key.to_le_bytes().into_iter().chain(peer.as_str().bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEERS: [&str; 3] = ["10.0.0.1:4173", "10.0.0.2:4173", "10.0.0.3:4173"];

    #[test]
    fn construction_sorts_dedups_and_finds_self() {
        let map = ShardMap::new(
            [
                "10.0.0.2:4173",
                "10.0.0.1:4173",
                "10.0.0.2:4173",
                "10.0.0.3:4173",
            ],
            "10.0.0.2:4173",
        )
        .expect("valid map");
        assert_eq!(
            map.peers().iter().map(PeerId::as_str).collect::<Vec<_>>(),
            PEERS.to_vec(),
        );
        assert_eq!(map.self_addr().as_str(), "10.0.0.2:4173");
    }

    #[test]
    fn self_must_be_listed_and_set_must_be_nonempty() {
        let err = ShardMap::new(PEERS, "10.0.0.9:4173").expect_err("self not listed");
        assert!(err.contains("10.0.0.9:4173"), "{err}");
        let none: [&str; 0] = [];
        let err = ShardMap::new(none, "10.0.0.1:4173").expect_err("empty set");
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn ownership_is_independent_of_flag_order_and_vantage_point() {
        let forward = ShardMap::new(PEERS, PEERS[0]).expect("map");
        let mut reversed: Vec<&str> = PEERS.to_vec();
        reversed.reverse();
        let backward = ShardMap::new(reversed, PEERS[2]).expect("map");
        for key in [
            0u128,
            1,
            42,
            u128::MAX,
            0x00c0_ffee_0000_0000_0000_0000_0000_cafe,
        ] {
            assert_eq!(forward.owner(key), backward.owner(key), "key {key:#x}");
        }
    }

    #[test]
    fn exactly_one_peer_claims_each_key() {
        for key in (0u128..64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let owners: usize = PEERS
                .iter()
                .map(|own| ShardMap::new(PEERS, own).expect("map"))
                .filter(|m| m.is_owner(key))
                .count();
            assert_eq!(owners, 1, "key {key:#x} must have exactly one owner");
        }
    }
}
