//! A minimal JSON reader for the service's own wire format.
//!
//! The build environment has no network crates and no `serde_json`; the
//! service emits JSON by hand (same style as [`crate::report`]) and this
//! module parses it back — for the CLI client, the integration tests, and
//! anything else that consumes the API. It is a strict recursive-descent
//! parser over the JSON subset the service produces: objects, arrays,
//! strings with the common escapes, `f64` numbers, booleans and null.
//!
//! # Example
//!
//! ```
//! use malec_serve::json::parse;
//!
//! let v = parse(r#"{"job": 3, "state": "done", "cells": [1, 2]}"#).unwrap();
//! assert_eq!(v.get("job").and_then(|j| j.as_u64()), Some(3));
//! assert_eq!(v.get("state").and_then(|s| s.as_str()), Some("done"));
//! assert_eq!(v.get("cells").and_then(|c| c.as_array()).map(Vec::len), Some(2));
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integral values up to 2^53 are
    /// exact, far beyond any id or counter the API serves).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order is not preserved; the API never relies on it).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a
    /// non-negative integral number small enough (< 2^53) for the `f64`
    /// representation to be exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first syntax problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Maximum container nesting. The parser recurses once per `{`/`[`, so
/// without a bound a body like `[[[[…` — one byte per level — overflows
/// the thread stack long before any size limit trips. The service's own
/// documents nest 3–4 levels; 128 is generous headroom while keeping the
/// worst-case recursion depth trivially stack-safe.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth (bounded by [`MAX_DEPTH`]).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    /// Bumps the nesting depth on container entry; errors instead of
    /// recursing past [`MAX_DEPTH`] (the guard against stack overflow on
    /// adversarial `[[[[…` bodies).
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        self.enter()?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        self.enter()?;
        let mut elements = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(elements));
        }
        loop {
            self.skip_ws();
            elements.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(elements));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // The service never emits surrogate pairs
                            // (escapes cover only control characters).
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched: find the
                    // char at this byte offset and copy it whole.
                    let rest = self.bytes.get(self.pos..).unwrap_or_default();
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("string is not valid UTF-8"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        // A `-` consumed inside an exponent (`1e-3`) is part of the number
        // too; the digit loop above stops at it, so pick it up and continue.
        if matches!(self.peek(), Some(b'-'))
            && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
        {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|t| std::str::from_utf8(t).ok())
            .ok_or_else(|| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_service_shapes() {
        let v = parse(
            r#"{
  "bench": "malec_scenario_sweep",
  "wall_seconds": 0.1234,
  "replay_matches_generator": true,
  "cells": [
    {"config": "MALEC", "cycles": 12345, "digest": "0x0123456789abcdef"},
    {"config": "Base1ldst", "cycles": 23456, "digest": "0xfedcba9876543210"}
  ],
  "nothing": null
}"#,
        )
        .expect("parses");
        assert_eq!(
            v.get("bench").and_then(Value::as_str),
            Some("malec_scenario_sweep")
        );
        assert_eq!(v.get("wall_seconds").and_then(Value::as_f64), Some(0.1234));
        assert_eq!(
            v.get("replay_matches_generator").and_then(Value::as_bool),
            Some(true)
        );
        let cells = v.get("cells").and_then(Value::as_array).expect("array");
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].get("cycles").and_then(Value::as_u64), Some(23456));
        assert_eq!(v.get("nothing"), Some(&Value::Null));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\ndA""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn numbers_parse() {
        for (doc, want) in [
            ("0", 0.0),
            ("-12", -12.0),
            ("3.5", 3.5),
            ("1e3", 1000.0),
            ("2.5e-2", 0.025),
        ] {
            assert_eq!(parse(doc).expect(doc).as_f64(), Some(want), "{doc}");
        }
        // Beyond 2^53 the f64 representation stops being exact, so as_u64
        // refuses rather than silently rounding.
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "tru",
            "1 2",
            "{\"a\": }",
            "nul",
        ] {
            assert!(parse(doc).is_err(), "`{doc}` must be rejected");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // One byte per recursion level: without the depth guard, 100k open
        // brackets overflow a worker thread's stack. With it, this is a
        // clean parse error.
        for open in ["[", "{\"k\":"] {
            let doc = open.repeat(100_000);
            let err = parse(&doc).expect_err("must error, never crash");
            assert!(err.message.contains("nesting"), "{err}");
        }
        // Nesting at the limit still parses.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(parse(&ok).is_ok(), "128 levels are within the bound");
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"caf\u{e9} — ✓\"").expect("parses");
        assert_eq!(v.as_str(), Some("café — ✓"));
    }

    /// The request-path hardening conversions: every site that used to
    /// index or `expect` on request-derived bytes must now answer these
    /// adversarial documents with a clean `Err`, never a panic.
    #[test]
    fn truncated_documents_error_cleanly() {
        // literal(): keyword cut at end of input (the old unchecked
        // `bytes[pos..]` slice site).
        for doc in ["t", "tru", "fals", "n", "nul"] {
            assert!(parse(doc).is_err(), "{doc:?} must be a parse error");
        }
        // number(): a bare sign parses no digits (the old
        // `expect("ASCII digits")` site must surface `bad number`).
        for doc in ["-", "-e", "1e", "."] {
            let err = parse(doc).expect_err("bad number must error");
            assert!(
                err.message.contains("number") || err.message.contains("character"),
                "{err}"
            );
        }
        // string(): escapes and quotes cut at end of input (the old
        // `expect("peeked a byte")` neighborhood).
        for doc in ["\"", "\"\\", "\"\\u", "\"\\u00", "\"abc"] {
            assert!(parse(doc).is_err(), "{doc:?} must be a parse error");
        }
    }
}
