//! A hand-rolled HTTP/1.1 subset over `std::net` — just enough protocol for
//! the batch-service API, in the same spirit as the hand-rolled TOML parser
//! this workspace already carries (the build environment has no network
//! crates).
//!
//! Server side: [`read_request`] parses one request (request line, headers,
//! `Content-Length` body) off a stream; [`write_response`] emits a complete
//! `Connection: close` response. Client side: [`request`] performs one
//! round trip. One request per connection keeps the framing trivial —
//! connection reuse buys nothing for a localhost batch API.
//!
//! Binary endpoints (`/v1/cache/sync`) stream instead of buffering:
//! [`write_response_head`] emits the head and lets the handler write the
//! body in pieces, and [`request_stream`] hands the caller a bounded
//! [`ByteStream`] reader over the response body — a cache snapshot can
//! exceed the 4 MiB JSON body cap without either side holding it whole.
//!
//! Limits are deliberate: 8 KiB per header line, 64 headers, 4 MiB bodies.
//! A malformed or oversized request produces a clean error (the server
//! turns it into `400`), never a panic or an unbounded allocation.
//!
//! Time is bounded too: [`read_request_deadline`] spends at most a fixed
//! **total** budget reading one request, counted across every byte — a
//! slow-loris client trickling one byte per socket-timeout window gets cut
//! off at the deadline, not kept alive indefinitely by per-read timeouts.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Maximum accepted header-line length.
const MAX_LINE: usize = 8 * 1024;
/// Maximum accepted header count.
const MAX_HEADERS: usize = 64;
/// Maximum accepted body size (a large TOML spec is a few KiB; reports a
/// few hundred KiB).
const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`).
    pub method: String,
    /// Request target (path only, query string stripped).
    pub path: String,
    /// The raw query string after `?` (empty when absent).
    pub query: String,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the body is not UTF-8.
    pub fn body_utf8(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))
    }

    /// The value of query parameter `name` (`?name=value&...`), if present.
    /// No percent-decoding — the v1 API's parameter values are plain
    /// tokens (`mode=abort`).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one CRLF- (or LF-) terminated line, bounded by [`MAX_LINE`]
/// **consumed** bytes (not kept bytes — a stream of bare `\r`s must not
/// bypass the bound and pin the handler thread).
fn read_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = Vec::new();
    let mut consumed = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && !line.is_empty() => break,
            Err(e) => return Err(e),
        }
        consumed += 1;
        let [b] = byte;
        if b == b'\n' {
            break;
        }
        if b != b'\r' {
            line.push(b);
        }
        if consumed > MAX_LINE {
            return Err(bad("header line too long"));
        }
    }
    String::from_utf8(line).map_err(|_| bad("header line is not UTF-8"))
}

/// A [`Read`] adaptor enforcing one **total** deadline across every read:
/// before each syscall the socket timeout is clamped to the time left, so
/// the sum of waits — however the peer paces its bytes — cannot exceed the
/// budget.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self
            .deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::TimedOut, "request read deadline exceeded")
            })?;
        self.stream.set_read_timeout(Some(remaining))?;
        (&mut self.stream).read(buf).map_err(|e| {
            // Unix surfaces a socket read timeout as EAGAIN (`WouldBlock`);
            // normalize so callers see one deadline error kind.
            if e.kind() == io::ErrorKind::WouldBlock {
                io::Error::new(io::ErrorKind::TimedOut, "request read deadline exceeded")
            } else {
                e
            }
        })
    }
}

/// Parses one request off `stream`.
///
/// # Errors
///
/// Returns `InvalidData` for malformed or over-limit requests and
/// propagates socket errors.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    parse_request(&mut reader)
}

/// Parses one request off `stream`, spending at most `deadline` in total —
/// the slow-loris defense: a client may not hold a handler thread longer
/// than the budget no matter how slowly it drips bytes.
///
/// # Errors
///
/// Returns `TimedOut` when the budget runs out, `InvalidData` for
/// malformed or over-limit requests, and propagates socket errors.
pub fn read_request_deadline(stream: &TcpStream, deadline: Duration) -> io::Result<Request> {
    let mut reader = BufReader::new(DeadlineStream {
        stream,
        deadline: Instant::now() + deadline,
    });
    parse_request(&mut reader)
}

fn parse_request(reader: &mut impl BufRead) -> io::Result<Request> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad("request line lacks a target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    if !path.starts_with('/') {
        return Err(bad("request target must be an absolute path"));
    }

    let mut content_length: Option<usize> = None;
    // One extra iteration beyond MAX_HEADERS for the terminating blank
    // line, so a request with exactly MAX_HEADERS headers is accepted.
    for _ in 0..=MAX_HEADERS {
        let line = read_line(reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length.unwrap_or(0)];
            reader.read_exact(&mut body)?;
            return Ok(Request {
                method,
                path,
                query,
                body,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let len = parse_content_length(value, content_length)?;
            if len > MAX_BODY {
                return Err(bad("body too large"));
            }
            content_length = Some(len);
        }
    }
    Err(bad("too many headers"))
}

/// Parses one `Content-Length` value against any previously seen one.
/// Duplicate headers with the **same** value are tolerated (they are
/// unambiguous); *conflicting* duplicates are refused — the historical
/// last-one-wins behavior is exactly the parsing ambiguity behind request
/// smuggling, and a batch API has no reason to guess.
fn parse_content_length(value: &str, previous: Option<usize>) -> io::Result<usize> {
    let len: usize = value
        .trim()
        .parse()
        .map_err(|_| bad("bad Content-Length"))?;
    match previous {
        Some(prev) if prev != len => Err(bad(format!(
            "conflicting Content-Length headers ({prev} vs {len})"
        ))),
        _ => Ok(len),
    }
}

/// Human reason phrase for the status codes the service uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra headers (e.g. `Retry-After` on a `503`).
/// Header names and values must be token-clean; the caller controls them.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes only the response head (status line, `Content-Type`,
/// `Content-Length`, `Connection: close`, blank line) for a body the
/// caller streams itself — exactly `content_length` bytes must follow.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    content_length: usize,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {content_length}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
    );
    stream.write_all(head.as_bytes())
}

/// One complete HTTP response as the client sees it.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// UTF-8 body.
    pub body: String,
    /// A parsed `Retry-After: <seconds>` header, if the server sent one
    /// (the saturation gate does, on `503`).
    pub retry_after: Option<u64>,
}

/// Default per-call network timeout for [`request`].
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// Performs one HTTP round trip against `addr` and returns
/// `(status, body)`.
///
/// # Errors
///
/// Propagates connection and socket errors; returns `InvalidData` for a
/// malformed response.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, String)> {
    request_meta(addr, method, path, body, CLIENT_TIMEOUT).map(|r| (r.status, r.body))
}

/// [`request`] with an explicit timeout (applied to connect, reads, and
/// writes separately) and response metadata — the retry layer needs the
/// `Retry-After` header, not just the status.
///
/// # Errors
///
/// Propagates connection and socket errors; returns `InvalidData` for a
/// malformed response.
pub fn request_meta(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<Response> {
    let mut stream = connect_timeout(addr, timeout)?;
    // A batch API must never hang a client forever on a wedged peer.
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: malec-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let (status, content_length, retry_after) = read_response_head(&mut reader)?;
    if content_length.is_some_and(|len| len > MAX_BODY) {
        return Err(bad("response too large"));
    }
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        // Connection: close responses without a length end at EOF.
        None => {
            let mut buf = Vec::new();
            reader.take(MAX_BODY as u64).read_to_end(&mut buf)?;
            buf
        }
    };
    let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
    Ok(Response {
        status,
        body,
        retry_after,
    })
}

/// Parses a response's status line and headers off `reader`, returning
/// `(status, content_length, retry_after)` and leaving the reader at the
/// first body byte. Shared by the buffering and streaming clients; body
/// size limits are the caller's policy.
fn read_response_head(reader: &mut impl BufRead) -> io::Result<(u16, Option<usize>, Option<u64>)> {
    let status_line = read_line(reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line `{status_line}`")))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    let mut headers_ended = false;
    for _ in 0..=MAX_HEADERS {
        let line = read_line(reader)?;
        if line.is_empty() {
            headers_ended = true;
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(parse_content_length(value, content_length)?);
            } else if name.eq_ignore_ascii_case("retry-after") {
                // Only the delta-seconds form; an unparsable value (the
                // HTTP-date form) is ignored, not an error.
                retry_after = value.trim().parse().ok();
            }
        }
    }
    if !headers_ended {
        // Falling out of the loop would misparse leftover header bytes as
        // the body; refuse like the server side does.
        return Err(bad("too many headers in response"));
    }
    Ok((status, content_length, retry_after))
}

/// A streaming response body: bounded by the response's `Content-Length`
/// when present, by connection close otherwise. What
/// [`request_stream`] hands back.
pub struct ByteStream {
    reader: std::io::Take<BufReader<TcpStream>>,
}

impl Read for ByteStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reader.read(buf)
    }
}

/// Performs one bodyless round trip against `addr` and returns the status
/// plus a [`ByteStream`] over the response body — the client side of
/// binary endpoints, where the body may exceed the JSON body cap and
/// should be consumed incrementally (the cache's `ingest` verifies it
/// record by record as it arrives).
///
/// # Errors
///
/// Propagates connection and socket errors; returns `InvalidData` for a
/// malformed response head.
pub fn request_stream(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    timeout: Duration,
) -> io::Result<(u16, ByteStream)> {
    let mut stream = connect_timeout(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: malec-serve\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let (status, content_length, _) = read_response_head(&mut reader)?;
    let limit = content_length.map_or(u64::MAX, |l| l as u64);
    Ok((
        status,
        ByteStream {
            reader: reader.take(limit),
        },
    ))
}

/// `TcpStream::connect` with a timeout (std only offers it per
/// `SocketAddr`, so resolve first and try each address).
fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<TcpStream> {
    let mut last: Option<io::Error> = None;
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    for a in addrs {
        match TcpStream::connect_timeout(&a, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot echo server: accepts a single connection, parses the
    /// request, responds with its own view of it.
    fn spawn_echo() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            match read_request(&mut stream) {
                Ok(req) => {
                    let body = format!(
                        "{} {} {}",
                        req.method,
                        req.path,
                        String::from_utf8_lossy(&req.body)
                    );
                    write_response(&mut stream, 200, "text/plain", body.as_bytes()).ok();
                }
                Err(e) => {
                    write_response(&mut stream, 400, "text/plain", e.to_string().as_bytes()).ok();
                }
            }
        });
        addr
    }

    #[test]
    fn round_trip_with_body() {
        let addr = spawn_echo();
        let (status, body) = request(addr, "POST", "/v1/jobs", b"[scenario]").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, "POST /v1/jobs [scenario]");
    }

    /// The hardened single-byte reader (destructured, no indexing) keeps
    /// the exact line semantics: CRLF and bare-LF both terminate, a lone
    /// CR is dropped, EOF mid-line yields what arrived.
    #[test]
    fn read_line_handles_terminators_and_eof() {
        let mut crlf = std::io::Cursor::new(b"abc\r\nrest".to_vec());
        assert_eq!(read_line(&mut crlf).expect("line"), "abc");
        let mut lf = std::io::Cursor::new(b"abc\nrest".to_vec());
        assert_eq!(read_line(&mut lf).expect("line"), "abc");
        let mut bare_cr = std::io::Cursor::new(b"a\rb\n".to_vec());
        assert_eq!(read_line(&mut bare_cr).expect("line"), "ab");
        let mut eof = std::io::Cursor::new(b"tail".to_vec());
        assert_eq!(read_line(&mut eof).expect("line"), "tail");
    }

    #[test]
    fn round_trip_without_body() {
        let addr = spawn_echo();
        let (status, body) = request(addr, "GET", "/v1/healthz", b"").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, "GET /v1/healthz ");
    }

    #[test]
    fn query_strings_are_stripped() {
        let addr = spawn_echo();
        let (_, body) = request(addr, "GET", "/v1/jobs/3?verbose=1", b"").expect("request");
        assert!(body.starts_with("GET /v1/jobs/3 "), "{body}");
    }

    #[test]
    fn query_params_parse() {
        let req = Request {
            method: "POST".into(),
            path: "/v1/shutdown".into(),
            query: "mode=abort&x=1".into(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("mode"), Some("abort"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("absent"), None);
        assert_eq!(req.query_param("abort"), None, "values are not keys");
    }

    #[test]
    fn slow_loris_is_cut_at_the_total_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let started = std::time::Instant::now();
            let err = read_request_deadline(&stream, Duration::from_millis(200))
                .expect_err("dripped request must time out");
            (err, started.elapsed())
        });
        // Drip a valid-looking request one byte at a time, each byte well
        // within any per-read socket timeout — only a *total* deadline
        // stops this.
        let mut stream = TcpStream::connect(addr).expect("connect");
        for b in b"GET /v1/healthz HTTP/1.1\r\n" {
            if stream.write_all(&[*b]).is_err() {
                break; // server hung up at the deadline
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        let (err, elapsed) = server.join().expect("server thread");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        assert!(
            elapsed < Duration::from_secs(2),
            "deadline must fire promptly, took {elapsed:?}"
        );
    }

    #[test]
    fn extra_headers_reach_the_client() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            read_request(&mut stream).ok();
            write_response_with(
                &mut stream,
                503,
                "application/json",
                &[("Retry-After", "7")],
                b"{\"error\": \"saturated\"}",
            )
            .ok();
        });
        let resp = request_meta(addr, "GET", "/", b"", Duration::from_secs(5)).expect("round trip");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(7));
        assert!(resp.body.contains("saturated"));
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        // Server side: the request parser must refuse to pick a winner
        // between two disagreeing Content-Length headers.
        let addr = spawn_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nabcdefghijk",
            )
            .expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("conflicting Content-Length"), "{out}");
    }

    #[test]
    fn identical_duplicate_content_lengths_are_tolerated() {
        // Duplicates that agree are unambiguous; the body parses normally.
        let addr = spawn_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc")
            .expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.ends_with("POST /x abc"), "{out}");
    }

    #[test]
    fn client_rejects_conflicting_content_lengths_in_responses() {
        // A malicious or broken server must not trick the client into
        // reading the wrong byte count.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            read_request(&mut stream).ok();
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello",
                )
                .ok();
        });
        let err = request(addr, "GET", "/", b"").expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("conflicting Content-Length"),
            "{err}"
        );
    }

    #[test]
    fn streamed_response_bodies_arrive_whole_and_bounded() {
        // The server writes the head, then the body in two chunks with a
        // pause between (the /v1/cache/sync shape); the client's
        // ByteStream reassembles exactly Content-Length bytes — trailing
        // garbage past the declared length is never surfaced.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let payload: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            read_request(&mut stream).ok();
            write_response_head(&mut stream, 200, "application/octet-stream", payload.len())
                .expect("head");
            let (a, b) = payload.split_at(payload.len() / 2);
            stream.write_all(a).expect("first half");
            stream.flush().ok();
            std::thread::sleep(Duration::from_millis(30));
            stream.write_all(b).expect("second half");
            stream.write_all(b"TRAILING-GARBAGE").ok();
        });
        let (status, mut body) =
            request_stream(addr, "GET", "/v1/cache/sync", Duration::from_secs(5)).expect("stream");
        assert_eq!(status, 200);
        let mut got = Vec::new();
        body.read_to_end(&mut got).expect("read body");
        assert_eq!(got, expected, "chunked writes reassemble bit-identically");
    }

    #[test]
    fn malformed_request_is_a_clean_400() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            match read_request(&mut stream) {
                Ok(_) => write_response(&mut stream, 200, "text/plain", b"ok").ok(),
                Err(_) => write_response(&mut stream, 400, "text/plain", b"bad").ok(),
            };
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"NOT-HTTP\r\n\r\n").expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }
}
