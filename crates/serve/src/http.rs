//! A hand-rolled HTTP/1.1 subset over `std::net` — just enough protocol for
//! the batch-service API, in the same spirit as the hand-rolled TOML parser
//! this workspace already carries (the build environment has no network
//! crates).
//!
//! Server side: [`read_request`] parses one request (request line, headers,
//! `Content-Length` body) off a stream; [`write_response`] emits a complete
//! `Connection: close` response. Client side: [`request`] performs one
//! round trip. One request per connection keeps the framing trivial —
//! connection reuse buys nothing for a localhost batch API.
//!
//! Limits are deliberate: 8 KiB per header line, 64 headers, 4 MiB bodies.
//! A malformed or oversized request produces a clean error (the server
//! turns it into `400`), never a panic or an unbounded allocation.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Maximum accepted header-line length.
const MAX_LINE: usize = 8 * 1024;
/// Maximum accepted header count.
const MAX_HEADERS: usize = 64;
/// Maximum accepted body size (a large TOML spec is a few KiB; reports a
/// few hundred KiB).
const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`).
    pub method: String,
    /// Request target (path only; the service ignores query strings).
    pub path: String,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the body is not UTF-8.
    pub fn body_utf8(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one CRLF- (or LF-) terminated line, bounded by [`MAX_LINE`]
/// **consumed** bytes (not kept bytes — a stream of bare `\r`s must not
/// bypass the bound and pin the handler thread).
fn read_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = Vec::new();
    let mut consumed = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && !line.is_empty() => break,
            Err(e) => return Err(e),
        }
        consumed += 1;
        if byte[0] == b'\n' {
            break;
        }
        if byte[0] != b'\r' {
            line.push(byte[0]);
        }
        if consumed > MAX_LINE {
            return Err(bad("header line too long"));
        }
    }
    String::from_utf8(line).map_err(|_| bad("header line is not UTF-8"))
}

/// Parses one request off `stream`.
///
/// # Errors
///
/// Returns `InvalidData` for malformed or over-limit requests and
/// propagates socket errors.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad("request line lacks a target"))?;
    let path = target.split('?').next().unwrap_or(target).to_owned();
    if !path.starts_with('/') {
        return Err(bad("request target must be an absolute path"));
    }

    let mut content_length: Option<usize> = None;
    // One extra iteration beyond MAX_HEADERS for the terminating blank
    // line, so a request with exactly MAX_HEADERS headers is accepted.
    for _ in 0..=MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length.unwrap_or(0)];
            reader.read_exact(&mut body)?;
            return Ok(Request { method, path, body });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let len = parse_content_length(value, content_length)?;
            if len > MAX_BODY {
                return Err(bad("body too large"));
            }
            content_length = Some(len);
        }
    }
    Err(bad("too many headers"))
}

/// Parses one `Content-Length` value against any previously seen one.
/// Duplicate headers with the **same** value are tolerated (they are
/// unambiguous); *conflicting* duplicates are refused — the historical
/// last-one-wins behavior is exactly the parsing ambiguity behind request
/// smuggling, and a batch API has no reason to guess.
fn parse_content_length(value: &str, previous: Option<usize>) -> io::Result<usize> {
    let len: usize = value
        .trim()
        .parse()
        .map_err(|_| bad("bad Content-Length"))?;
    match previous {
        Some(prev) if prev != len => Err(bad(format!(
            "conflicting Content-Length headers ({prev} vs {len})"
        ))),
        _ => Ok(len),
    }
}

/// Human reason phrase for the status codes the service uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Performs one HTTP round trip against `addr` and returns
/// `(status, body)`.
///
/// # Errors
///
/// Propagates connection and socket errors; returns `InvalidData` for a
/// malformed response.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    // A batch API must never hang a client forever on a wedged peer.
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: malec-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line `{status_line}`")))?;
    let mut content_length: Option<usize> = None;
    let mut headers_ended = false;
    for _ in 0..=MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            headers_ended = true;
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let len = parse_content_length(value, content_length)?;
                if len > MAX_BODY {
                    return Err(bad("response too large"));
                }
                content_length = Some(len);
            }
        }
    }
    if !headers_ended {
        // Falling out of the loop would misparse leftover header bytes as
        // the body; refuse like the server side does.
        return Err(bad("too many headers in response"));
    }
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        // Connection: close responses without a length end at EOF.
        None => {
            let mut buf = Vec::new();
            reader.take(MAX_BODY as u64).read_to_end(&mut buf)?;
            buf
        }
    };
    let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot echo server: accepts a single connection, parses the
    /// request, responds with its own view of it.
    fn spawn_echo() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            match read_request(&mut stream) {
                Ok(req) => {
                    let body = format!(
                        "{} {} {}",
                        req.method,
                        req.path,
                        String::from_utf8_lossy(&req.body)
                    );
                    write_response(&mut stream, 200, "text/plain", body.as_bytes()).ok();
                }
                Err(e) => {
                    write_response(&mut stream, 400, "text/plain", e.to_string().as_bytes()).ok();
                }
            }
        });
        addr
    }

    #[test]
    fn round_trip_with_body() {
        let addr = spawn_echo();
        let (status, body) = request(addr, "POST", "/v1/jobs", b"[scenario]").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, "POST /v1/jobs [scenario]");
    }

    #[test]
    fn round_trip_without_body() {
        let addr = spawn_echo();
        let (status, body) = request(addr, "GET", "/v1/healthz", b"").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, "GET /v1/healthz ");
    }

    #[test]
    fn query_strings_are_stripped() {
        let addr = spawn_echo();
        let (_, body) = request(addr, "GET", "/v1/jobs/3?verbose=1", b"").expect("request");
        assert!(body.starts_with("GET /v1/jobs/3 "), "{body}");
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        // Server side: the request parser must refuse to pick a winner
        // between two disagreeing Content-Length headers.
        let addr = spawn_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nabcdefghijk",
            )
            .expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("conflicting Content-Length"), "{out}");
    }

    #[test]
    fn identical_duplicate_content_lengths_are_tolerated() {
        // Duplicates that agree are unambiguous; the body parses normally.
        let addr = spawn_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc")
            .expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.ends_with("POST /x abc"), "{out}");
    }

    #[test]
    fn client_rejects_conflicting_content_lengths_in_responses() {
        // A malicious or broken server must not trick the client into
        // reading the wrong byte count.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            read_request(&mut stream).ok();
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello",
                )
                .ok();
        });
        let err = request(addr, "GET", "/", b"").expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("conflicting Content-Length"),
            "{err}"
        );
    }

    #[test]
    fn malformed_request_is_a_clean_400() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            match read_request(&mut stream) {
                Ok(_) => write_response(&mut stream, 200, "text/plain", b"ok").ok(),
                Err(_) => write_response(&mut stream, 400, "text/plain", b"bad").ok(),
            };
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"NOT-HTTP\r\n\r\n").expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }
}
