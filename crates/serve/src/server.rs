//! The HTTP front of the batch service: routes the v1 API onto an
//! [`Engine`].
//!
//! | Endpoint                  | Method | Meaning                                   |
//! |---------------------------|--------|-------------------------------------------|
//! | `/v1/jobs`                | POST   | body = TOML sweep spec → `202` + job id   |
//! | `/v1/jobs/<id>`           | GET    | job status (cells done / cached / running)|
//! | `/v1/jobs/<id>/report`    | GET    | finished job's report (`run` JSON schema) |
//! | `/v1/jobs/<id>/compare`   | GET    | paired delta report (`compare` schema)    |
//! | `/v1/cache/stats`         | GET    | result-cache counters                     |
//! | `/v1/healthz`             | GET    | liveness probe                            |
//! | `/v1/shutdown`            | POST   | drain workers and stop accepting          |
//!
//! Submissions are asynchronous: `POST /v1/jobs` returns as soon as the
//! spec is sharded into the queue, and clients poll the status endpoint.
//! Each connection carries one request (`Connection: close`); connections
//! are handled on their own threads, so slow clients never block the
//! accept loop or each other.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::cache::CacheStats;
use crate::http::{read_request, write_response, Request};
use crate::report::esc;
use crate::scheduler::{CompareError, Engine, JobStatus};
use crate::spec::parse_spec;

/// The default address `malec-cli serve` binds and its clients target.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4173";

/// A bound, ready-to-run service.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` and builds the engine (`workers` pool threads over an
    /// optionally persisted cache). Use port `0` for an ephemeral port and
    /// read it back with [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-open errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        workers: Option<usize>,
        cache_path: Option<&Path>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let engine = Arc::new(Engine::new(workers, cache_path)?);
        Ok(Self {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The engine behind this server (tests reach through for stats).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Serves until a `POST /v1/shutdown` arrives, then drains the worker
    /// pool and returns. Connection handlers run on their own threads.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop errors (per-connection errors are answered
    /// with an HTTP status and do not stop the server).
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                // A long-running service must survive transient accept
                // failures (aborted handshakes, fd exhaustion under a
                // connection burst) instead of dying with queued work.
                Err(e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    eprintln!("malec-serve: accept failed (retrying): {e}");
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    continue;
                }
            };
            // A silent or wedged client must not park its handler thread
            // forever (the client side sets the same 60 s bounds).
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(60)))
                .ok();
            stream
                .set_write_timeout(Some(std::time::Duration::from_secs(60)))
                .ok();
            // Every accepted connection gets a handler — even ones racing a
            // shutdown, so a real client caught in the race still receives
            // an HTTP response instead of a bare closed socket (the
            // shutdown wake connection's handler just fails its read and
            // exits).
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || {
                let mut stream = stream;
                handle_connection(&mut stream, &engine, &stop, addr);
            });
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        self.engine.shutdown();
        Ok(())
    }

    /// Runs the server on a background thread (tests and the `serve-smoke`
    /// CI job drive it through the client).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let handle = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, handle })
    }
}

/// A background server: its address and the join handle.
pub struct ServerHandle {
    addr: SocketAddr,
    handle: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to exit (send `POST /v1/shutdown` first).
    ///
    /// # Errors
    ///
    /// Propagates the server's exit error.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn join(self) -> io::Result<()> {
        self.handle.join().expect("server thread panicked")
    }
}

fn handle_connection(
    stream: &mut TcpStream,
    engine: &Engine,
    stop: &AtomicBool,
    self_addr: SocketAddr,
) {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            respond_error(stream, 400, &e.to_string());
            return;
        }
    };
    let shutting_down = route(stream, engine, &request);
    if shutting_down {
        stop.store(true, Ordering::SeqCst);
        // The accept loop is parked in accept(); poke it awake so it
        // observes the flag and exits. A listener bound to the unspecified
        // address is not connectable on every platform — aim the poke at
        // loopback instead.
        let mut wake = self_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(if wake.is_ipv4() {
                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
            } else {
                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
            });
        }
        TcpStream::connect(wake).ok();
    }
}

/// Dispatches one request; returns `true` for a shutdown request.
fn route(stream: &mut TcpStream, engine: &Engine, request: &Request) -> bool {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/v1/jobs") => handle_submit(stream, engine, request),
        ("GET", "/v1/cache/stats") => {
            let body = cache_stats_json(&engine.cache_stats(), engine);
            respond_json(stream, 200, &body);
        }
        ("GET", "/v1/healthz") => respond_json(stream, 200, "{\n  \"ok\": true\n}\n"),
        ("POST", "/v1/shutdown") => {
            respond_json(stream, 200, "{\n  \"stopping\": true\n}\n");
            return true;
        }
        ("GET", _) if path.starts_with("/v1/jobs/") => handle_job_get(stream, engine, path),
        _ => respond_error(
            stream,
            404,
            &format!("no route for {} {path}", request.method),
        ),
    }
    false
}

fn handle_submit(stream: &mut TcpStream, engine: &Engine, request: &Request) {
    let text = match request.body_utf8() {
        Ok(t) => t,
        Err(_) => {
            respond_error(stream, 400, "spec body must be UTF-8 TOML");
            return;
        }
    };
    match parse_spec(text) {
        Ok(spec) => {
            // Cells initially enqueued: configs x launch replicates (a CI
            // target may grow this later, so it is a floor, not a total).
            let cells = spec.configs.len() * spec.replication.initial_count() as usize;
            let job = engine.submit(spec);
            let body = format!(
                "{{\n  \"job\": {job},\n  \"cells\": {cells},\n  \"status_url\": \"/v1/jobs/{job}\"\n}}\n"
            );
            respond_json(stream, 202, &body);
        }
        Err(e) => respond_error(stream, 400, &e.to_string()),
    }
}

/// What a `/v1/jobs/<id>...` GET asks for.
enum JobQuery {
    Status,
    Report,
    Compare,
}

fn handle_job_get(stream: &mut TcpStream, engine: &Engine, path: &str) {
    let rest = &path["/v1/jobs/".len()..];
    let (id_text, query) = if let Some(id) = rest.strip_suffix("/report") {
        (id, JobQuery::Report)
    } else if let Some(id) = rest.strip_suffix("/compare") {
        (id, JobQuery::Compare)
    } else {
        (rest, JobQuery::Status)
    };
    let Ok(id) = id_text.parse::<u64>() else {
        respond_error(stream, 400, &format!("bad job id `{id_text}`"));
        return;
    };
    match query {
        JobQuery::Report => match engine.job_report(id) {
            None => respond_error(stream, 404, &format!("unknown job {id}")),
            Some(Err(status)) => {
                // 409: the resource exists but is not in a fetchable state.
                respond_json(stream, 409, &job_status_json(&status));
            }
            Some(Ok(report)) => respond_json(stream, 200, &report),
        },
        JobQuery::Compare => match engine.job_compare(id) {
            None => respond_error(stream, 404, &format!("unknown job {id}")),
            Some(Err(CompareError::Running(status))) => {
                respond_json(stream, 409, &job_status_json(&status));
            }
            Some(Err(CompareError::NotComparable(msg))) => respond_error(stream, 400, &msg),
            Some(Ok(report)) => respond_json(stream, 200, &report),
        },
        JobQuery::Status => match engine.job_status(id) {
            None => respond_error(stream, 404, &format!("unknown job {id}")),
            Some(status) => respond_json(stream, 200, &job_status_json(&status)),
        },
    }
}

/// Renders a [`JobStatus`] as the status-endpoint JSON.
pub fn job_status_json(s: &JobStatus) -> String {
    format!(
        "{{\n  \"job\": {},\n  \"scenario\": \"{}\",\n  \"state\": \"{}\",\n  \"cells\": {},\n  \"simulated\": {},\n  \"cached\": {},\n  \"coalesced\": {},\n  \"pending\": {},\n  \"replicates_saved\": {},\n  \"wall_seconds\": {}\n}}\n",
        s.id,
        esc(&s.scenario),
        s.state,
        s.cells,
        s.simulated,
        s.cached,
        s.coalesced,
        s.pending,
        s.replicates_saved,
        s.wall_seconds
            .map_or_else(|| "null".to_owned(), |w| format!("{w:.4}")),
    )
}

/// Renders the cache-stats endpoint JSON.
fn cache_stats_json(stats: &CacheStats, engine: &Engine) -> String {
    format!(
        "{{\n  \"entries\": {},\n  \"loaded_from_disk\": {},\n  \"hits\": {},\n  \"misses\": {},\n  \"coalesced\": {},\n  \"bytes_appended\": {},\n  \"persisted\": {},\n  \"workers\": {}\n}}\n",
        stats.entries,
        stats.loaded,
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.bytes_appended,
        engine
            .cache_path()
            .map_or_else(|| "null".to_owned(), |p| format!("\"{}\"", esc(&p.display().to_string()))),
        engine.workers(),
    )
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &str) {
    write_response(stream, status, "application/json", body.as_bytes()).ok();
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    let body = format!("{{\n  \"error\": \"{}\"\n}}\n", esc(message));
    respond_json(stream, status, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::request;
    use crate::json::{parse, Value};
    use std::time::{Duration, Instant};

    const SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"bank_conflict\"\n\
                        [sweep]\nconfigs = [\"MALEC\"]\ninsts = 1500\nseed = 3\n";

    fn start() -> ServerHandle {
        Server::bind("127.0.0.1:0", Some(2), None)
            .expect("bind")
            .spawn()
            .expect("spawn")
    }

    fn get_json(addr: SocketAddr, path: &str) -> (u16, Value) {
        let (status, body) = request(addr, "GET", path, b"").expect("request");
        (
            status,
            parse(&body).unwrap_or_else(|e| panic!("{path}: {e}\n{body}")),
        )
    }

    #[test]
    fn submit_poll_report_shutdown() {
        let server = start();
        let addr = server.addr();

        let (status, body) = request(addr, "POST", "/v1/jobs", SPEC.as_bytes()).expect("submit");
        assert_eq!(status, 202, "{body}");
        let v = parse(&body).expect("submit response parses");
        let job = v.get("job").and_then(Value::as_u64).expect("job id");
        assert_eq!(v.get("cells").and_then(Value::as_u64), Some(1));

        let deadline = Instant::now() + Duration::from_secs(60);
        let report = loop {
            let (status, v) = get_json(addr, &format!("/v1/jobs/{job}"));
            assert_eq!(status, 200);
            if v.get("state").and_then(Value::as_str) == Some("done") {
                let (status, body) =
                    request(addr, "GET", &format!("/v1/jobs/{job}/report"), b"").expect("report");
                assert_eq!(status, 200);
                break body;
            }
            assert!(Instant::now() < deadline, "job never finished");
            std::thread::sleep(Duration::from_millis(5));
        };
        let report = parse(&report).expect("report is valid JSON");
        assert_eq!(
            report.get("bench").and_then(Value::as_str),
            Some("malec_scenario_sweep"),
            "the report keeps the run schema"
        );
        assert_eq!(
            report.get("cells").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );

        let (status, stats) = get_json(addr, "/v1/cache/stats");
        assert_eq!(status, 200);
        assert_eq!(stats.get("entries").and_then(Value::as_u64), Some(1));

        // The compare route is wired: a single-seed job is done but not
        // comparable, which is a clean 400 with the resolver's reason.
        let (status, v) = get_json(addr, &format!("/v1/jobs/{job}/compare"));
        assert_eq!(status, 400);
        assert!(v
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("`seeds` >= 2")));
        let (status, _) = get_json(addr, "/v1/jobs/999/compare");
        assert_eq!(status, 404);

        let (status, _) = request(addr, "POST", "/v1/shutdown", b"").expect("shutdown");
        assert_eq!(status, 200);
        server.join().expect("clean exit");
    }

    #[test]
    fn status_json_escapes_control_characters() {
        // TOML strings legally contain \n / \t escapes; the status JSON
        // must stay parseable anyway.
        let s = JobStatus {
            id: 1,
            scenario: "a\nb\"c".into(),
            state: "running",
            cells: 1,
            simulated: 0,
            cached: 0,
            coalesced: 0,
            pending: 1,
            replicates_saved: 0,
            wall_seconds: None,
        };
        let v = parse(&job_status_json(&s)).expect("valid JSON despite control chars");
        assert_eq!(v.get("scenario").and_then(Value::as_str), Some("a\nb\"c"));
    }

    #[test]
    fn error_paths_are_clean_statuses() {
        let server = start();
        let addr = server.addr();

        let (status, body) = request(addr, "POST", "/v1/jobs", b"not = toml [").expect("submit");
        assert_eq!(status, 400, "{body}");
        assert!(parse(&body).expect("error is JSON").get("error").is_some());

        let (status, _) = get_json(addr, "/v1/jobs/12345");
        assert_eq!(status, 404);

        let (status, _) = request(addr, "GET", "/v1/jobs/abc", b"").expect("bad id");
        assert_eq!(status, 400);

        let (status, _) = request(addr, "DELETE", "/v1/jobs", b"").expect("bad method");
        assert_eq!(status, 404);

        let (status, v) = get_json(addr, "/v1/healthz");
        assert_eq!(status, 200);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));

        request(addr, "POST", "/v1/shutdown", b"").expect("shutdown");
        server.join().expect("clean exit");
    }
}
