//! The HTTP front of the batch service: routes the v1 API onto an
//! [`Engine`].
//!
//! | Endpoint                  | Method | Meaning                                   |
//! |---------------------------|--------|-------------------------------------------|
//! | `/v1/jobs`                | POST   | body = TOML sweep spec → `202` + job id   |
//! | `/v1/jobs/<id>`           | GET    | job status (cells done / cached / running)|
//! | `/v1/jobs/<id>/report`    | GET    | finished job's report (`run` JSON schema) |
//! | `/v1/jobs/<id>/compare`   | GET    | paired delta report (`compare` schema)    |
//! | `/v1/cache/stats`         | GET    | result-cache counters                     |
//! | `/v1/cache/compact`       | POST   | rewrite the cache log to its live records |
//! | `/v1/cache/sync`          | GET    | stream the live record set (peer warm-up) |
//! | `/v1/cache/record/<key>`  | GET    | one verified record (peer-miss fetch)     |
//! | `/v1/healthz`             | GET    | liveness probe (+ pool health counters)   |
//! | `/v1/shutdown`            | POST   | graceful drain + stop (`?mode=abort` to skip the drain) |
//!
//! Submissions are asynchronous: `POST /v1/jobs` returns as soon as the
//! spec is sharded into the queue, and clients poll the status endpoint.
//! Each connection carries one request (`Connection: close`); connections
//! are handled on their own threads, so slow clients never block the
//! accept loop or each other.
//!
//! The request lifecycle is bounded end to end: at most
//! [`ServeOptions::max_connections`] handlers run at once (excess
//! connections get `503` + `Retry-After` without being read — except a
//! small reserved control lane, which still reads the request and serves
//! it if it is a health check or a shutdown: saturation must never make
//! the server unobservable or unstoppable), each request
//! must arrive within [`ServeOptions::request_deadline`] **total** (the
//! slow-loris bound), and writes carry [`ServeOptions::io_timeout`].
//! Shutdown defaults to graceful: stop accepting, let in-flight jobs run
//! to completion (bounded by [`ServeOptions::drain_timeout`]), fsync the
//! cache log, exit. `POST /v1/shutdown?mode=abort` skips the drain.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cache::{CacheStats, FsyncPolicy};
use crate::fault::{FaultAction, Faults};
use crate::http::{
    read_request_deadline, write_response, write_response_head, write_response_with, Request,
};
use crate::report::esc;
use crate::scheduler::{CompareError, Engine, EngineOptions, JobStatus};
use crate::spec::{parse_spec, SweepSpec};

/// The default address `malec-cli serve` binds and its clients target.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4173";

/// Construction knobs for a [`Server`]. `Default` keeps the engine knobs
/// of [`EngineOptions`] and adds the request-lifecycle bounds.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Pool threads (`None`: the sweep fan-out).
    pub workers: Option<usize>,
    /// Cache-log path (`None`: in-memory cache).
    pub cache_path: Option<PathBuf>,
    /// When the cache log reaches stable storage.
    pub fsync: FsyncPolicy,
    /// Failpoint registry (disarmed in production).
    pub faults: Arc<Faults>,
    /// Concurrent connection handlers; excess connections are answered
    /// `503` + `Retry-After: 1` without reading the request.
    pub max_connections: usize,
    /// Total budget for reading one request off the wire — however slowly
    /// the client drips bytes (the slow-loris bound).
    pub request_deadline: Duration,
    /// Socket write timeout for responses.
    pub io_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight jobs to settle
    /// before stopping anyway.
    pub drain_timeout: Duration,
    /// Terminal jobs retained for status queries (count-based eviction).
    pub retain_done: usize,
    /// Terminal-job expiry TTL (`None`: count-based eviction only).
    pub job_ttl: Option<Duration>,
    /// Cap on live cache bytes (`None`: unbounded).
    pub cache_max_bytes: Option<u64>,
    /// Auto-compaction dead-byte ratio (`None`: compaction on demand only).
    pub compact_threshold: Option<f64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let engine = EngineOptions::default();
        Self {
            workers: None,
            cache_path: None,
            fsync: engine.fsync,
            faults: engine.faults,
            max_connections: 64,
            request_deadline: Duration::from_secs(10),
            io_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(30),
            retain_done: engine.retain_done,
            job_ttl: engine.job_ttl,
            cache_max_bytes: engine.cache_max_bytes,
            compact_threshold: engine.compact_threshold,
        }
    }
}

/// How the accept loop was asked to stop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ShutdownMode {
    /// Stop accepting, wait for in-flight jobs (bounded), flush the cache.
    Drain,
    /// Stop immediately; queued units are dropped (results already in the
    /// cache survive — appends are synchronous).
    Abort,
}

/// A bound, ready-to-run service.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    /// `true` once a `?mode=abort` shutdown was requested.
    abort: Arc<AtomicBool>,
    opts: ServeOptions,
}

impl Server {
    /// Binds `addr` and builds the engine (`workers` pool threads over an
    /// optionally persisted cache) with every other option defaulted. Use
    /// port `0` for an ephemeral port and read it back with
    /// [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-open errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        workers: Option<usize>,
        cache_path: Option<&Path>,
    ) -> io::Result<Self> {
        Self::bind_with(
            addr,
            ServeOptions {
                workers,
                cache_path: cache_path.map(Path::to_owned),
                ..ServeOptions::default()
            },
        )
    }

    /// Binds `addr` with explicit [`ServeOptions`].
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-open errors.
    pub fn bind_with(addr: impl ToSocketAddrs, opts: ServeOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let engine = Arc::new(Engine::with_options(EngineOptions {
            workers: opts.workers,
            cache_path: opts.cache_path.clone(),
            fsync: opts.fsync,
            faults: Arc::clone(&opts.faults),
            retain_done: opts.retain_done,
            job_ttl: opts.job_ttl,
            cache_max_bytes: opts.cache_max_bytes,
            compact_threshold: opts.compact_threshold,
        })?);
        Ok(Self {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
            abort: Arc::new(AtomicBool::new(false)),
            opts,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The engine behind this server (tests reach through for stats).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Serves until a `POST /v1/shutdown` arrives, then stops: gracefully
    /// by default — drain in-flight jobs (bounded by the drain timeout),
    /// flush the cache log to disk, join the pool — or immediately under
    /// `?mode=abort`. Connection handlers run on their own threads.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop errors (per-connection errors are answered
    /// with an HTTP status and do not stop the server).
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        let active = Arc::new(AtomicUsize::new(0));
        let control_active = Arc::new(AtomicUsize::new(0));
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                // A long-running service must survive transient accept
                // failures (aborted handshakes, fd exhaustion under a
                // connection burst) instead of dying with queued work.
                Err(e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    eprintln!("malec-serve: accept failed (retrying): {e}");
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    continue;
                }
            };
            stream.set_write_timeout(Some(self.opts.io_timeout)).ok();
            // The saturation gate: when every handler slot is taken, shed
            // the connection with a retryable 503 *without reading it* — a
            // saturated server must spend no parsing work on load it is
            // refusing. The response goes out on its own thread so a slow
            // receiver cannot block the accept loop either. A few reserved
            // control slots do read the request, but answer it only for
            // `/v1/healthz` and `/v1/shutdown`: liveness probes and the
            // stop switch must keep working under full load.
            let slot = SlotGuard::claim(&active, self.opts.max_connections);
            let Some(slot) = slot else {
                match SlotGuard::claim(&control_active, CONTROL_SLOTS) {
                    Some(slot) => {
                        let engine = Arc::clone(&self.engine);
                        let stop = Arc::clone(&self.stop);
                        let abort = Arc::clone(&self.abort);
                        let deadline = self.opts.request_deadline;
                        std::thread::spawn(move || {
                            let _slot = slot;
                            let mut stream = stream;
                            handle_saturated(&mut stream, &engine, &stop, &abort, addr, deadline);
                        });
                    }
                    None => {
                        std::thread::spawn(move || {
                            let mut stream = stream;
                            shed(&mut stream);
                        });
                    }
                }
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            };
            // Every admitted connection gets a handler — even ones racing a
            // shutdown, so a real client caught in the race still receives
            // an HTTP response instead of a bare closed socket (the
            // shutdown wake connection's handler just fails its read and
            // exits).
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let abort = Arc::clone(&self.abort);
            let deadline = self.opts.request_deadline;
            std::thread::spawn(move || {
                let _slot = slot;
                let mut stream = stream;
                handle_connection(&mut stream, &engine, &stop, &abort, addr, deadline);
            });
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        if self.abort.load(Ordering::SeqCst) {
            eprintln!("malec-serve: abort shutdown; dropping queued work");
        } else {
            // Graceful drain: no new submissions can arrive (the accept
            // loop is done), so the pool runs the backlog dry — bounded,
            // because a wedged cell must not hold the process hostage.
            if !self.engine.drain(self.opts.drain_timeout) {
                eprintln!(
                    "malec-serve: drain timed out after {:?}; stopping with work pending",
                    self.opts.drain_timeout
                );
            }
        }
        self.engine.shutdown();
        // The one fsync FsyncPolicy::OnClose promises. Under Always it is
        // a cheap no-op; under abort it still costs nothing and saves what
        // the page cache holds.
        if let Err(e) = self.engine.sync_cache() {
            eprintln!("malec-serve: cache fsync at shutdown failed: {e}");
        }
        Ok(())
    }

    /// Runs the server on a background thread (tests and the `serve-smoke`
    /// CI job drive it through the client).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let handle = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, handle })
    }
}

/// A background server: its address and the join handle.
pub struct ServerHandle {
    addr: SocketAddr,
    handle: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to exit (send `POST /v1/shutdown` first).
    ///
    /// # Errors
    ///
    /// Propagates the server's exit error.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn join(self) -> io::Result<()> {
        self.handle.join().expect("server thread panicked")
    }
}

/// Reserved handler slots for control requests (`/v1/healthz`,
/// `/v1/shutdown`) once the [`ServeOptions::max_connections`] data slots
/// are saturated. Small and fixed: the control lane exists to keep the
/// server observable and stoppable, not to serve traffic.
const CONTROL_SLOTS: usize = 4;

/// One claimed handler slot; dropping it frees the slot.
struct SlotGuard(Arc<AtomicUsize>);

impl SlotGuard {
    /// Claims a slot if fewer than `max` are taken.
    fn claim(active: &Arc<AtomicUsize>, max: usize) -> Option<Self> {
        // fetch_update never overshoots, so a burst of connections cannot
        // momentarily exceed the cap the way fetch_add/fetch_sub would.
        active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < max).then_some(n + 1)
            })
            .ok()
            .map(|_| Self(Arc::clone(active)))
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(
    stream: &mut TcpStream,
    engine: &Engine,
    stop: &AtomicBool,
    abort: &AtomicBool,
    self_addr: SocketAddr,
    deadline: Duration,
) {
    // Failpoint: stall before reading, so a test can hold this handler's
    // slot (or trip the client's timeout) deterministically.
    engine.faults().check_delay("http.read.stall");
    let request = match read_request_deadline(stream, deadline) {
        Ok(r) => r,
        Err(e) => {
            let status = if e.kind() == io::ErrorKind::TimedOut {
                408
            } else {
                400
            };
            respond_error(stream, status, &e.to_string());
            return;
        }
    };
    // Failpoint: answer with a 500 before routing — the retryable server
    // error the client's backoff is built for.
    if let Some(FaultAction::Error) = engine.faults().check("http.respond.500") {
        respond_error(
            stream,
            500,
            "injected server error (failpoint http.respond.500)",
        );
        return;
    }
    dispatch(stream, engine, stop, abort, self_addr, &request);
}

/// Routes one parsed request and runs the shutdown protocol if it asked
/// for one — shared by the normal handler and the saturated control lane.
fn dispatch(
    stream: &mut TcpStream,
    engine: &Engine,
    stop: &AtomicBool,
    abort: &AtomicBool,
    self_addr: SocketAddr,
    request: &Request,
) {
    if let Some(mode) = route(stream, engine, request) {
        if mode == ShutdownMode::Abort {
            abort.store(true, Ordering::SeqCst);
        }
        stop.store(true, Ordering::SeqCst);
        // The accept loop is parked in accept(); poke it awake so it
        // observes the flag and exits. A listener bound to the unspecified
        // address is not connectable on every platform — aim the poke at
        // loopback instead.
        let mut wake = self_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(if wake.is_ipv4() {
                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
            } else {
                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
            });
        }
        TcpStream::connect(wake).ok();
    }
}

/// The saturated-server control lane: reads the request (bounded by the
/// same deadline as a normal handler) and serves it only if it is a
/// control route; everything else is shed exactly like a slot-less
/// connection. No failpoints here — they live in [`handle_connection`],
/// and the control lane must stay dependable precisely when the rest of
/// the server is being tortured.
fn handle_saturated(
    stream: &mut TcpStream,
    engine: &Engine,
    stop: &AtomicBool,
    abort: &AtomicBool,
    self_addr: SocketAddr,
    deadline: Duration,
) {
    let Ok(request) = read_request_deadline(stream, deadline) else {
        shed(stream);
        return;
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") | ("POST", "/v1/shutdown") => {
            dispatch(stream, engine, stop, abort, self_addr, &request);
        }
        _ => shed(stream),
    }
}

/// The shed response: a retryable `503` with `Retry-After: 1`.
fn shed(stream: &mut TcpStream) {
    write_response_with(
        stream,
        503,
        "application/json",
        &[("Retry-After", "1")],
        b"{\n  \"error\": \"server saturated, retry shortly\"\n}\n",
    )
    .ok();
}

/// Dispatches one request; returns the shutdown mode for a shutdown
/// request.
fn route(stream: &mut TcpStream, engine: &Engine, request: &Request) -> Option<ShutdownMode> {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/v1/jobs") => handle_submit(stream, engine, request),
        ("GET", "/v1/cache/stats") => {
            let body = cache_stats_json(&engine.cache_stats(), engine);
            respond_json(stream, 200, &body);
        }
        ("POST", "/v1/cache/compact") => match engine.compact_cache() {
            Ok(o) => respond_json(
                stream,
                200,
                &format!(
                    "{{\n  \"compacted\": true,\n  \"bytes_before\": {},\n  \"bytes_after\": {},\n  \"live_records\": {}\n}}\n",
                    o.bytes_before, o.bytes_after, o.records,
                ),
            ),
            // In-memory caches have no log; a 400, not a server fault.
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                respond_error(stream, 400, &e.to_string());
            }
            Err(e) => respond_error(stream, 500, &e.to_string()),
        },
        ("GET", "/v1/cache/sync") => handle_cache_sync(stream, engine),
        ("GET", _) if path.starts_with("/v1/cache/record/") => {
            handle_cache_record(stream, engine, path);
        }
        ("GET", "/v1/healthz") => {
            let peers = engine
                .shard_peers()
                .iter()
                .map(|p| format!("\"{}\"", esc(p)))
                .collect::<Vec<String>>()
                .join(", ");
            let body = format!(
                "{{\n  \"ok\": true,\n  \"workers\": {},\n  \"respawns\": {},\n  \"faults_fired\": {},\n  \"peers\": [{peers}]\n}}\n",
                engine.workers(),
                engine.respawns(),
                engine.faults().fired_total(),
            );
            respond_json(stream, 200, &body);
        }
        ("POST", "/v1/shutdown") => {
            let mode = match request.query_param("mode") {
                Some("abort") => ShutdownMode::Abort,
                Some("drain") | None => ShutdownMode::Drain,
                Some(other) => {
                    respond_error(
                        stream,
                        400,
                        &format!("unknown shutdown mode `{other}` (want `drain` or `abort`)"),
                    );
                    return None;
                }
            };
            let label = match mode {
                ShutdownMode::Drain => "drain",
                ShutdownMode::Abort => "abort",
            };
            respond_json(
                stream,
                200,
                &format!("{{\n  \"stopping\": true,\n  \"mode\": \"{label}\"\n}}\n"),
            );
            return Some(mode);
        }
        ("GET", _) if path.starts_with("/v1/jobs/") => handle_job_get(stream, engine, path),
        _ => respond_error(
            stream,
            404,
            &format!("no route for {} {path}", request.method),
        ),
    }
    None
}

fn handle_submit(stream: &mut TcpStream, engine: &Engine, request: &Request) {
    let text = match request.body_utf8() {
        Ok(t) => t,
        Err(_) => {
            respond_error(stream, 400, "spec body must be UTF-8 TOML");
            return;
        }
    };
    match parse_spec(text) {
        Ok(mut spec) => {
            // A scatter sub-job (`?configs=A,B`) restricts the spec to the
            // named groups and carries no source text, so a forwarded
            // sub-job runs owner-local and the scatter cannot recurse.
            let source = match request.query_param("configs") {
                Some(list) => {
                    if let Err(e) = restrict_configs(&mut spec, list) {
                        respond_error(stream, 400, &e);
                        return;
                    }
                    None
                }
                None => Some(Arc::from(text)),
            };
            // Cells initially enqueued: configs x launch replicates (a CI
            // target may grow this later, so it is a floor, not a total).
            let cells = spec.configs.len() * spec.replication.initial_count() as usize;
            let job = engine.submit_with_source(spec, source);
            let body = format!(
                "{{\n  \"job\": {job},\n  \"cells\": {cells},\n  \"status_url\": \"/v1/jobs/{job}\"\n}}\n"
            );
            respond_json(stream, 202, &body);
        }
        Err(e) => respond_error(stream, 400, &e.to_string()),
    }
}

/// Restricts a parsed spec to the named config labels — the scatter
/// sub-job form of `POST /v1/jobs`. Every label must name a config in the
/// spec; the `[compare]` pairing survives only if both of its members do
/// (a filtered-out half would otherwise resurrect as a default).
fn restrict_configs(spec: &mut SweepSpec, list: &str) -> Result<(), String> {
    let want: Vec<&str> = list.split(',').filter(|s| !s.is_empty()).collect();
    if want.is_empty() {
        return Err("?configs= names no configs".to_owned());
    }
    for label in &want {
        if !spec.configs.iter().any(|c| c.label() == *label) {
            return Err(format!(
                "?configs= names `{label}`, which is not in the spec"
            ));
        }
    }
    let keep_pair = spec.compare.as_ref().is_some_and(|c| {
        want.contains(&c.baseline.label().as_str()) && want.contains(&c.candidate.label().as_str())
    });
    if !keep_pair {
        spec.compare = None;
    }
    spec.configs.retain(|c| want.contains(&c.label().as_str()));
    Ok(())
}

/// Records per write of the sync stream — bounds the encode buffer however
/// large the live set is.
const SYNC_CHUNK_RECORDS: usize = 64;

/// Streams the live record set in cache-log format, encoding bounded
/// chunks from a snapshot of shared summaries instead of materializing the
/// whole log as one buffer. Stream errors are logged, not swallowed.
fn handle_cache_sync(stream: &mut TcpStream, engine: &Engine) {
    if let Err(e) = stream_cache_sync(stream, engine) {
        eprintln!("malec-serve: cache sync stream failed: {e}");
    }
}

/// The fallible body of [`handle_cache_sync`]. The `cache.sync.stall`
/// failpoint sits between the header and each chunk, so tests can
/// deterministically cut or delay a sync mid-stream — the receiver's
/// record-by-record verification keeps the delivered prefix either way.
fn stream_cache_sync(stream: &mut TcpStream, engine: &Engine) -> io::Result<()> {
    let (records, body_len) = engine.sync_records();
    write_response_head(stream, 200, "application/octet-stream", body_len as usize)?;
    stream.write_all(&crate::cache::log_header())?;
    stream.flush()?;
    let mut buf = Vec::new();
    for chunk in records.chunks(SYNC_CHUNK_RECORDS) {
        engine.faults().check_delay("cache.sync.stall");
        buf.clear();
        for (key, summary) in chunk {
            buf.extend_from_slice(&crate::cache::encode_record(*key, summary));
        }
        stream.write_all(&buf)?;
        stream.flush()?;
    }
    Ok(())
}

/// Serves one cached record in single-record cache-log format — the
/// peer-miss fetch path of sharded serving. A 404 is an answer, not an
/// error: the asking peer falls back to simulating locally.
fn handle_cache_record(stream: &mut TcpStream, engine: &Engine, path: &str) {
    let hex = &path["/v1/cache/record/".len()..];
    let Ok(key) = u128::from_str_radix(hex, 16) else {
        respond_error(
            stream,
            400,
            &format!("bad record key `{hex}` (want hex digits)"),
        );
        return;
    };
    match engine.cache_record(key) {
        Some(body) => {
            write_response(stream, 200, "application/octet-stream", &body).ok();
        }
        None => respond_error(stream, 404, &format!("no record for key {key:032x}")),
    }
}

/// What a `/v1/jobs/<id>...` GET asks for.
enum JobQuery {
    Status,
    Report,
    Compare,
}

fn handle_job_get(stream: &mut TcpStream, engine: &Engine, path: &str) {
    let rest = &path["/v1/jobs/".len()..];
    let (id_text, query) = if let Some(id) = rest.strip_suffix("/report") {
        (id, JobQuery::Report)
    } else if let Some(id) = rest.strip_suffix("/compare") {
        (id, JobQuery::Compare)
    } else {
        (rest, JobQuery::Status)
    };
    let Ok(id) = id_text.parse::<u64>() else {
        respond_error(stream, 400, &format!("bad job id `{id_text}`"));
        return;
    };
    match query {
        JobQuery::Report => match engine.job_report(id) {
            None => respond_error(stream, 404, &format!("unknown job {id}")),
            Some(Err(status)) => {
                // 409: the resource exists but is not in a fetchable state.
                respond_json(stream, 409, &job_status_json(&status));
            }
            Some(Ok(report)) => respond_json(stream, 200, &report),
        },
        JobQuery::Compare => match engine.job_compare(id) {
            None => respond_error(stream, 404, &format!("unknown job {id}")),
            Some(Err(CompareError::Running(status))) => {
                respond_json(stream, 409, &job_status_json(&status));
            }
            Some(Err(CompareError::NotComparable(msg))) => respond_error(stream, 400, &msg),
            Some(Ok(report)) => respond_json(stream, 200, &report),
        },
        JobQuery::Status => match engine.job_status(id) {
            None => respond_error(stream, 404, &format!("unknown job {id}")),
            Some(status) => respond_json(stream, 200, &job_status_json(&status)),
        },
    }
}

/// Renders a [`JobStatus`] as the status-endpoint JSON.
pub fn job_status_json(s: &JobStatus) -> String {
    format!(
        "{{\n  \"job\": {},\n  \"scenario\": \"{}\",\n  \"state\": \"{}\",\n  \"cells\": {},\n  \"simulated\": {},\n  \"cached\": {},\n  \"coalesced\": {},\n  \"fetched\": {},\n  \"failed\": {},\n  \"pending\": {},\n  \"replicates_saved\": {},\n  \"wall_seconds\": {},\n  \"error\": {}\n}}\n",
        s.id,
        esc(&s.scenario),
        s.state,
        s.cells,
        s.simulated,
        s.cached,
        s.coalesced,
        s.fetched,
        s.failed,
        s.pending,
        s.replicates_saved,
        s.wall_seconds
            .map_or_else(|| "null".to_owned(), |w| format!("{w:.4}")),
        s.error
            .as_deref()
            .map_or_else(|| "null".to_owned(), |e| format!("\"{}\"", esc(e))),
    )
}

/// Renders the cache-stats endpoint JSON.
fn cache_stats_json(stats: &CacheStats, engine: &Engine) -> String {
    format!(
        "{{\n  \"entries\": {},\n  \"loaded_from_disk\": {},\n  \"hits\": {},\n  \"misses\": {},\n  \"coalesced\": {},\n  \"fetched\": {},\n  \"bytes_appended\": {},\n  \"log_bytes\": {},\n  \"live_bytes\": {},\n  \"evicted\": {},\n  \"compactions\": {},\n  \"persisted\": {},\n  \"workers\": {}\n}}\n",
        stats.entries,
        stats.loaded,
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.fetched,
        stats.bytes_appended,
        stats.log_bytes,
        stats.live_bytes,
        stats.evicted,
        stats.compactions,
        engine
            .cache_path()
            .map_or_else(|| "null".to_owned(), |p| format!("\"{}\"", esc(&p.display().to_string()))),
        engine.workers(),
    )
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &str) {
    write_response(stream, status, "application/json", body.as_bytes()).ok();
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    let body = format!("{{\n  \"error\": \"{}\"\n}}\n", esc(message));
    respond_json(stream, status, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::request;
    use crate::json::{parse, Value};
    use std::time::{Duration, Instant};

    const SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"bank_conflict\"\n\
                        [sweep]\nconfigs = [\"MALEC\"]\ninsts = 1500\nseed = 3\n";

    fn start() -> ServerHandle {
        Server::bind("127.0.0.1:0", Some(2), None)
            .expect("bind")
            .spawn()
            .expect("spawn")
    }

    fn get_json(addr: SocketAddr, path: &str) -> (u16, Value) {
        let (status, body) = request(addr, "GET", path, b"").expect("request");
        (
            status,
            parse(&body).unwrap_or_else(|e| panic!("{path}: {e}\n{body}")),
        )
    }

    #[test]
    fn submit_poll_report_shutdown() {
        let server = start();
        let addr = server.addr();

        let (status, body) = request(addr, "POST", "/v1/jobs", SPEC.as_bytes()).expect("submit");
        assert_eq!(status, 202, "{body}");
        let v = parse(&body).expect("submit response parses");
        let job = v.get("job").and_then(Value::as_u64).expect("job id");
        assert_eq!(v.get("cells").and_then(Value::as_u64), Some(1));

        let deadline = Instant::now() + Duration::from_secs(60);
        let report = loop {
            let (status, v) = get_json(addr, &format!("/v1/jobs/{job}"));
            assert_eq!(status, 200);
            if v.get("state").and_then(Value::as_str) == Some("done") {
                let (status, body) =
                    request(addr, "GET", &format!("/v1/jobs/{job}/report"), b"").expect("report");
                assert_eq!(status, 200);
                break body;
            }
            assert!(Instant::now() < deadline, "job never finished");
            std::thread::sleep(Duration::from_millis(5));
        };
        let report = parse(&report).expect("report is valid JSON");
        assert_eq!(
            report.get("bench").and_then(Value::as_str),
            Some("malec_scenario_sweep"),
            "the report keeps the run schema"
        );
        assert_eq!(
            report.get("cells").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );

        let (status, stats) = get_json(addr, "/v1/cache/stats");
        assert_eq!(status, 200);
        assert_eq!(stats.get("entries").and_then(Value::as_u64), Some(1));

        // The compare route is wired: a single-seed job is done but not
        // comparable, which is a clean 400 with the resolver's reason.
        let (status, v) = get_json(addr, &format!("/v1/jobs/{job}/compare"));
        assert_eq!(status, 400);
        assert!(v
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("`seeds` >= 2")));
        let (status, _) = get_json(addr, "/v1/jobs/999/compare");
        assert_eq!(status, 404);

        let (status, _) = request(addr, "POST", "/v1/shutdown", b"").expect("shutdown");
        assert_eq!(status, 200);
        server.join().expect("clean exit");
    }

    #[test]
    fn status_json_escapes_control_characters() {
        // TOML strings legally contain \n / \t escapes; the status JSON
        // must stay parseable anyway.
        let s = JobStatus {
            id: 1,
            scenario: "a\nb\"c".into(),
            state: "failed",
            cells: 1,
            simulated: 0,
            cached: 0,
            coalesced: 0,
            fetched: 0,
            failed: 1,
            pending: 0,
            replicates_saved: 0,
            wall_seconds: None,
            error: Some("panic: index out of \"bounds\"".into()),
        };
        let v = parse(&job_status_json(&s)).expect("valid JSON despite control chars");
        assert_eq!(v.get("scenario").and_then(Value::as_str), Some("a\nb\"c"));
        assert_eq!(v.get("state").and_then(Value::as_str), Some("failed"));
        assert_eq!(v.get("failed").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("panic: index out of \"bounds\"")
        );
    }

    #[test]
    fn error_paths_are_clean_statuses() {
        let server = start();
        let addr = server.addr();

        let (status, body) = request(addr, "POST", "/v1/jobs", b"not = toml [").expect("submit");
        assert_eq!(status, 400, "{body}");
        assert!(parse(&body).expect("error is JSON").get("error").is_some());

        let (status, _) = get_json(addr, "/v1/jobs/12345");
        assert_eq!(status, 404);

        let (status, _) = request(addr, "GET", "/v1/jobs/abc", b"").expect("bad id");
        assert_eq!(status, 400);

        let (status, _) = request(addr, "DELETE", "/v1/jobs", b"").expect("bad method");
        assert_eq!(status, 404);

        let (status, v) = get_json(addr, "/v1/healthz");
        assert_eq!(status, 200);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("respawns").and_then(Value::as_u64), Some(0));

        request(addr, "POST", "/v1/shutdown", b"").expect("shutdown");
        server.join().expect("clean exit");
    }

    #[test]
    fn shutdown_modes_echo_and_unknown_mode_is_rejected() {
        let server = start();
        let addr = server.addr();
        let (status, v) = {
            let (s, b) = request(addr, "POST", "/v1/shutdown?mode=nope", b"").expect("bad mode");
            (s, parse(&b).expect("JSON"))
        };
        assert_eq!(status, 400);
        assert!(v
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("unknown shutdown mode")));
        // A rejected mode must NOT stop the server.
        let (status, _) = get_json(addr, "/v1/healthz");
        assert_eq!(status, 200);

        let (status, body) =
            request(addr, "POST", "/v1/shutdown?mode=abort", b"").expect("abort shutdown");
        assert_eq!(status, 200);
        let v = parse(&body).expect("JSON");
        assert_eq!(v.get("mode").and_then(Value::as_str), Some("abort"));
        server.join().expect("clean exit");
    }

    #[test]
    fn saturated_server_sheds_data_routes_but_answers_healthz_and_shutdown() {
        use crate::http::request_meta;
        use std::io::Write;

        let server = Server::bind_with(
            "127.0.0.1:0",
            ServeOptions {
                workers: Some(1),
                max_connections: 1,
                request_deadline: Duration::from_secs(2),
                ..ServeOptions::default()
            },
        )
        .expect("bind")
        .spawn()
        .expect("spawn");
        let addr = server.addr();

        // Occupy the single data slot with a connection that never
        // finishes its request (cut off at the request deadline).
        let mut hog = std::net::TcpStream::connect(addr).expect("connect");
        hog.write_all(b"GET /v1/healthz HT").expect("partial write");
        std::thread::sleep(Duration::from_millis(100));

        // A data route is shed with a retryable 503...
        let resp = request_meta(
            addr,
            "POST",
            "/v1/jobs",
            SPEC.as_bytes(),
            Duration::from_secs(5),
        )
        .expect("shed response");
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert_eq!(resp.retry_after, Some(1), "503 carries Retry-After");
        assert!(resp.body.contains("saturated"), "{}", resp.body);

        // ...but a health check still answers through the control lane —
        // saturation must not make the server look dead.
        let (status, v) = get_json(addr, "/v1/healthz");
        assert_eq!(status, 200, "healthz answers while saturated");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));

        // ...and so does the stop switch: a shutdown is never locked out by
        // the very load it is supposed to relieve.
        let (status, body) =
            request(addr, "POST", "/v1/shutdown?mode=abort", b"").expect("shutdown");
        assert_eq!(status, 200, "shutdown accepted while saturated: {body}");
        drop(hog);
        server.join().expect("clean exit");
    }

    #[test]
    fn cache_compact_and_sync_endpoints_work_end_to_end() {
        use crate::http::request_stream;
        use std::io::Read;

        let dir = std::env::temp_dir().join(format!("malec_srv_lifecycle_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let cache_path = dir.join("results.cache");
        std::fs::remove_file(&cache_path).ok();

        let server = Server::bind_with(
            "127.0.0.1:0",
            ServeOptions {
                workers: Some(2),
                cache_path: Some(cache_path.clone()),
                ..ServeOptions::default()
            },
        )
        .expect("bind")
        .spawn()
        .expect("spawn");
        let addr = server.addr();

        let (status, _) = request(addr, "POST", "/v1/jobs", SPEC.as_bytes()).expect("submit");
        assert_eq!(status, 202);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (_, v) = get_json(addr, "/v1/jobs/1");
            if v.get("state").and_then(Value::as_str) == Some("done") {
                break;
            }
            assert!(Instant::now() < deadline, "job never finished");
            std::thread::sleep(Duration::from_millis(5));
        }

        // The stats endpoint reports the new lifecycle counters.
        let (_, stats) = get_json(addr, "/v1/cache/stats");
        let log_bytes = stats
            .get("log_bytes")
            .and_then(Value::as_u64)
            .expect("log_bytes");
        let live_bytes = stats
            .get("live_bytes")
            .and_then(Value::as_u64)
            .expect("live_bytes");
        assert!(log_bytes > 5 && live_bytes > 0, "{stats:?}");
        assert_eq!(stats.get("evicted").and_then(Value::as_u64), Some(0));

        // Compaction over a duplicate-free log is a no-op in size but a
        // real rewrite (the counter moves).
        let (status, body) = request(addr, "POST", "/v1/cache/compact", b"").expect("compact");
        assert_eq!(status, 200, "{body}");
        let v = parse(&body).expect("compact response parses");
        assert_eq!(v.get("compacted").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("bytes_after").and_then(Value::as_u64),
            Some(log_bytes)
        );
        let (_, stats) = get_json(addr, "/v1/cache/stats");
        assert_eq!(stats.get("compactions").and_then(Value::as_u64), Some(1));

        // The sync stream is a valid cache log: header + the live records.
        let (status, mut body) =
            request_stream(addr, "GET", "/v1/cache/sync", Duration::from_secs(10))
                .expect("sync stream");
        assert_eq!(status, 200);
        let mut snapshot = Vec::new();
        body.read_to_end(&mut snapshot).expect("read stream");
        assert_eq!(&snapshot[..4], b"MSRC", "stream is a cache log");
        assert_eq!(
            snapshot.len() as u64,
            5 + live_bytes,
            "exactly the live set"
        );

        request(addr, "POST", "/v1/shutdown", b"").expect("shutdown");
        server.join().expect("clean exit");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compacting_an_in_memory_cache_is_a_clean_400() {
        let server = start();
        let addr = server.addr();
        let (status, body) = request(addr, "POST", "/v1/cache/compact", b"").expect("compact");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("in-memory"), "{body}");
        request(addr, "POST", "/v1/shutdown?mode=abort", b"").expect("shutdown");
        server.join().expect("clean exit");
    }

    #[test]
    fn graceful_shutdown_drains_inflight_jobs_before_exit() {
        let dir = std::env::temp_dir().join(format!("malec_srv_drain_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let cache_path = dir.join("results.cache");
        std::fs::remove_file(&cache_path).ok();

        let faults = Faults::disarmed();
        // Slow the first cell so the shutdown provably races in-flight
        // work.
        faults.arm("engine.cell.slow", 1, Some(200));
        let server = Server::bind_with(
            "127.0.0.1:0",
            ServeOptions {
                workers: Some(2),
                cache_path: Some(cache_path.clone()),
                faults,
                ..ServeOptions::default()
            },
        )
        .expect("bind")
        .spawn()
        .expect("spawn");
        let addr = server.addr();

        let (status, _) = request(addr, "POST", "/v1/jobs", SPEC.as_bytes()).expect("submit");
        assert_eq!(status, 202);
        // Immediately request a graceful shutdown: the job's single cell is
        // still queued or sleeping in its slow-down failpoint.
        let (status, body) = request(addr, "POST", "/v1/shutdown", b"").expect("shutdown");
        assert_eq!(status, 200);
        assert!(body.contains("\"mode\": \"drain\""), "{body}");
        server.join().expect("clean exit");

        // The drain let the in-flight cell finish and the log was flushed:
        // a cold reopen of the cache file sees the completed result.
        let cache = crate::cache::ResultCache::open(&cache_path).expect("reopen");
        assert_eq!(
            cache.stats().loaded,
            1,
            "in-flight work completed and persisted before exit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
