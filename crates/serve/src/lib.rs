//! `malec-serve` — the batch simulation service.
//!
//! PRs 1–2 made every simulation cell a *pure function*: one
//! `(configuration, scenario, seed, horizon)` tuple produces one
//! [`RunSummary`], bit for bit, on any host, forever (golden digests and
//! `.mtr` replay verification prove it continuously). This crate turns that
//! property into infrastructure: instead of a one-shot CLI, the simulator
//! runs as a long-lived service that accepts sweep jobs over a hand-rolled
//! HTTP/1.1 + JSON API, shards them into per-cell work units, batches the
//! units across a persistent worker pool, and answers repeated or
//! overlapping work from a **content-addressed result cache** that
//! persists across restarts.
//!
//! The layers, bottom up:
//!
//! * [`toml`] / [`spec`] — the TOML sweep-spec language (moved here from
//!   `malec-cli`, which re-exports them: a job *is* a spec, so the service
//!   owns the format and the CLI stays a thin client);
//! * [`report`] — the JSON report schema shared by `malec-cli run` and the
//!   fetch-report endpoint;
//! * [`cache`] — stable 128-bit cell keys ([`malec_types::stable`]) and the
//!   append-only persisted result cache, with a full log lifecycle:
//!   atomic compaction, size-bounded LRU eviction, and a streamable live
//!   snapshot for warming a fresh peer (`/v1/cache/sync`);
//! * [`scheduler`] — the [`Engine`]: job queue, persistent worker pool,
//!   in-flight deduplication of concurrent identical cells, panic-safe
//!   workers that fail the cell instead of shrinking the pool;
//! * [`fault`] — deterministic fault injection: named failpoints that fire
//!   at exact hit counts under a seeded schedule, so every failure test is
//!   reproducible;
//! * [`shard`] — deterministic key ownership for multi-peer serving:
//!   rendezvous hashing over the stable cell keys, so every peer agrees
//!   on who owns which cell with no coordination;
//! * [`http`] / [`json`] — just enough protocol, hand-rolled on
//!   `std::net::TcpListener` (this build environment has no network
//!   crates, following the precedent of the hand-rolled TOML parser);
//! * [`server`] / [`client`] — the v1 API and its typed client.
//!
//! # A complete session
//!
//! ```
//! use std::time::Duration;
//! use malec_serve::client::Client;
//! use malec_serve::server::Server;
//!
//! let server = Server::bind("127.0.0.1:0", Some(2), None).unwrap().spawn().unwrap();
//! let client = Client::new(server.addr().to_string());
//!
//! let spec = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
//!             [sweep]\nconfigs = [\"MALEC\"]\ninsts = 1000\n";
//! let job = client.submit(spec).unwrap();
//! let done = client.wait(job, Duration::from_secs(60)).unwrap();
//! assert_eq!(done.cells, 1);
//!
//! // Identical resubmission: zero cells simulated, all served from cache.
//! let again = client.wait(client.submit(spec).unwrap(), Duration::from_secs(60)).unwrap();
//! assert_eq!(again.served_without_simulation(), again.cells);
//!
//! client.shutdown().unwrap();
//! server.join().unwrap();
//! ```
//!
//! [`RunSummary`]: malec_core::RunSummary
//! [`Engine`]: scheduler::Engine

pub mod cache;
pub mod client;
pub mod fault;
pub mod http;
pub mod json;
pub mod report;
pub mod scheduler;
pub mod server;
pub mod shard;
pub mod spec;
pub mod sync;
pub mod toml;

pub use cache::{cache_key, CacheStats, CompactOutcome, FsyncPolicy, ResultCache, SyncReport};
pub use client::{Client, JobView, RetryPolicy};
pub use fault::{FaultAction, Faults};
pub use scheduler::{Engine, JobId, JobStatus, Provenance};
pub use server::{Server, ServerHandle, DEFAULT_ADDR};
pub use shard::ShardMap;
pub use spec::{parse_spec, SweepSpec};
