//! The batch engine: a job queue feeding a persistent worker pool, fused
//! with the content-addressed [`ResultCache`].
//!
//! [`Engine::submit`] shards one [`SweepSpec`] into per-cell work units
//! (one unit per configuration; the scenario, horizon and seed are shared)
//! and enqueues them. A fixed pool of worker threads — sized like
//! [`malec_core::parallel`]'s fan-out, but *persistent* across jobs instead
//! of scoped per call — drains the queue. For each unit a worker:
//!
//! 1. looks the cell's [`cache_key`] up: a **hit** finishes the cell with
//!    the stored summary, zero simulation;
//! 2. otherwise checks the **in-flight** table: if an identical cell is
//!    already simulating (a concurrent overlapping job), the unit parks as
//!    a waiter and is finished by whoever simulates it — the cache answers
//!    `N` concurrent identical submissions with **one** simulation;
//! 3. otherwise claims the key, simulates, inserts the summary into the
//!    cache (persisting it), and finishes the cell plus every parked
//!    waiter.
//!
//! Everything a worker produces is deterministic, so a cell served from
//! cache, from a waiter hand-off, or from a fresh simulation is
//! bit-identical — the job report cannot tell (and records which path each
//! cell took anyway, for the cache-stats endpoint and the acceptance
//! tests).
//!
//! With a [`ShardMap`] installed ([`Engine::set_shard`]), the engine is
//! one peer of a sharded cluster. Two mechanisms kick in, both built on
//! the same determinism:
//!
//! * **scatter/gather** — [`Engine::submit_with_source`] partitions a
//!   job's config groups by their owners (a group routes by its
//!   replicate-0 cache key, and an explicit `[compare]` pair clusters as
//!   one so paired growth stays on one owner), forwards each remote
//!   cluster to its owner as a `?configs=`-filtered sub-job, polls it
//!   with the backoff client, and lands the fetched records as
//!   [`Provenance::Fetched`] cells;
//! * **peer-miss fetch** — a worker claiming a cell this peer does not
//!   own first asks the owner for the record
//!   (`GET /v1/cache/record/<key>`) and only simulates on a miss.
//!
//! Both degrade, never fail: an unreachable owner means the work runs
//! locally — exactly what a standalone server would have done.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crate::sync::lock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use malec_core::compare::{paired_converged, Alpha, CompareStats};
use malec_core::parallel::worker_count;
use malec_core::stats::{replicate_seed, ReplicateStats};
use malec_core::{RunSummary, ScenarioSource, Simulator};
use malec_trace::Scenario;
use malec_types::error::{Failure, FailureKind};
use malec_types::SimConfig;

use crate::cache::{cache_key, CacheStats, CompactOutcome, FsyncPolicy, ResultCache, SyncReport};
use crate::client::{Client, RetryPolicy};
use crate::fault::{FaultAction, Faults};
use crate::report::{render, render_compare, CellResult, CompareReportMeta, ReportMeta};
use crate::shard::ShardMap;
use crate::spec::SweepSpec;

/// Server-side job identifier.
pub type JobId = u64;

/// Default for [`EngineOptions::retain_done`]: terminal jobs retained for
/// status/report queries. Beyond this, the oldest terminal jobs are
/// evicted at submit time (their results stay in the cache; only the
/// per-job bookkeeping goes), so a long-lived server's memory is bounded
/// by its workload, not its uptime. Evicted ids answer like unknown ids.
const MAX_RETAINED_DONE: usize = 256;

/// Construction knobs for an [`Engine`]. `Default` matches what
/// `Engine::new(None, None)` always did: fan-out workers, in-memory
/// cache, no fault injection, 256 retained terminal jobs, no TTL.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Pool threads (`None`: the sweep fan-out [`worker_count`]).
    pub workers: Option<usize>,
    /// Cache-log path (`None`: in-memory cache).
    pub cache_path: Option<PathBuf>,
    /// When the cache log reaches stable storage.
    pub fsync: FsyncPolicy,
    /// Failpoint registry (disarmed in production).
    pub faults: Arc<Faults>,
    /// Terminal jobs retained for status/report queries before the oldest
    /// are evicted at submit time.
    pub retain_done: usize,
    /// Additionally expire terminal jobs this long after they settle
    /// (`None`: count-based eviction only).
    pub job_ttl: Option<Duration>,
    /// Cap on live cache bytes (`None`: unbounded). Past it, the
    /// least-recently-used entries are evicted from memory — and from disk
    /// at the next compaction.
    pub cache_max_bytes: Option<u64>,
    /// Auto-compaction trigger: when the log's dead-byte ratio reaches
    /// this fraction, the append that crossed it compacts the log in
    /// place (`None`: compaction only on demand via
    /// [`Engine::compact_cache`]).
    pub compact_threshold: Option<f64>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: None,
            cache_path: None,
            fsync: FsyncPolicy::default(),
            faults: Faults::disarmed(),
            retain_done: MAX_RETAINED_DONE,
            job_ttl: None,
            cache_max_bytes: None,
            compact_threshold: None,
        }
    }
}

/// How a finished cell got its summary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Freshly simulated by a pool worker.
    Simulated,
    /// Served from the result cache without simulating.
    Cached,
    /// Attached to a concurrent identical simulation (no own simulation).
    Coalesced,
    /// Fetched from the owning peer's cache (sharded serving) — by the
    /// per-cell owner fetch or the scatter/gather path.
    Fetched,
}

/// One schedulable cell: a `(config, replicate)` pair of one job. The
/// cache key folds `(base seed, replicate)`; the simulation runs under the
/// derived `replicate_seed(seed, replicate)`.
struct WorkUnit {
    job: JobId,
    cell: usize,
    config: SimConfig,
    scenario: Arc<Scenario>,
    insts: u64,
    /// The job's base seed (replicate 0 runs it verbatim).
    seed: u64,
    /// Replicate index within the config's cell group.
    replicate: u32,
}

/// Replication progress of one config's cell group.
struct Group {
    /// Replicates enqueued so far (cells `0..planned` of this group exist).
    planned: u32,
    /// Whether the group stopped growing (seed cap or CI convergence).
    converged: bool,
    /// Replicates the CI target saved (`seeds - planned` once converged
    /// early; 0 otherwise).
    saved: u32,
}

/// One cell slot's lifecycle.
enum CellState {
    /// Queued or simulating.
    Pending,
    /// Finished with a summary, by the recorded path.
    Done(Arc<RunSummary>, Provenance),
    /// The simulation failed (a worker panic). The job reports `failed`
    /// with this payload; a resubmission re-runs only the failed cells —
    /// their siblings are already cached.
    Failed(Failure),
}

/// One submitted spec and its per-cell progress. `cells` and `units` grow
/// in lockstep when a CI-targeted group is extended by one replicate.
struct Job {
    spec: SweepSpec,
    scenario: Arc<Scenario>,
    /// `(config index, replicate index)` of each cell slot.
    units: Vec<(usize, u32)>,
    cells: Vec<CellState>,
    groups: Vec<Group>,
    /// Explicit `[compare]` pairing `(baseline group, candidate group,
    /// alpha)`: under a `ci_target` these two groups stop **jointly**
    /// through the paired-delta criterion instead of their marginal CIs.
    pair: Option<(usize, usize, Alpha)>,
    started: Instant,
    wall_seconds: Option<f64>,
    /// When the job settled (all cells terminal) — the TTL clock.
    settled_at: Option<Instant>,
}

impl Job {
    fn done(&self) -> bool {
        self.cells.iter().all(|c| matches!(c, CellState::Done(..)))
    }

    fn failed(&self) -> bool {
        self.cells.iter().any(|c| matches!(c, CellState::Failed(_)))
    }

    /// No cell is pending: every slot is `Done` or `Failed`. (A job is
    /// reported `failed` as soon as one cell fails — fast-fail lets the
    /// client resubmit immediately — but it *settles*, for TTL and drain
    /// purposes, only when its in-flight siblings also land.)
    fn settled(&self) -> bool {
        !self.cells.iter().any(|c| matches!(c, CellState::Pending))
    }

    fn state(&self) -> &'static str {
        if self.failed() {
            "failed"
        } else if self.done() {
            "done"
        } else {
            "running"
        }
    }

    fn first_error(&self) -> Option<&Failure> {
        self.cells.iter().find_map(|c| match c {
            CellState::Failed(f) => Some(f),
            _ => None,
        })
    }

    fn count(&self, p: Provenance) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, CellState::Done(_, q) if *q == p))
            .count()
    }

    fn count_failed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, CellState::Failed(_)))
            .count()
    }

    /// This config group's finished replicate summaries, in replicate
    /// order; `None` while any planned replicate is still pending (or
    /// failed — a failed replicate never aggregates and never extends).
    fn group_replicates(&self, config: usize) -> Option<Vec<Arc<RunSummary>>> {
        let mut reps: Vec<(u32, Arc<RunSummary>)> = Vec::new();
        for (&(c, r), cell) in self.units.iter().zip(&self.cells) {
            if c == config {
                match cell {
                    CellState::Done(s, _) => reps.push((r, Arc::clone(s))),
                    CellState::Pending | CellState::Failed(_) => return None,
                }
            }
        }
        reps.sort_unstable_by_key(|&(r, _)| r);
        Some(reps.into_iter().map(|(_, s)| s).collect())
    }

    fn replicates_saved(&self) -> u32 {
        self.groups.iter().map(|g| g.saved).sum()
    }

    /// Records settlement (idempotently) for the wall clock and TTL.
    fn note_settled(&mut self) {
        if self.settled() && self.settled_at.is_none() {
            self.settled_at = Some(Instant::now());
            self.wall_seconds = Some(self.started.elapsed().as_secs_f64());
        }
    }
}

/// A point-in-time view of one job, served by `GET /v1/jobs/<id>`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: JobId,
    /// Scenario name of the submitted spec.
    pub scenario: String,
    /// `"running"`, `"done"`, or `"failed"`.
    pub state: &'static str,
    /// Total cells.
    pub cells: usize,
    /// Cells finished by a fresh simulation.
    pub simulated: usize,
    /// Cells served from the result cache.
    pub cached: usize,
    /// Cells that attached to a concurrent identical simulation.
    pub coalesced: usize,
    /// Cells fetched from their owning peer's cache (sharded serving).
    pub fetched: usize,
    /// Cells whose simulation failed (see [`JobStatus::error`]).
    pub failed: usize,
    /// Cells still queued or simulating.
    pub pending: usize,
    /// Replicates the CI target saved across all cell groups so far.
    pub replicates_saved: usize,
    /// Wall-clock seconds from submit to completion (`None` while
    /// running).
    pub wall_seconds: Option<f64>,
    /// The first failed cell's `kind: detail` payload, if any.
    pub error: Option<String>,
}

impl JobStatus {
    /// Cells that completed without a simulation of their own.
    pub fn served_without_simulation(&self) -> usize {
        self.cached + self.coalesced + self.fetched
    }
}

/// Why a comparison cannot be served for a known job.
#[derive(Clone, Debug)]
pub enum CompareError {
    /// The job is still running; the status says how far along it is.
    Running(JobStatus),
    /// The job is done but has no comparable pair (message says why).
    NotComparable(String),
}

/// Waiters parked on an in-flight simulation.
type Waiters = Vec<(JobId, usize)>;

struct EngineInner {
    cache: Mutex<ResultCache>,
    /// Cells currently simulating, with the units parked on each.
    in_flight: Mutex<HashMap<u128, Waiters>>,
    jobs: Mutex<HashMap<JobId, Job>>,
    queue: Mutex<VecDeque<WorkUnit>>,
    available: Condvar,
    stop: AtomicBool,
    next_job: AtomicU64,
    workers: usize,
    faults: Arc<Faults>,
    retain_done: usize,
    job_ttl: Option<Duration>,
    compact_threshold: Option<f64>,
    /// Workers respawned after a panic escaped the per-cell guard.
    respawns: AtomicU64,
    /// Sharded-serving map (`None`: standalone). Locked **alone**, always:
    /// readers clone the `Arc` out and release immediately, so this mutex
    /// never participates in any lock ordering.
    shard: Mutex<Option<Arc<ShardMap>>>,
}

/// The engine: owns the cache, the jobs, and the worker pool. Cheap to
/// share (`Engine::handle`); [`shutdown`](Engine::shutdown) joins the pool.
pub struct Engine {
    inner: Arc<EngineInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Builds an engine with `workers` pool threads (defaulting to the
    /// sweep fan-out [`worker_count`]) over an in-memory or persisted
    /// cache — [`with_options`](Self::with_options) with everything else
    /// defaulted.
    ///
    /// # Errors
    ///
    /// Propagates cache-log open errors.
    pub fn new(workers: Option<usize>, cache_path: Option<&Path>) -> io::Result<Self> {
        Self::with_options(EngineOptions {
            workers,
            cache_path: cache_path.map(Path::to_owned),
            ..EngineOptions::default()
        })
    }

    /// Builds an engine from explicit [`EngineOptions`].
    ///
    /// # Errors
    ///
    /// Propagates cache-log open errors.
    pub fn with_options(opts: EngineOptions) -> io::Result<Self> {
        let cache = match &opts.cache_path {
            Some(p) => ResultCache::open_with(p, opts.fsync, Arc::clone(&opts.faults))?,
            None => ResultCache::in_memory(),
        }
        .with_max_bytes(opts.cache_max_bytes);
        let workers = opts.workers.unwrap_or_else(worker_count).max(1);
        let inner = Arc::new(EngineInner {
            cache: Mutex::new(cache),
            in_flight: Mutex::new(HashMap::new()),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            workers,
            faults: opts.faults,
            retain_done: opts.retain_done.max(1),
            job_ttl: opts.job_ttl,
            compact_threshold: opts.compact_threshold,
            respawns: AtomicU64::new(0),
            shard: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_guard(&inner))
            })
            .collect();
        Ok(Self {
            inner,
            handles: Mutex::new(handles),
        })
    }

    /// Pool size.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Workers respawned after a panic escaped the per-cell guard (0 in a
    /// healthy process).
    pub fn respawns(&self) -> u64 {
        self.inner.respawns.load(Ordering::Relaxed)
    }

    /// This engine's failpoint registry.
    pub fn faults(&self) -> &Arc<Faults> {
        &self.inner.faults
    }

    /// Shards `spec` into per-cell units — one per `(config, replicate)`
    /// pair, starting with the replication policy's initial count — and
    /// enqueues them; returns the job id immediately (cells complete
    /// asynchronously; CI-targeted groups may grow by one replicate at a
    /// time until they converge or hit the seed cap).
    pub fn submit(&self, spec: SweepSpec) -> JobId {
        self.submit_with_source(spec, None)
    }

    /// [`Engine::submit`] plus the scatter half of sharded serving: when a
    /// [`ShardMap`] is installed **and** `source` carries the job's
    /// original spec text, config groups owned by other peers are not
    /// enqueued locally — each remote cluster is forwarded to its owner as
    /// a `?configs=`-filtered sub-job and gathered back as
    /// [`Provenance::Fetched`] cells by a detached thread. An unreachable
    /// owner degrades to local simulation; the job never fails for
    /// topology reasons. Forwarded sub-jobs arrive *without* a source
    /// (the server hands `None` for forwarded submissions), so they run
    /// owner-local and the scatter cannot recurse.
    pub fn submit_with_source(&self, spec: SweepSpec, source: Option<Arc<str>>) -> JobId {
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        let scenario = Arc::new(spec.scenario.clone());
        let initial = spec.replication.initial_count();
        let mut units: Vec<WorkUnit> = Vec::new();
        let mut unit_map: Vec<(usize, u32)> = Vec::new();
        for (config_idx, config) in spec.configs.iter().enumerate() {
            for replicate in 0..initial {
                unit_map.push((config_idx, replicate));
                units.push(WorkUnit {
                    job: id,
                    cell: units.len(),
                    config: config.clone(),
                    scenario: Arc::clone(&scenario),
                    insts: spec.insts,
                    seed: spec.seed,
                    replicate,
                });
            }
        }
        let unit_cfgs: Vec<usize> = unit_map.iter().map(|&(c, _)| c).collect();
        let job = Job {
            cells: (0..units.len()).map(|_| CellState::Pending).collect(),
            units: unit_map,
            groups: spec
                .configs
                .iter()
                .map(|_| Group {
                    planned: initial,
                    converged: false,
                    saved: 0,
                })
                .collect(),
            // Only an explicit [compare] couples the pair's stopping rule
            // (a defaulted comparison over a plain spec is an aggregation
            // concern, not a scheduling one).
            pair: spec
                .compare
                .is_some()
                .then(|| spec.resolve_compare().ok())
                .flatten()
                .map(|r| (r.baseline, r.candidate, r.alpha)),
            scenario,
            spec,
            started: Instant::now(),
            wall_seconds: None,
            settled_at: None,
        };
        // Scatter decision happens before the job is visible: groups with a
        // remote owner are withheld from the local queue and handed to
        // gather threads instead. (Shard mutex is locked alone, as always.)
        let shard = lock(&self.inner.shard).clone();
        let remote: Vec<(String, Vec<usize>)> = match (&shard, &source) {
            (Some(shard), Some(_)) if shard.peers().len() > 1 => remote_clusters(&job, shard),
            _ => Vec::new(),
        };
        {
            let mut jobs = lock(&self.inner.jobs);
            jobs.insert(id, job);
        }
        self.expire_terminal();
        let forwarded: HashSet<usize> =
            remote.iter().flat_map(|(_, c)| c.iter().copied()).collect();
        let local: Vec<WorkUnit> = units
            .into_iter()
            .filter(|u| !forwarded.contains(&unit_cfgs[u.cell]))
            .collect();
        if !local.is_empty() {
            let mut q = lock(&self.inner.queue);
            q.extend(local);
        }
        self.inner.available.notify_all();
        if let Some(source) = source {
            for (owner, cfgs) in remote {
                let inner = Arc::clone(&self.inner);
                let source = Arc::clone(&source);
                std::thread::spawn(move || gather_cluster(&inner, id, &owner, &cfgs, &source));
            }
        }
        id
    }

    /// Evicts expired terminal jobs: any settled longer than the TTL ago,
    /// then the oldest beyond the retention count. Runs at every submit;
    /// results stay in the cache — only per-job bookkeeping goes, and
    /// evicted ids answer like unknown ids.
    pub fn expire_terminal(&self) {
        let mut jobs = lock(&self.inner.jobs);
        if let Some(ttl) = self.inner.job_ttl {
            let now = Instant::now();
            jobs.retain(|_, j| match j.settled_at {
                Some(at) => now.duration_since(at) < ttl,
                None => true,
            });
        }
        let mut terminal: Vec<JobId> = jobs
            .iter()
            .filter(|(_, j)| j.settled())
            .map(|(&k, _)| k)
            .collect();
        if terminal.len() > self.inner.retain_done {
            terminal.sort_unstable();
            for k in &terminal[..terminal.len() - self.inner.retain_done] {
                jobs.remove(k);
            }
        }
    }

    /// The current status of `job`, or `None` for an unknown id.
    pub fn job_status(&self, job: JobId) -> Option<JobStatus> {
        let jobs = lock(&self.inner.jobs);
        let j = jobs.get(&job)?;
        let simulated = j.count(Provenance::Simulated);
        let cached = j.count(Provenance::Cached);
        let coalesced = j.count(Provenance::Coalesced);
        let fetched = j.count(Provenance::Fetched);
        let failed = j.count_failed();
        let finished = simulated + cached + coalesced + fetched + failed;
        Some(JobStatus {
            id: job,
            scenario: j.spec.scenario.name.clone(),
            state: j.state(),
            cells: j.cells.len(),
            simulated,
            cached,
            coalesced,
            fetched,
            failed,
            pending: j.cells.len() - finished,
            replicates_saved: j.replicates_saved() as usize,
            wall_seconds: j.wall_seconds,
            error: j.first_error().map(Failure::to_string),
        })
    }

    /// The finished job's report (same JSON schema as `malec-cli run`
    /// writes), or `None` for an unknown id, or `Some(Err(status))` while
    /// the job is still running.
    pub fn job_report(&self, job: JobId) -> Option<Result<String, JobStatus>> {
        let status = self.job_status(job)?;
        if status.state != "done" {
            return Some(Err(status));
        }
        let jobs = lock(&self.inner.jobs);
        let j = jobs.get(&job)?;
        // One report row per config group: replicate 0 carries the
        // single-seed columns (the legacy seed path), the stats block the
        // replicate distribution.
        let cells: Vec<CellResult> = (0..j.spec.configs.len())
            .map(|config_idx| {
                let reps = j
                    .group_replicates(config_idx)
                    .expect("job is done, every replicate finished");
                let cell = CellResult::from_generated((*reps[0]).clone());
                if j.spec.replication.replicated() {
                    let owned: Vec<RunSummary> = reps.iter().map(|s| (**s).clone()).collect();
                    cell.with_stats(ReplicateStats::from_replicates(
                        &owned,
                        j.spec.replication.seeds,
                    ))
                } else {
                    cell
                }
            })
            .collect();
        let spec_path = format!("job:{job}");
        let json = render(
            &ReportMeta {
                spec_path: &spec_path,
                scenario: &j.spec.scenario.name,
                segments: &j.spec.scenario.segment_labels(),
                mtr_path: &j.spec.mtr,
                insts: j.spec.insts,
                seed: j.spec.seed,
                seeds: j.spec.replication.seeds,
                workers: self.inner.workers,
                wall_seconds: j.wall_seconds.unwrap_or(0.0),
            },
            &cells,
        );
        Some(Ok(json))
    }

    /// The finished job's **paired comparison report** (the `malec-cli
    /// compare` JSON schema), assembled purely from the job's cache-keyed
    /// per-replicate cells — no simulation happens here, so a job served
    /// 100 % from cache compares for free. Pairs replicate `i` of the
    /// baseline group with replicate `i` of the candidate group (shared
    /// seed); the pairing comes from the spec's `[compare]` section or the
    /// default (Base1ldst vs MALEC at `alpha = 0.05`).
    ///
    /// Returns `None` for an unknown id; `Some(Err(..))` while the job is
    /// still running ([`CompareError::Running`]) or when the job cannot be
    /// compared ([`CompareError::NotComparable`] — pair not in the job's
    /// configs, or a single-seed sweep).
    pub fn job_compare(&self, job: JobId) -> Option<Result<String, CompareError>> {
        let status = self.job_status(job)?;
        if status.state != "done" {
            return Some(Err(CompareError::Running(status)));
        }
        let jobs = lock(&self.inner.jobs);
        let j = jobs.get(&job)?;
        let resolved = match j.spec.resolve_compare() {
            Ok(r) => r,
            Err(e) => return Some(Err(CompareError::NotComparable(e.to_string()))),
        };
        let owned = |config: usize| -> Vec<RunSummary> {
            j.group_replicates(config)
                .expect("job is done, every replicate finished")
                .iter()
                .map(|s| (**s).clone())
                .collect()
        };
        let base = owned(resolved.baseline);
        let cand = owned(resolved.candidate);
        let stats =
            CompareStats::from_pairs(&base, &cand, j.spec.replication.seeds, resolved.alpha);
        let spec_path = format!("job:{job}");
        let json = render_compare(
            &CompareReportMeta {
                spec_path: &spec_path,
                scenario: &j.spec.scenario.name,
                segments: &j.spec.scenario.segment_labels(),
                insts: j.spec.insts,
                seed: j.spec.seed,
                seeds: j.spec.replication.seeds,
                workers: self.inner.workers,
                wall_seconds: j.wall_seconds.unwrap_or(0.0),
            },
            &stats,
        );
        Some(Ok(json))
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        lock(&self.inner.cache).stats()
    }

    /// The cache-log path, if the cache is persisted.
    pub fn cache_path(&self) -> Option<std::path::PathBuf> {
        lock(&self.inner.cache).path().map(Path::to_owned)
    }

    /// Forces the cache log to stable storage (the graceful-shutdown
    /// flush; no-op for an in-memory cache).
    ///
    /// # Errors
    ///
    /// Propagates the `fsync` failure.
    pub fn sync_cache(&self) -> io::Result<()> {
        lock(&self.inner.cache).sync()
    }

    /// Compacts the persisted cache log down to its live record set (see
    /// [`ResultCache::compact`]) — the `POST /v1/cache/compact` handler
    /// and the `--compact-threshold` trigger share this path.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an in-memory cache; otherwise propagates the
    /// rewrite's I/O errors (the live log is untouched on failure).
    pub fn compact_cache(&self) -> io::Result<CompactOutcome> {
        lock(&self.inner.cache).compact()
    }

    /// The live record set in cache-log format — the `GET /v1/cache/sync`
    /// response body a fresh peer warms up from.
    pub fn sync_snapshot(&self) -> Vec<u8> {
        lock(&self.inner.cache).export_live()
    }

    /// The live record set as shared summaries plus the exact cache-log
    /// byte length of [`Engine::sync_snapshot`] — the chunked sync handler
    /// streams from this without materializing the whole log.
    pub fn sync_records(&self) -> (Vec<(u128, Arc<RunSummary>)>, u64) {
        lock(&self.inner.cache).live_records()
    }

    /// Installs the sharded-serving map: from now on this engine forwards
    /// remotely-owned config groups at submit (when given the spec source)
    /// and asks owners before simulating cells it does not own.
    pub fn set_shard(&self, shard: ShardMap) {
        *lock(&self.inner.shard) = Some(Arc::new(shard));
    }

    /// The configured peer set (sorted, self included), or empty when
    /// standalone — the `peers` array of `/v1/healthz`.
    pub fn shard_peers(&self) -> Vec<String> {
        lock(&self.inner.shard)
            .as_ref()
            .map(|s| s.peers().iter().map(|p| p.as_str().to_owned()).collect())
            .unwrap_or_default()
    }

    /// One cached record in single-record cache-log format (header + one
    /// record), or `None` on a miss — the `GET /v1/cache/record/<key>`
    /// response body. Counts as a cache hit: a peer fetching this record
    /// is serving it to a job, same as a local lookup would.
    pub fn cache_record(&self, key: u128) -> Option<Vec<u8>> {
        let summary = lock(&self.inner.cache).lookup(key)?;
        let mut body = crate::cache::log_header().to_vec();
        body.extend_from_slice(&crate::cache::encode_record(key, &summary));
        Some(body)
    }

    /// Warms this engine's cache from a peer's `/v1/cache/sync` stream,
    /// verifying every record's checksum and persisting each one not
    /// already resident. Meant to run before serving traffic (`malec-cli
    /// serve --warm-from`): the cache lock is held for the whole ingest.
    ///
    /// # Errors
    ///
    /// Propagates connection errors, a non-200 peer answer, a stream that
    /// is not a cache log, and local append failures.
    pub fn warm_from(&self, addr: &str) -> io::Result<SyncReport> {
        let (status, mut stream) =
            crate::http::request_stream(addr, "GET", "/v1/cache/sync", Duration::from_secs(60))?;
        if status != 200 {
            return Err(io::Error::other(format!(
                "peer {addr} answered {status} to GET /v1/cache/sync"
            )));
        }
        lock(&self.inner.cache).ingest(&mut stream)
    }

    /// Waits until every job settles (no cell pending — done or failed) or
    /// `deadline` elapses; returns whether everything settled. The drain
    /// half of graceful shutdown: the caller stops *submitting* first, so
    /// the pool runs the backlog dry.
    pub fn drain(&self, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        loop {
            let settled = lock(&self.inner.jobs).values().all(Job::settled);
            if settled {
                return true;
            }
            if Instant::now() >= until {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the pool after the current units finish and joins every
    /// worker. Queued-but-unstarted units are dropped; their jobs stay
    /// `running` forever, which only matters at process exit (drain first
    /// for a graceful stop).
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        let mut handles = lock(&self.handles);
        for h in handles.drain(..) {
            // Report rather than re-panic: shutdown also runs from Drop,
            // and a panic inside Drop during unwinding aborts the process
            // with no diagnostic. (With the respawn guard in place a
            // worker handle only errors if the *guard itself* panicked.)
            if h.join().is_err() {
                eprintln!("malec-serve: a worker thread panicked; its cells stay unfinished");
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The outer guard every pool thread runs under: a panic that escapes
/// [`worker_loop`] — i.e. one *outside* the per-cell `catch_unwind`, which
/// should never happen but must not silently shrink the pool — is caught
/// here and the loop re-entered in place (same thread, same handle, so
/// [`Engine::shutdown`] still joins it).
fn worker_guard(inner: &EngineInner) {
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(inner))) {
            Ok(()) => return, // clean stop
            Err(_) => {
                inner.respawns.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "malec-serve: worker panicked outside the cell guard; respawning in place"
                );
            }
        }
    }
}

fn worker_loop(inner: &EngineInner) {
    loop {
        // The loop-level failpoint sits BEFORE the queue pop: a panic here
        // exercises the respawn guard without orphaning a popped unit.
        if let Some(FaultAction::Panic) = inner.faults.check("worker.loop.panic") {
            panic!("injected worker-loop panic (failpoint worker.loop.panic)");
        }
        let unit = {
            let mut q = lock(&inner.queue);
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                match q.pop_front() {
                    Some(unit) => break unit,
                    None => {
                        q = inner
                            .available
                            .wait(q)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        process(inner, unit);
    }
}

/// What the claim step decided for one unit.
enum Claim {
    Hit(Arc<RunSummary>),
    Parked,
    Run,
}

fn process(inner: &EngineInner, unit: WorkUnit) {
    let key = cache_key(
        &unit.config,
        &unit.scenario,
        unit.insts,
        unit.seed,
        unit.replicate,
    );
    let claim = {
        // Lock order: cache before in_flight, here and in the completion
        // path below.
        let mut cache = lock(&inner.cache);
        let mut in_flight = lock(&inner.in_flight);
        match cache.lookup(key) {
            Some(summary) => Claim::Hit(summary),
            None => match in_flight.get_mut(&key) {
                Some(waiters) => {
                    waiters.push((unit.job, unit.cell));
                    cache.count_coalesced();
                    Claim::Parked
                }
                None => {
                    in_flight.insert(key, Vec::new());
                    Claim::Run
                }
            },
        }
    };
    match claim {
        Claim::Hit(summary) => finish_cell(inner, unit.job, unit.cell, summary, Provenance::Cached),
        Claim::Parked => {}
        Claim::Run => {
            // Sharded serving: a cell this peer does not own is first asked
            // from its owner. Cells route by their *group* key (the
            // replicate-0 key), so a whole config group lands on one owner
            // and its replication growth stays owner-local. A dead or
            // missing owner degrades to local simulation below.
            let shard = lock(&inner.shard).clone();
            if let Some(shard) = shard {
                let route = if unit.replicate == 0 {
                    key
                } else {
                    cache_key(&unit.config, &unit.scenario, unit.insts, unit.seed, 0)
                };
                if !shard.is_owner(route) {
                    let owner = shard.owner(route).as_str().to_owned();
                    match fetch_from_owner(&owner, key) {
                        Ok(summary) => {
                            lock(&inner.cache).count_fetched();
                            complete_run(
                                inner,
                                &unit,
                                key,
                                &Arc::new(summary),
                                Provenance::Fetched,
                            );
                            return;
                        }
                        Err(failure) => eprintln!(
                            "malec-serve: fetch of key {key:032x} from owner {owner} failed \
                             ({failure}); simulating locally"
                        ),
                    }
                }
            }
            // A miss is counted where the simulation actually starts, so a
            // cluster-wide sum of per-peer misses equals cells simulated
            // exactly once (peer-fetched cells count as fetches, not
            // misses).
            lock(&inner.cache).count_miss();
            inner.faults.check_delay("engine.cell.slow");
            // The per-cell panic guard: a panicking simulation (real bug
            // or the worker.panic failpoint) fails this cell — and every
            // waiter parked on it — with the panic payload, instead of
            // killing the worker thread.
            let simulated = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if let Some(FaultAction::Panic) = inner.faults.check("worker.panic") {
                    panic!("injected worker panic (failpoint worker.panic)");
                }
                Simulator::new(unit.config.clone())
                    .run_source(
                        &ScenarioSource::Scenario((*unit.scenario).clone()),
                        unit.insts,
                        replicate_seed(unit.seed, unit.replicate),
                    )
                    .expect("generator sources cannot fail")
            }));
            let summary = match simulated {
                Ok(summary) => Arc::new(summary),
                Err(payload) => {
                    // Release the claim first: a resubmitted cell must be
                    // able to start a fresh simulation, not park behind a
                    // claim nobody will ever finish.
                    let waiters = lock(&inner.in_flight).remove(&key).unwrap_or_default();
                    let failure = Failure::panic(panic_detail(payload.as_ref()));
                    eprintln!(
                        "malec-serve: cell simulation panicked ({}); job {} cell {} failed",
                        failure.detail, unit.job, unit.cell
                    );
                    fail_cell(inner, unit.job, unit.cell, failure.clone());
                    for (job, cell) in waiters {
                        fail_cell(inner, job, cell, failure.clone());
                    }
                    return;
                }
            };
            complete_run(inner, &unit, key, &summary, Provenance::Simulated);
        }
    }
}

/// Lands a completed cell, however it completed (own simulation or a fetch
/// from the owning peer): publishes the summary and releases the in-flight
/// claim (cache before in_flight — the one permitted nesting), persists
/// outside the locks, then finishes the owning cell with `provenance` and
/// every parked waiter as [`Provenance::Coalesced`].
fn complete_run(
    inner: &EngineInner,
    unit: &WorkUnit,
    key: u128,
    summary: &Arc<RunSummary>,
    provenance: Provenance,
) {
    let (waiters, appender) = {
        let mut cache = lock(&inner.cache);
        let mut in_flight = lock(&inner.in_flight);
        cache.insert(key, Arc::clone(summary));
        (in_flight.remove(&key).unwrap_or_default(), cache.appender())
    };
    // Persist outside the map/in-flight locks: a disk flush must
    // not block concurrent claim steps. The key is already resident
    // in memory, so no other worker can race this append.
    if let Some(appender) = appender {
        match appender.append(key, summary) {
            Ok(bytes) => {
                let mut cache = lock(&inner.cache);
                cache.note_appended(bytes);
                maybe_compact(inner, &mut cache);
            }
            // The in-memory entry took effect; losing persistence
            // costs warm restarts, not correctness. (A torn append
            // was already rolled back in place by the appender.)
            Err(e) => eprintln!("malec-serve: cache append failed: {e}"),
        }
    }
    finish_cell(inner, unit.job, unit.cell, Arc::clone(summary), provenance);
    for (job, cell) in waiters {
        finish_cell(inner, job, cell, Arc::clone(summary), Provenance::Coalesced);
    }
}

/// Asks `owner` for the record of `key` over the retrying client. Every
/// failure maps to [`FailureKind::Unavailable`]; the caller's recourse is
/// local simulation, never failing the cell.
fn fetch_from_owner(owner: &str, key: u128) -> Result<RunSummary, Failure> {
    Client::new(owner)
        .with_retry(RetryPolicy::retries(FETCH_RETRIES))
        .fetch_record(key)
        .map_err(|e| Failure::new(FailureKind::Unavailable, e))
}

/// How long a gather thread waits for a forwarded sub-job to finish.
const GATHER_TIMEOUT: Duration = Duration::from_secs(600);
/// Retries for the scatter/gather calls against an owning peer.
const GATHER_RETRIES: u32 = 2;
/// Retries for a per-cell record fetch from an owning peer.
const FETCH_RETRIES: u32 = 2;

/// Partitions a job's config groups into ownership clusters and keeps the
/// remotely-owned ones: an explicit `[compare]` pair is **one** cluster
/// (routed by the baseline's replicate-0 key, so paired joint growth stays
/// on one owner); every other config is a singleton routed by its own
/// replicate-0 key.
fn remote_clusters(j: &Job, shard: &ShardMap) -> Vec<(String, Vec<usize>)> {
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let paired: HashSet<usize> = match j.pair {
        Some((b, c, _)) => {
            clusters.push(vec![b, c]);
            [b, c].into_iter().collect()
        }
        None => HashSet::new(),
    };
    for idx in 0..j.spec.configs.len() {
        if !paired.contains(&idx) {
            clusters.push(vec![idx]);
        }
    }
    clusters
        .into_iter()
        .filter_map(|cfgs| {
            let route = cache_key(
                &j.spec.configs[cfgs[0]],
                &j.scenario,
                j.spec.insts,
                j.spec.seed,
                0,
            );
            (!shard.is_owner(route)).then(|| (shard.owner(route).as_str().to_owned(), cfgs))
        })
        .collect()
}

/// Gather thread for one remote cluster: forward, wait, fetch, land. Any
/// failure — owner down, sub-job failed, a record missing — falls back to
/// enqueueing the cluster's pending cells locally, so topology never fails
/// a job (the cells simulate here exactly as a standalone server would).
fn gather_cluster(inner: &Arc<EngineInner>, job: JobId, owner: &str, cfgs: &[usize], source: &str) {
    if let Err(detail) = gather_remote(inner, job, owner, cfgs, source) {
        let failure = Failure::new(FailureKind::Unavailable, detail);
        eprintln!(
            "malec-serve: gather from owner {owner} for job {job} failed ({failure}); \
             falling back to local simulation"
        );
        enqueue_cluster_locally(inner, job, cfgs);
    }
}

/// The success path of [`gather_cluster`]: submits the cluster's configs
/// to their owner as a `?configs=`-filtered sub-job, waits with the
/// backoff client, fetches **every** per-replicate record before landing
/// any (all-or-nothing: a partial gather falls back cleanly), then grows
/// the local groups to the owner's converged counts and finishes each
/// cell as [`Provenance::Fetched`].
fn gather_remote(
    inner: &Arc<EngineInner>,
    job: JobId,
    owner: &str,
    cfgs: &[usize],
    source: &str,
) -> Result<(), String> {
    let (labels, snapshot, scenario, insts, seed) = {
        let jobs = lock(&inner.jobs);
        let j = jobs
            .get(&job)
            .ok_or_else(|| "job expired before gather started".to_owned())?;
        (
            cfgs.iter()
                .map(|&c| j.spec.configs[c].label())
                .collect::<Vec<String>>(),
            cfgs.iter()
                .map(|&c| j.spec.configs[c].clone())
                .collect::<Vec<SimConfig>>(),
            Arc::clone(&j.scenario),
            j.spec.insts,
            j.spec.seed,
        )
    };
    let client = Client::new(owner).with_retry(RetryPolicy::retries(GATHER_RETRIES));
    let sub = client.submit_configs(source, &labels)?;
    let view = client.wait(sub, GATHER_TIMEOUT)?;
    if view.state != "done" {
        return Err(format!(
            "sub-job {sub} at {owner} ended {}{}",
            view.state,
            view.error.map(|e| format!(" ({e})")).unwrap_or_default()
        ));
    }
    if view.cells == 0 || view.cells % cfgs.len() as u64 != 0 {
        return Err(format!(
            "sub-job {sub} at {owner} reported {} cells for {} configs",
            view.cells,
            cfgs.len()
        ));
    }
    // The pair (and any singleton) grows every group in the cluster in
    // lockstep, so per-group counts divide evenly.
    let per_group = (view.cells / cfgs.len() as u64) as u32;
    let saved_per_group = (view.replicates_saved / cfgs.len() as u64) as u32;
    let mut fetched: Vec<(usize, u32, u128, Arc<RunSummary>)> = Vec::new();
    for (ci, config) in cfgs.iter().zip(&snapshot) {
        for r in 0..per_group {
            let key = cache_key(config, &scenario, insts, seed, r);
            let summary = client.fetch_record(key)?;
            fetched.push((*ci, r, key, Arc::new(summary)));
        }
    }
    // Persist into the local cache (lock taken alone): losing an append
    // costs warm restarts, not correctness, so append errors only log.
    {
        let mut cache = lock(&inner.cache);
        for (_, _, key, summary) in &fetched {
            if !cache.contains(*key) {
                cache.count_fetched();
                if let Err(e) = cache.insert_persist(*key, Arc::clone(summary)) {
                    eprintln!("malec-serve: cache append failed: {e}");
                }
            }
        }
    }
    let cells: Vec<(usize, Arc<RunSummary>)> = {
        let mut jobs = lock(&inner.jobs);
        let j = jobs
            .get_mut(&job)
            .ok_or_else(|| "job expired during gather".to_owned())?;
        for &ci in cfgs {
            if per_group < j.groups[ci].planned {
                return Err(format!(
                    "sub-job {sub} at {owner} returned {per_group} replicates for `{}`, \
                     fewer than the {} already planned",
                    j.spec.configs[ci].label(),
                    j.groups[ci].planned
                ));
            }
            // Grow the group to the owner's count and mark it converged
            // BEFORE any cell finishes: the owner already ran the stopping
            // rule, so extend_after_finish must be a no-op here.
            for r in j.groups[ci].planned..per_group {
                j.units.push((ci, r));
                j.cells.push(CellState::Pending);
            }
            let g = &mut j.groups[ci];
            g.planned = per_group;
            g.converged = true;
            g.saved = saved_per_group;
        }
        fetched
            .iter()
            .map(|(ci, r, _, summary)| {
                j.units
                    .iter()
                    .position(|&(c, rr)| c == *ci && rr == *r)
                    .map(|cell| (cell, Arc::clone(summary)))
                    .ok_or_else(|| format!("no cell slot for config {ci} replicate {r}"))
            })
            .collect::<Result<_, _>>()?
    };
    for (cell, summary) in cells {
        finish_cell(inner, job, cell, summary, Provenance::Fetched);
    }
    Ok(())
}

/// The fallback half of [`gather_cluster`]: enqueues every still-pending
/// cell of the cluster's configs for local simulation.
fn enqueue_cluster_locally(inner: &Arc<EngineInner>, job: JobId, cfgs: &[usize]) {
    let units: Vec<WorkUnit> = {
        let jobs = lock(&inner.jobs);
        let Some(j) = jobs.get(&job) else {
            return;
        };
        j.units
            .iter()
            .enumerate()
            .filter(|&(cell, &(ci, _))| {
                cfgs.contains(&ci) && matches!(j.cells[cell], CellState::Pending)
            })
            .map(|(cell, &(ci, replicate))| WorkUnit {
                job,
                cell,
                config: j.spec.configs[ci].clone(),
                scenario: Arc::clone(&j.scenario),
                insts: j.spec.insts,
                seed: j.spec.seed,
                replicate,
            })
            .collect()
    };
    if !units.is_empty() {
        let mut q = lock(&inner.queue);
        q.extend(units);
        drop(q);
        inner.available.notify_all();
    }
}

/// Auto-compaction floor: a log smaller than this never auto-compacts,
/// whatever its dead ratio — rewriting a near-empty log over and over buys
/// nothing.
const MIN_AUTO_COMPACT_BYTES: u64 = 4096;

/// The `--compact-threshold` trigger, run after every successful append
/// (under the cache lock the caller already holds): once dead bytes reach
/// the configured fraction of the log's payload, rewrite in place. A
/// failed compaction is logged and retried naturally at the next append.
fn maybe_compact(inner: &EngineInner, cache: &mut ResultCache) {
    let Some(threshold) = inner.compact_threshold else {
        return;
    };
    let stats = cache.stats();
    if stats.log_bytes < MIN_AUTO_COMPACT_BYTES || cache.dead_ratio() < threshold {
        return;
    }
    match cache.compact() {
        Ok(o) => eprintln!(
            "malec-serve: auto-compacted cache log {} -> {} bytes ({} live records)",
            o.bytes_before, o.bytes_after, o.records
        ),
        Err(e) => eprintln!("malec-serve: auto-compaction failed: {e}"),
    }
}

/// Renders a caught panic payload as the human-readable failure detail.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Marks one cell failed (idempotently — a cell can only fail out of
/// `Pending`) and settles the job if that was its last outstanding cell.
fn fail_cell(inner: &EngineInner, job: JobId, cell: usize, failure: Failure) {
    let mut jobs = lock(&inner.jobs);
    let Some(j) = jobs.get_mut(&job) else {
        return;
    };
    if matches!(j.cells[cell], CellState::Pending) {
        j.cells[cell] = CellState::Failed(failure);
    }
    j.note_settled();
}

fn finish_cell(
    inner: &EngineInner,
    job: JobId,
    cell: usize,
    summary: Arc<RunSummary>,
    provenance: Provenance,
) {
    let new_units = {
        let mut jobs = lock(&inner.jobs);
        let Some(j) = jobs.get_mut(&job) else {
            return;
        };
        if matches!(j.cells[cell], CellState::Pending) {
            j.cells[cell] = CellState::Done(summary, provenance);
        }
        let (config_idx, _) = j.units[cell];
        let new_units = extend_after_finish(j, job, config_idx);
        j.note_settled();
        new_units
    };
    // Enqueue outside the jobs lock (lock order everywhere: jobs before
    // queue is never held; queue is only ever taken alone).
    if !new_units.is_empty() {
        let mut q = lock(&inner.queue);
        q.extend(new_units);
        drop(q);
        inner.available.notify_all();
    }
}

/// Replication step after one cell of `config_idx` finished. Groups paired
/// by an explicit `[compare]` section route to [`extend_pair`] (the paired
/// delta is their stopping criterion); every other group keeps the
/// marginal rule of [`extend_group`].
fn extend_after_finish(j: &mut Job, job: JobId, config_idx: usize) -> Vec<WorkUnit> {
    if let Some((b, c, alpha)) = j.pair {
        if config_idx == b || config_idx == c {
            return extend_pair(j, job, b, c, alpha);
        }
    }
    extend_group(j, job, config_idx).into_iter().collect()
}

/// Marginal replication step for one config group: once every planned
/// replicate has finished, either certify convergence (CI target met, or
/// the seed cap reached) or grow the group by exactly one replicate.
/// Growing one at a time makes the final count the smallest prefix
/// satisfying the policy — the same count a serial driver picks.
fn extend_group(j: &mut Job, job: JobId, config_idx: usize) -> Option<WorkUnit> {
    let rep = j.spec.replication;
    if j.groups[config_idx].converged {
        return None;
    }
    let replicates = j.group_replicates(config_idx)?;
    if rep.converged(replicates.iter().map(Arc::as_ref)) {
        certify(j, job, config_idx);
        return None;
    }
    Some(push_unit(j, job, config_idx))
}

/// Paired replication step for the `[compare]` groups: once **both**
/// groups' planned replicates have finished, either certify joint
/// convergence (the paired-delta criterion of
/// [`malec_core::compare::paired_converged`] — the same pure prefix
/// function the local `paired_rounds` driver uses, so server and CLI stop
/// at identical counts) or grow *both* groups by one shared seed.
fn extend_pair(j: &mut Job, job: JobId, b: usize, c: usize, alpha: Alpha) -> Vec<WorkUnit> {
    let rep = j.spec.replication;
    if j.groups[b].converged || j.groups[c].converged {
        return Vec::new();
    }
    let (Some(base), Some(cand)) = (j.group_replicates(b), j.group_replicates(c)) else {
        return Vec::new(); // one side still has pending replicates
    };
    let n = base.len().min(cand.len());
    let pairs = (0..n).map(|i| (base[i].as_ref(), cand[i].as_ref()));
    if paired_converged(&rep, alpha, pairs) {
        certify(j, job, b);
        certify(j, job, c);
        return Vec::new();
    }
    vec![push_unit(j, job, b), push_unit(j, job, c)]
}

/// Marks one group converged and prices what the CI target saved.
fn certify(j: &mut Job, job: JobId, config_idx: usize) {
    let rep = j.spec.replication;
    let g = &mut j.groups[config_idx];
    g.converged = true;
    g.saved = rep.seeds.saturating_sub(g.planned);
    if g.saved > 0 {
        eprintln!(
            "malec-serve: job {job} `{}` converged after {}/{} replicates ({} saved)",
            j.spec.configs[config_idx].label(),
            g.planned,
            rep.seeds,
            g.saved,
        );
    }
}

/// Appends one more replicate slot to a group and builds its work unit.
fn push_unit(j: &mut Job, job: JobId, config_idx: usize) -> WorkUnit {
    let replicate = j.groups[config_idx].planned;
    j.groups[config_idx].planned += 1;
    j.units.push((config_idx, replicate));
    j.cells.push(CellState::Pending);
    WorkUnit {
        job,
        cell: j.cells.len() - 1,
        config: j.spec.configs[config_idx].clone(),
        scenario: Arc::clone(&j.scenario),
        insts: j.spec.insts,
        seed: j.spec.seed,
        replicate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;
    use std::time::Duration;

    const SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                        [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 2000\nseed = 5\n";

    fn wait_done(engine: &Engine, job: JobId) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let status = engine.job_status(job).expect("job exists");
            if status.state == "done" {
                return status;
            }
            assert!(Instant::now() < deadline, "job {job} never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn submit_runs_to_done_and_resubmit_is_fully_cached() {
        let engine = Engine::new(Some(2), None).expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let first = engine.submit(spec.clone());
        let status = wait_done(&engine, first);
        assert_eq!(status.cells, 2);
        assert_eq!(status.simulated, 2, "cold cache simulates everything");
        assert!(status.wall_seconds.is_some());

        let second = engine.submit(spec);
        let status = wait_done(&engine, second);
        assert_eq!(
            status.served_without_simulation(),
            status.cells,
            "an identical resubmission must not simulate anything"
        );
        assert_eq!(status.simulated, 0);
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.hits >= 2);
        engine.shutdown();
    }

    #[test]
    fn reports_are_identical_across_cache_paths() {
        let engine = Engine::new(Some(2), None).expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let a = engine.submit(spec.clone());
        wait_done(&engine, a);
        let b = engine.submit(spec);
        wait_done(&engine, b);
        let ra = engine.job_report(a).expect("known").expect("done");
        let rb = engine.job_report(b).expect("known").expect("done");
        // Same cells block bit for bit; only the job id and wall clock may
        // differ.
        let cells = |r: &str| r[r.find("\"cells\": [").expect("cells")..].to_owned();
        assert_eq!(cells(&ra), cells(&rb));
        engine.shutdown();
    }

    #[test]
    fn resubmission_with_more_seeds_only_simulates_the_new_replicates() {
        let engine = Engine::new(Some(2), None).expect("engine");
        let base = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                    [sweep]\nconfigs = [\"MALEC\"]\ninsts = 2000\nseed = 5\nseeds = ";
        let four = parse_spec(&format!("{base}4\n")).expect("spec");
        let eight = parse_spec(&format!("{base}8\n")).expect("spec");

        let first = engine.submit(four);
        let status = wait_done(&engine, first);
        assert_eq!(status.cells, 4, "1 config x 4 replicates");
        assert_eq!(status.simulated, 4);

        let second = engine.submit(eight);
        let status = wait_done(&engine, second);
        assert_eq!(status.cells, 8);
        assert_eq!(
            status.simulated, 4,
            "replicates 0-3 are cache hits; only 4-7 simulate"
        );
        assert_eq!(status.cached, 4);
        assert_eq!(engine.cache_stats().entries, 8);

        // The report carries replicate statistics for every cell group.
        let report = engine.job_report(second).expect("known").expect("done");
        assert!(report.contains("\"replicates\": 8"), "{report}");
        assert!(report.contains("\"metrics\""));
        engine.shutdown();
    }

    #[test]
    fn ci_target_stops_spawning_replicates_and_reports_the_savings() {
        let engine = Engine::new(Some(2), None).expect("engine");
        // A generous 50% relative CI target converges at min_seeds for any
        // sane workload, saving the rest of the 16-seed budget.
        let spec = parse_spec(
            "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
             [sweep]\nconfigs = [\"MALEC\"]\ninsts = 2000\nseed = 5\n\
             seeds = 16\nmin_seeds = 3\nci_target = 0.5\n",
        )
        .expect("spec");
        let job = engine.submit(spec);
        let status = wait_done(&engine, job);
        assert!(
            status.cells < 16,
            "early stopping must cut the replicate count, got {}",
            status.cells
        );
        assert!(status.cells >= 3, "never below min_seeds");
        assert_eq!(
            status.replicates_saved,
            16 - status.cells,
            "savings are reported"
        );
        let report = engine.job_report(job).expect("known").expect("done");
        assert!(
            report.contains(&format!(
                "\"replicates_saved\": {}",
                status.replicates_saved
            )),
            "{report}"
        );
        engine.shutdown();
    }

    #[test]
    fn unknown_job_is_none_and_running_report_is_err() {
        let engine = Engine::new(Some(1), None).expect("engine");
        assert!(engine.job_status(999).is_none());
        assert!(engine.job_report(999).is_none());
        assert!(engine.job_compare(999).is_none());
        engine.shutdown();
    }

    #[test]
    fn compare_reports_assemble_from_replicate_cells_and_match_local_pairing() {
        use malec_core::compare::{compare_digest, Alpha, CompareStats};
        let engine = Engine::new(Some(2), None).expect("engine");
        let spec = parse_spec(
            "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
             [compare]\nbaseline = \"Base1ldst\"\ncandidate = \"MALEC\"\n\
             [sweep]\ninsts = 2000\nseed = 5\nseeds = 4\n",
        )
        .expect("spec");
        let job = engine.submit(spec.clone());
        let status = wait_done(&engine, job);
        assert_eq!(status.cells, 8, "2 configs x 4 shared seeds");
        let report = engine.job_compare(job).expect("known").expect("done");
        assert!(report.contains("\"bench\": \"malec_compare\""), "{report}");
        assert!(report.contains("\"verdict\""));

        // The served digest equals a locally assembled pairing over the
        // same seeds — the endpoint is pure aggregation, no simulation.
        use malec_core::stats::replicate_seed;
        use malec_core::{ScenarioSource, Simulator};
        let source = ScenarioSource::Scenario(spec.scenario.clone());
        let runs = |cfg: &malec_types::SimConfig| -> Vec<malec_core::RunSummary> {
            (0..4)
                .map(|r| {
                    Simulator::new(cfg.clone())
                        .run_source(&source, spec.insts, replicate_seed(spec.seed, r))
                        .expect("generator sources cannot fail")
                })
                .collect()
        };
        let stats = CompareStats::from_pairs(
            &runs(&spec.configs[0]),
            &runs(&spec.configs[1]),
            4,
            Alpha::Five,
        );
        assert!(
            report.contains(&format!("{:#018x}", compare_digest(&stats))),
            "served deltas must be bit-identical to the local pairing"
        );
        engine.shutdown();
    }

    #[test]
    fn paired_ci_target_stops_both_groups_jointly() {
        let engine = Engine::new(Some(3), None).expect("engine");
        let spec = parse_spec(
            "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
             [compare]\n\
             [sweep]\ninsts = 2000\nseed = 5\nseeds = 16\nmin_seeds = 3\nci_target = 0.5\n",
        )
        .expect("spec");
        let job = engine.submit(spec);
        let status = wait_done(&engine, job);
        assert!(
            status.cells < 32,
            "paired early stopping must cut the pair count, got {}",
            status.cells
        );
        assert_eq!(
            status.cells % 2,
            0,
            "the pair grows jointly: both sides always hold the same count"
        );
        assert!(status.cells >= 6, "never below min_seeds per side");
        let report = engine.job_compare(job).expect("known").expect("done");
        let n = status.cells / 2;
        assert!(report.contains(&format!("\"replicates\": {n}")), "{report}");
        assert!(report.contains(&format!("\"replicates_saved\": {}", 16 - n)));
        engine.shutdown();
    }

    fn wait_settled(engine: &Engine, job: JobId) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let status = engine.job_status(job).expect("job exists");
            if status.pending == 0 {
                return status;
            }
            assert!(Instant::now() < deadline, "job {job} never settled");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn injected_cell_panic_fails_the_job_and_resubmission_recovers() {
        let faults = Faults::disarmed();
        // The first simulated cell panics; every later cell is clean.
        faults.arm("worker.panic", 1, None);
        let engine = Engine::with_options(EngineOptions {
            workers: Some(1), // serial: the panic lands on cell 0
            faults: faults.clone(),
            ..EngineOptions::default()
        })
        .expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let first = engine.submit(spec.clone());
        let status = wait_settled(&engine, first);
        assert_eq!(status.state, "failed");
        assert_eq!(status.failed, 1);
        assert_eq!(status.simulated, 1, "the sibling cell still finished");
        let error = status.error.expect("failed job carries its error");
        assert!(error.starts_with("panic:"), "{error}");
        assert!(error.contains("injected worker panic"), "{error}");
        assert!(status.wall_seconds.is_some(), "settled jobs have a clock");
        assert!(
            matches!(engine.job_report(first), Some(Err(s)) if s.state == "failed"),
            "no report for a failed job"
        );

        // Idempotent resubmission: the failed cell re-simulates, the
        // finished sibling is a cache hit — and the pool is intact (the
        // panic was caught per-cell, no respawn needed).
        let second = engine.submit(spec);
        let status = wait_settled(&engine, second);
        assert_eq!(status.state, "done");
        assert_eq!((status.simulated, status.cached), (1, 1));
        assert_eq!(engine.respawns(), 0);
        assert!(faults.exhausted());
        engine.shutdown();
    }

    #[test]
    fn panicking_cell_fails_parked_waiters_too() {
        let faults = Faults::disarmed();
        faults.arm("worker.panic", 1, None);
        let engine = Engine::with_options(EngineOptions {
            workers: Some(4),
            faults: faults.clone(),
            // Slow the doomed cell so the overlapping submissions park on
            // its in-flight claim before it panics.
            ..EngineOptions::default()
        })
        .expect("engine");
        faults.arm("engine.cell.slow", 1, Some(150));
        let spec = parse_spec(
            "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
             [sweep]\nconfigs = [\"MALEC\"]\ninsts = 2000\nseed = 5\n",
        )
        .expect("spec");
        let a = engine.submit(spec.clone());
        std::thread::sleep(Duration::from_millis(40));
        let b = engine.submit(spec.clone());
        let sa = wait_settled(&engine, a);
        let sb = wait_settled(&engine, b);
        assert_eq!(sa.state, "failed");
        assert_eq!(
            sb.state, "failed",
            "a waiter parked on the panicking cell fails with it"
        );
        assert!(sb.error.expect("waiter error").contains("injected"));

        // Both resubmit cleanly: the claim was released with the failure.
        let c = engine.submit(spec);
        assert_eq!(wait_settled(&engine, c).state, "done");
        engine.shutdown();
    }

    #[test]
    fn loop_panic_respawns_the_worker_and_work_continues() {
        let faults = Faults::disarmed();
        faults.arm("worker.loop.panic", 2, None);
        let engine = Engine::with_options(EngineOptions {
            workers: Some(1), // the sole worker must die and come back
            faults: faults.clone(),
            ..EngineOptions::default()
        })
        .expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let job = engine.submit(spec);
        let status = wait_done(&engine, job);
        assert_eq!(status.simulated, 2, "work completes despite the crash");
        assert_eq!(engine.respawns(), 1, "the pool healed itself");
        assert!(faults.exhausted());
        engine.shutdown();
    }

    #[test]
    fn terminal_jobs_expire_by_count_and_ttl() {
        let engine = Engine::with_options(EngineOptions {
            workers: Some(2),
            retain_done: 2,
            job_ttl: Some(Duration::from_millis(60)),
            ..EngineOptions::default()
        })
        .expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let ids: Vec<JobId> = (0..4).map(|_| engine.submit(spec.clone())).collect();
        for &id in &ids {
            wait_done(&engine, id);
        }
        // Count-based eviction: only the newest `retain_done` survive a
        // sweep.
        engine.expire_terminal();
        assert!(engine.job_status(ids[0]).is_none(), "oldest evicted");
        assert!(engine.job_status(ids[1]).is_none());
        assert!(engine.job_status(ids[2]).is_some());
        assert!(engine.job_status(ids[3]).is_some());
        // TTL eviction: past the deadline everything terminal goes.
        std::thread::sleep(Duration::from_millis(90));
        engine.expire_terminal();
        for &id in &ids {
            assert!(engine.job_status(id).is_none(), "job {id} outlived its TTL");
        }
        engine.shutdown();
    }

    #[test]
    fn drain_waits_for_inflight_work() {
        let faults = Faults::disarmed();
        faults.arm("engine.cell.slow", 1, Some(120));
        let engine = Engine::with_options(EngineOptions {
            workers: Some(2),
            faults,
            ..EngineOptions::default()
        })
        .expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let job = engine.submit(spec);
        assert!(
            engine.drain(Duration::from_secs(30)),
            "drain must outwait the slowed cell"
        );
        let status = engine.job_status(job).expect("drained job retained");
        assert_eq!(status.state, "done");
        assert_eq!(status.pending, 0);
        engine.shutdown();
    }

    #[test]
    fn single_seed_jobs_are_not_comparable() {
        let engine = Engine::new(Some(1), None).expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let job = engine.submit(spec);
        wait_done(&engine, job);
        match engine.job_compare(job) {
            Some(Err(CompareError::NotComparable(msg))) => {
                assert!(msg.contains("`seeds` >= 2"), "{msg}");
            }
            other => panic!("expected NotComparable, got {other:?}"),
        }
        engine.shutdown();
    }
}
