//! The batch engine: a job queue feeding a persistent worker pool, fused
//! with the content-addressed [`ResultCache`].
//!
//! [`Engine::submit`] shards one [`SweepSpec`] into per-cell work units
//! (one unit per configuration; the scenario, horizon and seed are shared)
//! and enqueues them. A fixed pool of worker threads — sized like
//! [`malec_core::parallel`]'s fan-out, but *persistent* across jobs instead
//! of scoped per call — drains the queue. For each unit a worker:
//!
//! 1. looks the cell's [`cache_key`] up: a **hit** finishes the cell with
//!    the stored summary, zero simulation;
//! 2. otherwise checks the **in-flight** table: if an identical cell is
//!    already simulating (a concurrent overlapping job), the unit parks as
//!    a waiter and is finished by whoever simulates it — the cache answers
//!    `N` concurrent identical submissions with **one** simulation;
//! 3. otherwise claims the key, simulates, inserts the summary into the
//!    cache (persisting it), and finishes the cell plus every parked
//!    waiter.
//!
//! Everything a worker produces is deterministic, so a cell served from
//! cache, from a waiter hand-off, or from a fresh simulation is
//! bit-identical — the job report cannot tell (and records which path each
//! cell took anyway, for the cache-stats endpoint and the acceptance
//! tests).

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use malec_core::compare::{paired_converged, Alpha, CompareStats};
use malec_core::parallel::worker_count;
use malec_core::stats::{replicate_seed, ReplicateStats};
use malec_core::{RunSummary, ScenarioSource, Simulator};
use malec_trace::Scenario;
use malec_types::SimConfig;

use crate::cache::{cache_key, CacheStats, ResultCache};
use crate::report::{render, render_compare, CellResult, CompareReportMeta, ReportMeta};
use crate::spec::SweepSpec;

/// Server-side job identifier.
pub type JobId = u64;

/// Finished jobs retained for status/report queries. Beyond this, the
/// oldest finished jobs are evicted at submit time (their results stay in
/// the cache; only the per-job bookkeeping goes), so a long-lived server's
/// memory is bounded by its workload, not its uptime. Evicted ids answer
/// like unknown ids.
const MAX_RETAINED_DONE: usize = 256;

/// How a finished cell got its summary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Freshly simulated by a pool worker.
    Simulated,
    /// Served from the result cache without simulating.
    Cached,
    /// Attached to a concurrent identical simulation (no own simulation).
    Coalesced,
}

/// One schedulable cell: a `(config, replicate)` pair of one job. The
/// cache key folds `(base seed, replicate)`; the simulation runs under the
/// derived `replicate_seed(seed, replicate)`.
struct WorkUnit {
    job: JobId,
    cell: usize,
    config: SimConfig,
    scenario: Arc<Scenario>,
    insts: u64,
    /// The job's base seed (replicate 0 runs it verbatim).
    seed: u64,
    /// Replicate index within the config's cell group.
    replicate: u32,
}

/// Replication progress of one config's cell group.
struct Group {
    /// Replicates enqueued so far (cells `0..planned` of this group exist).
    planned: u32,
    /// Whether the group stopped growing (seed cap or CI convergence).
    converged: bool,
    /// Replicates the CI target saved (`seeds - planned` once converged
    /// early; 0 otherwise).
    saved: u32,
}

/// One submitted spec and its per-cell progress. `cells` and `units` grow
/// in lockstep when a CI-targeted group is extended by one replicate.
struct Job {
    spec: SweepSpec,
    scenario: Arc<Scenario>,
    /// `(config index, replicate index)` of each cell slot.
    units: Vec<(usize, u32)>,
    cells: Vec<Option<(Arc<RunSummary>, Provenance)>>,
    groups: Vec<Group>,
    /// Explicit `[compare]` pairing `(baseline group, candidate group,
    /// alpha)`: under a `ci_target` these two groups stop **jointly**
    /// through the paired-delta criterion instead of their marginal CIs.
    pair: Option<(usize, usize, Alpha)>,
    started: Instant,
    wall_seconds: Option<f64>,
}

impl Job {
    fn done(&self) -> bool {
        self.cells.iter().all(Option::is_some)
    }

    fn count(&self, p: Provenance) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, Some((_, q)) if *q == p))
            .count()
    }

    /// This config group's finished replicate summaries, in replicate
    /// order; `None` while any planned replicate is still pending.
    fn group_replicates(&self, config: usize) -> Option<Vec<Arc<RunSummary>>> {
        let mut reps: Vec<(u32, Arc<RunSummary>)> = Vec::new();
        for (&(c, r), cell) in self.units.iter().zip(&self.cells) {
            if c == config {
                reps.push((r, cell.as_ref()?.0.clone()));
            }
        }
        reps.sort_unstable_by_key(|&(r, _)| r);
        Some(reps.into_iter().map(|(_, s)| s).collect())
    }

    fn replicates_saved(&self) -> u32 {
        self.groups.iter().map(|g| g.saved).sum()
    }
}

/// A point-in-time view of one job, served by `GET /v1/jobs/<id>`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: JobId,
    /// Scenario name of the submitted spec.
    pub scenario: String,
    /// `"running"` or `"done"`.
    pub state: &'static str,
    /// Total cells.
    pub cells: usize,
    /// Cells finished by a fresh simulation.
    pub simulated: usize,
    /// Cells served from the result cache.
    pub cached: usize,
    /// Cells that attached to a concurrent identical simulation.
    pub coalesced: usize,
    /// Cells still queued or simulating.
    pub pending: usize,
    /// Replicates the CI target saved across all cell groups so far.
    pub replicates_saved: usize,
    /// Wall-clock seconds from submit to completion (`None` while
    /// running).
    pub wall_seconds: Option<f64>,
}

impl JobStatus {
    /// Cells that completed without a simulation of their own.
    pub fn served_without_simulation(&self) -> usize {
        self.cached + self.coalesced
    }
}

/// Why a comparison cannot be served for a known job.
#[derive(Clone, Debug)]
pub enum CompareError {
    /// The job is still running; the status says how far along it is.
    Running(JobStatus),
    /// The job is done but has no comparable pair (message says why).
    NotComparable(String),
}

/// Waiters parked on an in-flight simulation.
type Waiters = Vec<(JobId, usize)>;

struct EngineInner {
    cache: Mutex<ResultCache>,
    /// Cells currently simulating, with the units parked on each.
    in_flight: Mutex<HashMap<u128, Waiters>>,
    jobs: Mutex<HashMap<JobId, Job>>,
    queue: Mutex<VecDeque<WorkUnit>>,
    available: Condvar,
    stop: AtomicBool,
    next_job: AtomicU64,
    workers: usize,
}

/// The engine: owns the cache, the jobs, and the worker pool. Cheap to
/// share (`Engine::handle`); [`shutdown`](Engine::shutdown) joins the pool.
pub struct Engine {
    inner: Arc<EngineInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Builds an engine with `workers` pool threads (defaulting to the
    /// sweep fan-out [`worker_count`]) over an in-memory or persisted
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates cache-log open errors.
    pub fn new(workers: Option<usize>, cache_path: Option<&Path>) -> io::Result<Self> {
        let cache = match cache_path {
            Some(p) => ResultCache::open(p)?,
            None => ResultCache::in_memory(),
        };
        let workers = workers.unwrap_or_else(worker_count).max(1);
        let inner = Arc::new(EngineInner {
            cache: Mutex::new(cache),
            in_flight: Mutex::new(HashMap::new()),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            workers,
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Self {
            inner,
            handles: Mutex::new(handles),
        })
    }

    /// Pool size.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Shards `spec` into per-cell units — one per `(config, replicate)`
    /// pair, starting with the replication policy's initial count — and
    /// enqueues them; returns the job id immediately (cells complete
    /// asynchronously; CI-targeted groups may grow by one replicate at a
    /// time until they converge or hit the seed cap).
    pub fn submit(&self, spec: SweepSpec) -> JobId {
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        let scenario = Arc::new(spec.scenario.clone());
        let initial = spec.replication.initial_count();
        let mut units: Vec<WorkUnit> = Vec::new();
        let mut unit_map: Vec<(usize, u32)> = Vec::new();
        for (config_idx, config) in spec.configs.iter().enumerate() {
            for replicate in 0..initial {
                unit_map.push((config_idx, replicate));
                units.push(WorkUnit {
                    job: id,
                    cell: units.len(),
                    config: config.clone(),
                    scenario: Arc::clone(&scenario),
                    insts: spec.insts,
                    seed: spec.seed,
                    replicate,
                });
            }
        }
        let job = Job {
            cells: vec![None; units.len()],
            units: unit_map,
            groups: spec
                .configs
                .iter()
                .map(|_| Group {
                    planned: initial,
                    converged: false,
                    saved: 0,
                })
                .collect(),
            // Only an explicit [compare] couples the pair's stopping rule
            // (a defaulted comparison over a plain spec is an aggregation
            // concern, not a scheduling one).
            pair: spec
                .compare
                .is_some()
                .then(|| spec.resolve_compare().ok())
                .flatten()
                .map(|r| (r.baseline, r.candidate, r.alpha)),
            scenario,
            spec,
            started: Instant::now(),
            wall_seconds: None,
        };
        {
            let mut jobs = self.inner.jobs.lock().expect("jobs lock");
            jobs.insert(id, job);
            let mut done: Vec<JobId> = jobs
                .iter()
                .filter(|(_, j)| j.done())
                .map(|(&k, _)| k)
                .collect();
            if done.len() > MAX_RETAINED_DONE {
                done.sort_unstable();
                for k in &done[..done.len() - MAX_RETAINED_DONE] {
                    jobs.remove(k);
                }
            }
        }
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            q.extend(units);
        }
        self.inner.available.notify_all();
        id
    }

    /// The current status of `job`, or `None` for an unknown id.
    pub fn job_status(&self, job: JobId) -> Option<JobStatus> {
        let jobs = self.inner.jobs.lock().expect("jobs lock");
        let j = jobs.get(&job)?;
        let simulated = j.count(Provenance::Simulated);
        let cached = j.count(Provenance::Cached);
        let coalesced = j.count(Provenance::Coalesced);
        let finished = simulated + cached + coalesced;
        Some(JobStatus {
            id: job,
            scenario: j.spec.scenario.name.clone(),
            state: if j.done() { "done" } else { "running" },
            cells: j.cells.len(),
            simulated,
            cached,
            coalesced,
            pending: j.cells.len() - finished,
            replicates_saved: j.replicates_saved() as usize,
            wall_seconds: j.wall_seconds,
        })
    }

    /// The finished job's report (same JSON schema as `malec-cli run`
    /// writes), or `None` for an unknown id, or `Some(Err(status))` while
    /// the job is still running.
    pub fn job_report(&self, job: JobId) -> Option<Result<String, JobStatus>> {
        let status = self.job_status(job)?;
        if status.state != "done" {
            return Some(Err(status));
        }
        let jobs = self.inner.jobs.lock().expect("jobs lock");
        let j = jobs.get(&job)?;
        // One report row per config group: replicate 0 carries the
        // single-seed columns (the legacy seed path), the stats block the
        // replicate distribution.
        let cells: Vec<CellResult> = (0..j.spec.configs.len())
            .map(|config_idx| {
                let reps = j
                    .group_replicates(config_idx)
                    .expect("job is done, every replicate finished");
                let cell = CellResult::from_generated((*reps[0]).clone());
                if j.spec.replication.replicated() {
                    let owned: Vec<RunSummary> = reps.iter().map(|s| (**s).clone()).collect();
                    cell.with_stats(ReplicateStats::from_replicates(
                        &owned,
                        j.spec.replication.seeds,
                    ))
                } else {
                    cell
                }
            })
            .collect();
        let spec_path = format!("job:{job}");
        let json = render(
            &ReportMeta {
                spec_path: &spec_path,
                scenario: &j.spec.scenario.name,
                segments: &j.spec.scenario.segment_labels(),
                mtr_path: &j.spec.mtr,
                insts: j.spec.insts,
                seed: j.spec.seed,
                seeds: j.spec.replication.seeds,
                workers: self.inner.workers,
                wall_seconds: j.wall_seconds.unwrap_or(0.0),
            },
            &cells,
        );
        Some(Ok(json))
    }

    /// The finished job's **paired comparison report** (the `malec-cli
    /// compare` JSON schema), assembled purely from the job's cache-keyed
    /// per-replicate cells — no simulation happens here, so a job served
    /// 100 % from cache compares for free. Pairs replicate `i` of the
    /// baseline group with replicate `i` of the candidate group (shared
    /// seed); the pairing comes from the spec's `[compare]` section or the
    /// default (Base1ldst vs MALEC at `alpha = 0.05`).
    ///
    /// Returns `None` for an unknown id; `Some(Err(..))` while the job is
    /// still running ([`CompareError::Running`]) or when the job cannot be
    /// compared ([`CompareError::NotComparable`] — pair not in the job's
    /// configs, or a single-seed sweep).
    pub fn job_compare(&self, job: JobId) -> Option<Result<String, CompareError>> {
        let status = self.job_status(job)?;
        if status.state != "done" {
            return Some(Err(CompareError::Running(status)));
        }
        let jobs = self.inner.jobs.lock().expect("jobs lock");
        let j = jobs.get(&job)?;
        let resolved = match j.spec.resolve_compare() {
            Ok(r) => r,
            Err(e) => return Some(Err(CompareError::NotComparable(e.to_string()))),
        };
        let owned = |config: usize| -> Vec<RunSummary> {
            j.group_replicates(config)
                .expect("job is done, every replicate finished")
                .iter()
                .map(|s| (**s).clone())
                .collect()
        };
        let base = owned(resolved.baseline);
        let cand = owned(resolved.candidate);
        let stats =
            CompareStats::from_pairs(&base, &cand, j.spec.replication.seeds, resolved.alpha);
        let spec_path = format!("job:{job}");
        let json = render_compare(
            &CompareReportMeta {
                spec_path: &spec_path,
                scenario: &j.spec.scenario.name,
                segments: &j.spec.scenario.segment_labels(),
                insts: j.spec.insts,
                seed: j.spec.seed,
                seeds: j.spec.replication.seeds,
                workers: self.inner.workers,
                wall_seconds: j.wall_seconds.unwrap_or(0.0),
            },
            &stats,
        );
        Some(Ok(json))
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().expect("cache lock").stats()
    }

    /// The cache-log path, if the cache is persisted.
    pub fn cache_path(&self) -> Option<std::path::PathBuf> {
        self.inner
            .cache
            .lock()
            .expect("cache lock")
            .path()
            .map(Path::to_owned)
    }

    /// Stops the pool after the current units finish and joins every
    /// worker. Queued-but-unstarted units are dropped; their jobs stay
    /// `running` forever, which only matters at process exit.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        let mut handles = self.handles.lock().expect("handles lock");
        for h in handles.drain(..) {
            // Report rather than re-panic: shutdown also runs from Drop,
            // and a panic inside Drop during unwinding aborts the process
            // with no diagnostic.
            if h.join().is_err() {
                eprintln!("malec-serve: a worker thread panicked; its cells stay unfinished");
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &EngineInner) {
    loop {
        let unit = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                match q.pop_front() {
                    Some(unit) => break unit,
                    None => q = inner.available.wait(q).expect("queue lock"),
                }
            }
        };
        process(inner, unit);
    }
}

/// What the claim step decided for one unit.
enum Claim {
    Hit(Arc<RunSummary>),
    Parked,
    Run,
}

fn process(inner: &EngineInner, unit: WorkUnit) {
    let key = cache_key(
        &unit.config,
        &unit.scenario,
        unit.insts,
        unit.seed,
        unit.replicate,
    );
    let claim = {
        // Lock order: cache before in_flight, here and in the completion
        // path below.
        let mut cache = inner.cache.lock().expect("cache lock");
        let mut in_flight = inner.in_flight.lock().expect("in_flight lock");
        match cache.lookup(key) {
            Some(summary) => Claim::Hit(summary),
            None => match in_flight.get_mut(&key) {
                Some(waiters) => {
                    waiters.push((unit.job, unit.cell));
                    cache.count_coalesced();
                    Claim::Parked
                }
                None => {
                    in_flight.insert(key, Vec::new());
                    cache.count_miss();
                    Claim::Run
                }
            },
        }
    };
    match claim {
        Claim::Hit(summary) => finish_cell(inner, unit.job, unit.cell, summary, Provenance::Cached),
        Claim::Parked => {}
        Claim::Run => {
            let summary = Simulator::new(unit.config.clone())
                .run_source(
                    &ScenarioSource::Scenario((*unit.scenario).clone()),
                    unit.insts,
                    replicate_seed(unit.seed, unit.replicate),
                )
                .expect("generator sources cannot fail");
            let summary = Arc::new(summary);
            let (waiters, appender) = {
                let mut cache = inner.cache.lock().expect("cache lock");
                let mut in_flight = inner.in_flight.lock().expect("in_flight lock");
                cache.insert(key, Arc::clone(&summary));
                (in_flight.remove(&key).unwrap_or_default(), cache.appender())
            };
            // Persist outside the map/in-flight locks: a disk flush must
            // not block concurrent claim steps. The key is already resident
            // in memory, so no other worker can race this append.
            if let Some(appender) = appender {
                match appender.append(key, &summary) {
                    Ok(bytes) => inner.cache.lock().expect("cache lock").note_appended(bytes),
                    // The in-memory entry took effect; losing persistence
                    // costs warm restarts, not correctness.
                    Err(e) => eprintln!("malec-serve: cache append failed: {e}"),
                }
            }
            finish_cell(
                inner,
                unit.job,
                unit.cell,
                Arc::clone(&summary),
                Provenance::Simulated,
            );
            for (job, cell) in waiters {
                finish_cell(
                    inner,
                    job,
                    cell,
                    Arc::clone(&summary),
                    Provenance::Coalesced,
                );
            }
        }
    }
}

fn finish_cell(
    inner: &EngineInner,
    job: JobId,
    cell: usize,
    summary: Arc<RunSummary>,
    provenance: Provenance,
) {
    let new_units = {
        let mut jobs = inner.jobs.lock().expect("jobs lock");
        let Some(j) = jobs.get_mut(&job) else {
            return;
        };
        j.cells[cell] = Some((summary, provenance));
        let (config_idx, _) = j.units[cell];
        let new_units = extend_after_finish(j, job, config_idx);
        if j.done() && j.wall_seconds.is_none() {
            j.wall_seconds = Some(j.started.elapsed().as_secs_f64());
        }
        new_units
    };
    // Enqueue outside the jobs lock (lock order everywhere: jobs before
    // queue is never held; queue is only ever taken alone).
    if !new_units.is_empty() {
        let mut q = inner.queue.lock().expect("queue lock");
        q.extend(new_units);
        drop(q);
        inner.available.notify_all();
    }
}

/// Replication step after one cell of `config_idx` finished. Groups paired
/// by an explicit `[compare]` section route to [`extend_pair`] (the paired
/// delta is their stopping criterion); every other group keeps the
/// marginal rule of [`extend_group`].
fn extend_after_finish(j: &mut Job, job: JobId, config_idx: usize) -> Vec<WorkUnit> {
    if let Some((b, c, alpha)) = j.pair {
        if config_idx == b || config_idx == c {
            return extend_pair(j, job, b, c, alpha);
        }
    }
    extend_group(j, job, config_idx).into_iter().collect()
}

/// Marginal replication step for one config group: once every planned
/// replicate has finished, either certify convergence (CI target met, or
/// the seed cap reached) or grow the group by exactly one replicate.
/// Growing one at a time makes the final count the smallest prefix
/// satisfying the policy — the same count a serial driver picks.
fn extend_group(j: &mut Job, job: JobId, config_idx: usize) -> Option<WorkUnit> {
    let rep = j.spec.replication;
    if j.groups[config_idx].converged {
        return None;
    }
    let replicates = j.group_replicates(config_idx)?;
    if rep.converged(replicates.iter().map(Arc::as_ref)) {
        certify(j, job, config_idx);
        return None;
    }
    Some(push_unit(j, job, config_idx))
}

/// Paired replication step for the `[compare]` groups: once **both**
/// groups' planned replicates have finished, either certify joint
/// convergence (the paired-delta criterion of
/// [`malec_core::compare::paired_converged`] — the same pure prefix
/// function the local `paired_rounds` driver uses, so server and CLI stop
/// at identical counts) or grow *both* groups by one shared seed.
fn extend_pair(j: &mut Job, job: JobId, b: usize, c: usize, alpha: Alpha) -> Vec<WorkUnit> {
    let rep = j.spec.replication;
    if j.groups[b].converged || j.groups[c].converged {
        return Vec::new();
    }
    let (Some(base), Some(cand)) = (j.group_replicates(b), j.group_replicates(c)) else {
        return Vec::new(); // one side still has pending replicates
    };
    let n = base.len().min(cand.len());
    let pairs = (0..n).map(|i| (base[i].as_ref(), cand[i].as_ref()));
    if paired_converged(&rep, alpha, pairs) {
        certify(j, job, b);
        certify(j, job, c);
        return Vec::new();
    }
    vec![push_unit(j, job, b), push_unit(j, job, c)]
}

/// Marks one group converged and prices what the CI target saved.
fn certify(j: &mut Job, job: JobId, config_idx: usize) {
    let rep = j.spec.replication;
    let g = &mut j.groups[config_idx];
    g.converged = true;
    g.saved = rep.seeds.saturating_sub(g.planned);
    if g.saved > 0 {
        eprintln!(
            "malec-serve: job {job} `{}` converged after {}/{} replicates ({} saved)",
            j.spec.configs[config_idx].label(),
            g.planned,
            rep.seeds,
            g.saved,
        );
    }
}

/// Appends one more replicate slot to a group and builds its work unit.
fn push_unit(j: &mut Job, job: JobId, config_idx: usize) -> WorkUnit {
    let replicate = j.groups[config_idx].planned;
    j.groups[config_idx].planned += 1;
    j.units.push((config_idx, replicate));
    j.cells.push(None);
    WorkUnit {
        job,
        cell: j.cells.len() - 1,
        config: j.spec.configs[config_idx].clone(),
        scenario: Arc::clone(&j.scenario),
        insts: j.spec.insts,
        seed: j.spec.seed,
        replicate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;
    use std::time::Duration;

    const SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                        [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 2000\nseed = 5\n";

    fn wait_done(engine: &Engine, job: JobId) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let status = engine.job_status(job).expect("job exists");
            if status.state == "done" {
                return status;
            }
            assert!(Instant::now() < deadline, "job {job} never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn submit_runs_to_done_and_resubmit_is_fully_cached() {
        let engine = Engine::new(Some(2), None).expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let first = engine.submit(spec.clone());
        let status = wait_done(&engine, first);
        assert_eq!(status.cells, 2);
        assert_eq!(status.simulated, 2, "cold cache simulates everything");
        assert!(status.wall_seconds.is_some());

        let second = engine.submit(spec);
        let status = wait_done(&engine, second);
        assert_eq!(
            status.served_without_simulation(),
            status.cells,
            "an identical resubmission must not simulate anything"
        );
        assert_eq!(status.simulated, 0);
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.hits >= 2);
        engine.shutdown();
    }

    #[test]
    fn reports_are_identical_across_cache_paths() {
        let engine = Engine::new(Some(2), None).expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let a = engine.submit(spec.clone());
        wait_done(&engine, a);
        let b = engine.submit(spec);
        wait_done(&engine, b);
        let ra = engine.job_report(a).expect("known").expect("done");
        let rb = engine.job_report(b).expect("known").expect("done");
        // Same cells block bit for bit; only the job id and wall clock may
        // differ.
        let cells = |r: &str| r[r.find("\"cells\": [").expect("cells")..].to_owned();
        assert_eq!(cells(&ra), cells(&rb));
        engine.shutdown();
    }

    #[test]
    fn resubmission_with_more_seeds_only_simulates_the_new_replicates() {
        let engine = Engine::new(Some(2), None).expect("engine");
        let base = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                    [sweep]\nconfigs = [\"MALEC\"]\ninsts = 2000\nseed = 5\nseeds = ";
        let four = parse_spec(&format!("{base}4\n")).expect("spec");
        let eight = parse_spec(&format!("{base}8\n")).expect("spec");

        let first = engine.submit(four);
        let status = wait_done(&engine, first);
        assert_eq!(status.cells, 4, "1 config x 4 replicates");
        assert_eq!(status.simulated, 4);

        let second = engine.submit(eight);
        let status = wait_done(&engine, second);
        assert_eq!(status.cells, 8);
        assert_eq!(
            status.simulated, 4,
            "replicates 0-3 are cache hits; only 4-7 simulate"
        );
        assert_eq!(status.cached, 4);
        assert_eq!(engine.cache_stats().entries, 8);

        // The report carries replicate statistics for every cell group.
        let report = engine.job_report(second).expect("known").expect("done");
        assert!(report.contains("\"replicates\": 8"), "{report}");
        assert!(report.contains("\"metrics\""));
        engine.shutdown();
    }

    #[test]
    fn ci_target_stops_spawning_replicates_and_reports_the_savings() {
        let engine = Engine::new(Some(2), None).expect("engine");
        // A generous 50% relative CI target converges at min_seeds for any
        // sane workload, saving the rest of the 16-seed budget.
        let spec = parse_spec(
            "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
             [sweep]\nconfigs = [\"MALEC\"]\ninsts = 2000\nseed = 5\n\
             seeds = 16\nmin_seeds = 3\nci_target = 0.5\n",
        )
        .expect("spec");
        let job = engine.submit(spec);
        let status = wait_done(&engine, job);
        assert!(
            status.cells < 16,
            "early stopping must cut the replicate count, got {}",
            status.cells
        );
        assert!(status.cells >= 3, "never below min_seeds");
        assert_eq!(
            status.replicates_saved,
            16 - status.cells,
            "savings are reported"
        );
        let report = engine.job_report(job).expect("known").expect("done");
        assert!(
            report.contains(&format!(
                "\"replicates_saved\": {}",
                status.replicates_saved
            )),
            "{report}"
        );
        engine.shutdown();
    }

    #[test]
    fn unknown_job_is_none_and_running_report_is_err() {
        let engine = Engine::new(Some(1), None).expect("engine");
        assert!(engine.job_status(999).is_none());
        assert!(engine.job_report(999).is_none());
        assert!(engine.job_compare(999).is_none());
        engine.shutdown();
    }

    #[test]
    fn compare_reports_assemble_from_replicate_cells_and_match_local_pairing() {
        use malec_core::compare::{compare_digest, Alpha, CompareStats};
        let engine = Engine::new(Some(2), None).expect("engine");
        let spec = parse_spec(
            "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
             [compare]\nbaseline = \"Base1ldst\"\ncandidate = \"MALEC\"\n\
             [sweep]\ninsts = 2000\nseed = 5\nseeds = 4\n",
        )
        .expect("spec");
        let job = engine.submit(spec.clone());
        let status = wait_done(&engine, job);
        assert_eq!(status.cells, 8, "2 configs x 4 shared seeds");
        let report = engine.job_compare(job).expect("known").expect("done");
        assert!(report.contains("\"bench\": \"malec_compare\""), "{report}");
        assert!(report.contains("\"verdict\""));

        // The served digest equals a locally assembled pairing over the
        // same seeds — the endpoint is pure aggregation, no simulation.
        use malec_core::stats::replicate_seed;
        use malec_core::{ScenarioSource, Simulator};
        let source = ScenarioSource::Scenario(spec.scenario.clone());
        let runs = |cfg: &malec_types::SimConfig| -> Vec<malec_core::RunSummary> {
            (0..4)
                .map(|r| {
                    Simulator::new(cfg.clone())
                        .run_source(&source, spec.insts, replicate_seed(spec.seed, r))
                        .expect("generator sources cannot fail")
                })
                .collect()
        };
        let stats = CompareStats::from_pairs(
            &runs(&spec.configs[0]),
            &runs(&spec.configs[1]),
            4,
            Alpha::Five,
        );
        assert!(
            report.contains(&format!("{:#018x}", compare_digest(&stats))),
            "served deltas must be bit-identical to the local pairing"
        );
        engine.shutdown();
    }

    #[test]
    fn paired_ci_target_stops_both_groups_jointly() {
        let engine = Engine::new(Some(3), None).expect("engine");
        let spec = parse_spec(
            "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
             [compare]\n\
             [sweep]\ninsts = 2000\nseed = 5\nseeds = 16\nmin_seeds = 3\nci_target = 0.5\n",
        )
        .expect("spec");
        let job = engine.submit(spec);
        let status = wait_done(&engine, job);
        assert!(
            status.cells < 32,
            "paired early stopping must cut the pair count, got {}",
            status.cells
        );
        assert_eq!(
            status.cells % 2,
            0,
            "the pair grows jointly: both sides always hold the same count"
        );
        assert!(status.cells >= 6, "never below min_seeds per side");
        let report = engine.job_compare(job).expect("known").expect("done");
        let n = status.cells / 2;
        assert!(report.contains(&format!("\"replicates\": {n}")), "{report}");
        assert!(report.contains(&format!("\"replicates_saved\": {}", 16 - n)));
        engine.shutdown();
    }

    #[test]
    fn single_seed_jobs_are_not_comparable() {
        let engine = Engine::new(Some(1), None).expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let job = engine.submit(spec);
        wait_done(&engine, job);
        match engine.job_compare(job) {
            Some(Err(CompareError::NotComparable(msg))) => {
                assert!(msg.contains("`seeds` >= 2"), "{msg}");
            }
            other => panic!("expected NotComparable, got {other:?}"),
        }
        engine.shutdown();
    }
}
