//! The batch engine: a job queue feeding a persistent worker pool, fused
//! with the content-addressed [`ResultCache`].
//!
//! [`Engine::submit`] shards one [`SweepSpec`] into per-cell work units
//! (one unit per configuration; the scenario, horizon and seed are shared)
//! and enqueues them. A fixed pool of worker threads — sized like
//! [`malec_core::parallel`]'s fan-out, but *persistent* across jobs instead
//! of scoped per call — drains the queue. For each unit a worker:
//!
//! 1. looks the cell's [`cache_key`] up: a **hit** finishes the cell with
//!    the stored summary, zero simulation;
//! 2. otherwise checks the **in-flight** table: if an identical cell is
//!    already simulating (a concurrent overlapping job), the unit parks as
//!    a waiter and is finished by whoever simulates it — the cache answers
//!    `N` concurrent identical submissions with **one** simulation;
//! 3. otherwise claims the key, simulates, inserts the summary into the
//!    cache (persisting it), and finishes the cell plus every parked
//!    waiter.
//!
//! Everything a worker produces is deterministic, so a cell served from
//! cache, from a waiter hand-off, or from a fresh simulation is
//! bit-identical — the job report cannot tell (and records which path each
//! cell took anyway, for the cache-stats endpoint and the acceptance
//! tests).

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use malec_core::parallel::worker_count;
use malec_core::{RunSummary, ScenarioSource, Simulator};
use malec_trace::Scenario;
use malec_types::SimConfig;

use crate::cache::{cache_key, CacheStats, ResultCache};
use crate::report::{render, CellResult};
use crate::spec::SweepSpec;

/// Server-side job identifier.
pub type JobId = u64;

/// Finished jobs retained for status/report queries. Beyond this, the
/// oldest finished jobs are evicted at submit time (their results stay in
/// the cache; only the per-job bookkeeping goes), so a long-lived server's
/// memory is bounded by its workload, not its uptime. Evicted ids answer
/// like unknown ids.
const MAX_RETAINED_DONE: usize = 256;

/// How a finished cell got its summary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Freshly simulated by a pool worker.
    Simulated,
    /// Served from the result cache without simulating.
    Cached,
    /// Attached to a concurrent identical simulation (no own simulation).
    Coalesced,
}

/// One schedulable cell.
struct WorkUnit {
    job: JobId,
    cell: usize,
    config: SimConfig,
    scenario: Arc<Scenario>,
    insts: u64,
    seed: u64,
}

/// One submitted spec and its per-cell progress.
struct Job {
    spec: SweepSpec,
    cells: Vec<Option<(Arc<RunSummary>, Provenance)>>,
    started: Instant,
    wall_seconds: Option<f64>,
}

impl Job {
    fn done(&self) -> bool {
        self.cells.iter().all(Option::is_some)
    }

    fn count(&self, p: Provenance) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, Some((_, q)) if *q == p))
            .count()
    }
}

/// A point-in-time view of one job, served by `GET /v1/jobs/<id>`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: JobId,
    /// Scenario name of the submitted spec.
    pub scenario: String,
    /// `"running"` or `"done"`.
    pub state: &'static str,
    /// Total cells.
    pub cells: usize,
    /// Cells finished by a fresh simulation.
    pub simulated: usize,
    /// Cells served from the result cache.
    pub cached: usize,
    /// Cells that attached to a concurrent identical simulation.
    pub coalesced: usize,
    /// Cells still queued or simulating.
    pub pending: usize,
    /// Wall-clock seconds from submit to completion (`None` while
    /// running).
    pub wall_seconds: Option<f64>,
}

impl JobStatus {
    /// Cells that completed without a simulation of their own.
    pub fn served_without_simulation(&self) -> usize {
        self.cached + self.coalesced
    }
}

/// Waiters parked on an in-flight simulation.
type Waiters = Vec<(JobId, usize)>;

struct EngineInner {
    cache: Mutex<ResultCache>,
    /// Cells currently simulating, with the units parked on each.
    in_flight: Mutex<HashMap<u128, Waiters>>,
    jobs: Mutex<HashMap<JobId, Job>>,
    queue: Mutex<VecDeque<WorkUnit>>,
    available: Condvar,
    stop: AtomicBool,
    next_job: AtomicU64,
    workers: usize,
}

/// The engine: owns the cache, the jobs, and the worker pool. Cheap to
/// share (`Engine::handle`); [`shutdown`](Engine::shutdown) joins the pool.
pub struct Engine {
    inner: Arc<EngineInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Builds an engine with `workers` pool threads (defaulting to the
    /// sweep fan-out [`worker_count`]) over an in-memory or persisted
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates cache-log open errors.
    pub fn new(workers: Option<usize>, cache_path: Option<&Path>) -> io::Result<Self> {
        let cache = match cache_path {
            Some(p) => ResultCache::open(p)?,
            None => ResultCache::in_memory(),
        };
        let workers = workers.unwrap_or_else(worker_count).max(1);
        let inner = Arc::new(EngineInner {
            cache: Mutex::new(cache),
            in_flight: Mutex::new(HashMap::new()),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            workers,
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Self {
            inner,
            handles: Mutex::new(handles),
        })
    }

    /// Pool size.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Shards `spec` into per-cell units and enqueues them; returns the job
    /// id immediately (cells complete asynchronously).
    pub fn submit(&self, spec: SweepSpec) -> JobId {
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        let scenario = Arc::new(spec.scenario.clone());
        let units: Vec<WorkUnit> = spec
            .configs
            .iter()
            .enumerate()
            .map(|(cell, config)| WorkUnit {
                job: id,
                cell,
                config: config.clone(),
                scenario: Arc::clone(&scenario),
                insts: spec.insts,
                seed: spec.seed,
            })
            .collect();
        let job = Job {
            cells: vec![None; spec.configs.len()],
            spec,
            started: Instant::now(),
            wall_seconds: None,
        };
        {
            let mut jobs = self.inner.jobs.lock().expect("jobs lock");
            jobs.insert(id, job);
            let mut done: Vec<JobId> = jobs
                .iter()
                .filter(|(_, j)| j.done())
                .map(|(&k, _)| k)
                .collect();
            if done.len() > MAX_RETAINED_DONE {
                done.sort_unstable();
                for k in &done[..done.len() - MAX_RETAINED_DONE] {
                    jobs.remove(k);
                }
            }
        }
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            q.extend(units);
        }
        self.inner.available.notify_all();
        id
    }

    /// The current status of `job`, or `None` for an unknown id.
    pub fn job_status(&self, job: JobId) -> Option<JobStatus> {
        let jobs = self.inner.jobs.lock().expect("jobs lock");
        let j = jobs.get(&job)?;
        let simulated = j.count(Provenance::Simulated);
        let cached = j.count(Provenance::Cached);
        let coalesced = j.count(Provenance::Coalesced);
        let finished = simulated + cached + coalesced;
        Some(JobStatus {
            id: job,
            scenario: j.spec.scenario.name.clone(),
            state: if j.done() { "done" } else { "running" },
            cells: j.cells.len(),
            simulated,
            cached,
            coalesced,
            pending: j.cells.len() - finished,
            wall_seconds: j.wall_seconds,
        })
    }

    /// The finished job's report (same JSON schema as `malec-cli run`
    /// writes), or `None` for an unknown id, or `Some(Err(status))` while
    /// the job is still running.
    pub fn job_report(&self, job: JobId) -> Option<Result<String, JobStatus>> {
        let status = self.job_status(job)?;
        if status.state != "done" {
            return Some(Err(status));
        }
        let jobs = self.inner.jobs.lock().expect("jobs lock");
        let j = jobs.get(&job)?;
        let cells: Vec<CellResult> = j
            .cells
            .iter()
            .map(|c| {
                let (summary, _) = c.as_ref().expect("job is done");
                CellResult::from_generated((**summary).clone())
            })
            .collect();
        let json = render(
            &format!("job:{job}"),
            &j.spec.scenario.name,
            &j.spec.scenario.segment_labels(),
            &j.spec.mtr,
            j.spec.insts,
            j.spec.seed,
            self.inner.workers,
            j.wall_seconds.unwrap_or(0.0),
            &cells,
        );
        Some(Ok(json))
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().expect("cache lock").stats()
    }

    /// The cache-log path, if the cache is persisted.
    pub fn cache_path(&self) -> Option<std::path::PathBuf> {
        self.inner
            .cache
            .lock()
            .expect("cache lock")
            .path()
            .map(Path::to_owned)
    }

    /// Stops the pool after the current units finish and joins every
    /// worker. Queued-but-unstarted units are dropped; their jobs stay
    /// `running` forever, which only matters at process exit.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        let mut handles = self.handles.lock().expect("handles lock");
        for h in handles.drain(..) {
            // Report rather than re-panic: shutdown also runs from Drop,
            // and a panic inside Drop during unwinding aborts the process
            // with no diagnostic.
            if h.join().is_err() {
                eprintln!("malec-serve: a worker thread panicked; its cells stay unfinished");
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &EngineInner) {
    loop {
        let unit = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                match q.pop_front() {
                    Some(unit) => break unit,
                    None => q = inner.available.wait(q).expect("queue lock"),
                }
            }
        };
        process(inner, unit);
    }
}

/// What the claim step decided for one unit.
enum Claim {
    Hit(Arc<RunSummary>),
    Parked,
    Run,
}

fn process(inner: &EngineInner, unit: WorkUnit) {
    let key = cache_key(&unit.config, &unit.scenario, unit.insts, unit.seed);
    let claim = {
        // Lock order: cache before in_flight, here and in the completion
        // path below.
        let mut cache = inner.cache.lock().expect("cache lock");
        let mut in_flight = inner.in_flight.lock().expect("in_flight lock");
        match cache.lookup(key) {
            Some(summary) => Claim::Hit(summary),
            None => match in_flight.get_mut(&key) {
                Some(waiters) => {
                    waiters.push((unit.job, unit.cell));
                    cache.count_coalesced();
                    Claim::Parked
                }
                None => {
                    in_flight.insert(key, Vec::new());
                    cache.count_miss();
                    Claim::Run
                }
            },
        }
    };
    match claim {
        Claim::Hit(summary) => finish_cell(inner, unit.job, unit.cell, summary, Provenance::Cached),
        Claim::Parked => {}
        Claim::Run => {
            let summary = Simulator::new(unit.config.clone())
                .run_source(
                    &ScenarioSource::Scenario((*unit.scenario).clone()),
                    unit.insts,
                    unit.seed,
                )
                .expect("generator sources cannot fail");
            let summary = Arc::new(summary);
            let (waiters, appender) = {
                let mut cache = inner.cache.lock().expect("cache lock");
                let mut in_flight = inner.in_flight.lock().expect("in_flight lock");
                cache.insert(key, Arc::clone(&summary));
                (in_flight.remove(&key).unwrap_or_default(), cache.appender())
            };
            // Persist outside the map/in-flight locks: a disk flush must
            // not block concurrent claim steps. The key is already resident
            // in memory, so no other worker can race this append.
            if let Some(appender) = appender {
                match appender.append(key, &summary) {
                    Ok(bytes) => inner.cache.lock().expect("cache lock").note_appended(bytes),
                    // The in-memory entry took effect; losing persistence
                    // costs warm restarts, not correctness.
                    Err(e) => eprintln!("malec-serve: cache append failed: {e}"),
                }
            }
            finish_cell(
                inner,
                unit.job,
                unit.cell,
                Arc::clone(&summary),
                Provenance::Simulated,
            );
            for (job, cell) in waiters {
                finish_cell(
                    inner,
                    job,
                    cell,
                    Arc::clone(&summary),
                    Provenance::Coalesced,
                );
            }
        }
    }
}

fn finish_cell(
    inner: &EngineInner,
    job: JobId,
    cell: usize,
    summary: Arc<RunSummary>,
    provenance: Provenance,
) {
    let mut jobs = inner.jobs.lock().expect("jobs lock");
    let Some(j) = jobs.get_mut(&job) else {
        return;
    };
    j.cells[cell] = Some((summary, provenance));
    if j.done() && j.wall_seconds.is_none() {
        j.wall_seconds = Some(j.started.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;
    use std::time::Duration;

    const SPEC: &str = "[scenario]\nmode = \"preset\"\npreset = \"store_burst\"\n\
                        [sweep]\nconfigs = [\"Base1ldst\", \"MALEC\"]\ninsts = 2000\nseed = 5\n";

    fn wait_done(engine: &Engine, job: JobId) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let status = engine.job_status(job).expect("job exists");
            if status.state == "done" {
                return status;
            }
            assert!(Instant::now() < deadline, "job {job} never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn submit_runs_to_done_and_resubmit_is_fully_cached() {
        let engine = Engine::new(Some(2), None).expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let first = engine.submit(spec.clone());
        let status = wait_done(&engine, first);
        assert_eq!(status.cells, 2);
        assert_eq!(status.simulated, 2, "cold cache simulates everything");
        assert!(status.wall_seconds.is_some());

        let second = engine.submit(spec);
        let status = wait_done(&engine, second);
        assert_eq!(
            status.served_without_simulation(),
            status.cells,
            "an identical resubmission must not simulate anything"
        );
        assert_eq!(status.simulated, 0);
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.hits >= 2);
        engine.shutdown();
    }

    #[test]
    fn reports_are_identical_across_cache_paths() {
        let engine = Engine::new(Some(2), None).expect("engine");
        let spec = parse_spec(SPEC).expect("spec");
        let a = engine.submit(spec.clone());
        wait_done(&engine, a);
        let b = engine.submit(spec);
        wait_done(&engine, b);
        let ra = engine.job_report(a).expect("known").expect("done");
        let rb = engine.job_report(b).expect("known").expect("done");
        // Same cells block bit for bit; only the job id and wall clock may
        // differ.
        let cells = |r: &str| r[r.find("\"cells\": [").expect("cells")..].to_owned();
        assert_eq!(cells(&ra), cells(&rb));
        engine.shutdown();
    }

    #[test]
    fn unknown_job_is_none_and_running_report_is_err() {
        let engine = Engine::new(Some(1), None).expect("engine");
        assert!(engine.job_status(999).is_none());
        assert!(engine.job_report(999).is_none());
        engine.shutdown();
    }
}
