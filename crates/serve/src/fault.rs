//! Deterministic fault injection: named failpoints armed on a schedule.
//!
//! Every failure test in this workspace must be **reproducible** — the same
//! discipline the golden digests impose on results applies to crashes. A
//! [`Faults`] registry holds named failpoints (compiled into the serving
//! code at the exact sites that can fail in production); each point counts
//! how many times execution reaches it, and an armed schedule fires an
//! action at exact hit counts. Disarmed (the default, and the only state a
//! production binary ever sees unless the operator sets `MALEC_FAULTS`),
//! a failpoint is one mutex-free atomic check.
//!
//! The failpoints, and what firing them does:
//!
//! | name                | action             | site                                   |
//! |---------------------|--------------------|----------------------------------------|
//! | `worker.panic`      | panic              | inside a worker's per-cell simulation  |
//! | `worker.loop.panic` | panic              | worker loop, outside the per-cell guard|
//! | `cache.append.torn` | torn write (`:N` keeps N bytes) | the cache-log append      |
//! | `cache.compact.torn`| torn rewrite (`:N` keeps N records) | the compaction temp file |
//! | `cache.sync.stall`  | sleep (`:N` ms)    | mid-stream in `/v1/cache/sync`         |
//! | `engine.cell.slow`  | sleep (`:N` ms)    | before a cell simulates                |
//! | `http.read.stall`   | sleep (`:N` ms)    | before the server reads a request      |
//! | `http.respond.500`  | reply `500`        | before the server routes a request     |
//!
//! Schedules are written `name@hit[:param]`, separated by `;`:
//!
//! ```text
//! MALEC_FAULTS="worker.panic@2;cache.append.torn@3:7;http.respond.500@1"
//! ```
//!
//! fires a panic at the **second** cell simulation, tears the **third**
//! cache append down to 7 bytes, and answers the **first** HTTP request
//! with a 500. Hit counts are 1-based and exact: the schedule fires once
//! per entry, then the point goes quiet again — so a retrying client
//! converges, and a test can assert `fired()` counts afterwards.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::sync::lock;

/// The environment variable [`Faults::from_env`] reads.
pub const FAULTS_ENV: &str = "MALEC_FAULTS";

/// What a fired failpoint does at its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with an "injected" message (caught by the worker guards).
    Panic,
    /// Truncate the write to the first `keep` bytes of the record.
    Torn {
        /// Bytes of the record that reach the file before the "crash".
        keep: u64,
    },
    /// Sleep for `ms` milliseconds before proceeding.
    Delay {
        /// Stall length in milliseconds.
        ms: u64,
    },
    /// Answer the request with a `500` instead of routing it.
    Error,
}

/// One schedule entry: fire `action` at the `at`-th hit (1-based).
#[derive(Clone, Copy, Debug)]
struct Trigger {
    at: u64,
    action: FaultAction,
    fired: bool,
}

#[derive(Debug, Default)]
struct Point {
    hits: u64,
    fired: u64,
    triggers: Vec<Trigger>,
}

/// A failpoint registry. Instance-scoped (each [`Engine`] owns one), so
/// parallel tests arming different schedules never interfere; a disarmed
/// registry costs one relaxed atomic load per check.
///
/// [`Engine`]: crate::scheduler::Engine
#[derive(Debug, Default)]
pub struct Faults {
    armed: AtomicBool,
    points: Mutex<HashMap<String, Point>>,
}

/// A malformed schedule string.
#[derive(Clone, Debug)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FaultParseError {}

/// The failpoint names the serving code compiles in. Arming any other name
/// is a schedule typo and is rejected loudly.
pub const KNOWN_POINTS: &[&str] = &[
    "worker.panic",
    "worker.loop.panic",
    "cache.append.torn",
    "cache.compact.torn",
    "cache.sync.stall",
    "engine.cell.slow",
    "http.read.stall",
    "http.respond.500",
];

/// The action kind a failpoint name implies (its `:param` meaning).
fn default_action(name: &str, param: Option<u64>) -> Option<FaultAction> {
    match name {
        "worker.panic" | "worker.loop.panic" => Some(FaultAction::Panic),
        "cache.append.torn" => Some(FaultAction::Torn {
            keep: param.unwrap_or(4),
        }),
        // For the compaction rewrite, `keep` counts complete RECORDS let
        // through before the tear (the torn half-record follows), not
        // bytes — a rewrite "crashes" at a record granularity.
        "cache.compact.torn" => Some(FaultAction::Torn {
            keep: param.unwrap_or(1),
        }),
        "engine.cell.slow" | "http.read.stall" | "cache.sync.stall" => Some(FaultAction::Delay {
            ms: param.unwrap_or(50),
        }),
        "http.respond.500" => Some(FaultAction::Error),
        _ => None,
    }
}

impl Faults {
    /// A disarmed registry (the production default).
    pub fn disarmed() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Parses a `name@hit[:param];...` schedule into an armed registry.
    ///
    /// # Errors
    ///
    /// Rejects unknown failpoint names, missing/zero hit counts, and
    /// non-numeric fields — a typo'd schedule must fail loudly, not
    /// silently test nothing.
    pub fn parse(schedule: &str) -> Result<Arc<Self>, FaultParseError> {
        let faults = Self::default();
        for entry in schedule.split(';').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (name, rest) = entry.split_once('@').ok_or_else(|| {
                FaultParseError(format!(
                    "fault entry `{entry}` lacks `@hit` (want name@hit[:param])"
                ))
            })?;
            let (hit_text, param) = match rest.split_once(':') {
                Some((h, p)) => {
                    let p: u64 = p.parse().map_err(|_| {
                        FaultParseError(format!("fault entry `{entry}`: bad param `{p}`"))
                    })?;
                    (h, Some(p))
                }
                None => (rest, None),
            };
            let at: u64 = hit_text.parse().map_err(|_| {
                FaultParseError(format!("fault entry `{entry}`: bad hit count `{hit_text}`"))
            })?;
            if at == 0 {
                return Err(FaultParseError(format!(
                    "fault entry `{entry}`: hit counts are 1-based (first hit = 1)"
                )));
            }
            let action = default_action(name, param).ok_or_else(|| {
                FaultParseError(format!(
                    "unknown failpoint `{name}` (known: {})",
                    KNOWN_POINTS.join(", ")
                ))
            })?;
            faults.arm_action(name, at, action);
        }
        Ok(Arc::new(faults))
    }

    /// Builds a registry from the `MALEC_FAULTS` environment variable
    /// (disarmed when unset or empty).
    ///
    /// # Errors
    ///
    /// Propagates [`parse`](Self::parse) errors for a set-but-malformed
    /// schedule.
    pub fn from_env() -> Result<Arc<Self>, FaultParseError> {
        match std::env::var(FAULTS_ENV) {
            Ok(s) if !s.trim().is_empty() => Self::parse(&s),
            _ => Ok(Self::disarmed()),
        }
    }

    /// Arms `name` to fire its default action at the `at`-th hit
    /// (1-based). `param` is the action's knob (torn bytes kept, stall
    /// milliseconds); ignored by parameterless points.
    ///
    /// # Panics
    ///
    /// Panics on a name outside [`KNOWN_POINTS`] — tests arming a
    /// nonexistent site would otherwise silently test nothing.
    pub fn arm(&self, name: &str, at: u64, param: Option<u64>) {
        let action =
            default_action(name, param).unwrap_or_else(|| panic!("unknown failpoint `{name}`"));
        self.arm_action(name, at, action);
    }

    fn arm_action(&self, name: &str, at: u64, action: FaultAction) {
        let mut points = lock(&self.points);
        points
            .entry(name.to_owned())
            .or_default()
            .triggers
            .push(Trigger {
                at,
                action,
                fired: false,
            });
        self.armed.store(true, Ordering::Release);
    }

    /// Evaluates the failpoint `name`: counts the hit and returns the
    /// scheduled action if this exact hit is armed. The caller performs
    /// the action (panicking, tearing a write, sleeping) **at its own
    /// site** — the registry only decides *when*.
    pub fn check(&self, name: &str) -> Option<FaultAction> {
        if !self.armed.load(Ordering::Acquire) {
            return None;
        }
        let mut points = lock(&self.points);
        let point = points.get_mut(name)?;
        point.hits += 1;
        let hit = point.hits;
        let trigger = point
            .triggers
            .iter_mut()
            .find(|t| !t.fired && t.at == hit)?;
        trigger.fired = true;
        point.fired += 1;
        Some(trigger.action)
    }

    /// [`check`](Self::check), performing `Delay` actions in place (the
    /// common case for stall-style points).
    pub fn check_delay(&self, name: &str) {
        if let Some(FaultAction::Delay { ms }) = self.check(name) {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    /// How many times `name` has fired (0 for unknown or disarmed points).
    pub fn fired(&self, name: &str) -> u64 {
        lock(&self.points).get(name).map_or(0, |p| p.fired)
    }

    /// How many times `name` has been evaluated.
    pub fn hits(&self, name: &str) -> u64 {
        lock(&self.points).get(name).map_or(0, |p| p.hits)
    }

    /// Total fires across every point (the healthz endpoint reports it).
    pub fn fired_total(&self) -> u64 {
        lock(&self.points).values().map(|p| p.fired).sum()
    }

    /// Whether every armed trigger has fired — a chaos test's "the whole
    /// schedule actually happened" assertion.
    pub fn exhausted(&self) -> bool {
        lock(&self.points)
            .values()
            .all(|p| p.triggers.iter().all(|t| t.fired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_registry_never_fires() {
        let f = Faults::disarmed();
        for _ in 0..100 {
            assert_eq!(f.check("worker.panic"), None);
        }
        assert_eq!(f.fired_total(), 0);
        // Disarmed points do not even count hits (the fast path skips the
        // map entirely).
        assert_eq!(f.hits("worker.panic"), 0);
    }

    #[test]
    fn fires_at_the_exact_hit_count_once() {
        let f = Faults::disarmed();
        f.arm("worker.panic", 3, None);
        assert_eq!(f.check("worker.panic"), None);
        assert_eq!(f.check("worker.panic"), None);
        assert_eq!(f.check("worker.panic"), Some(FaultAction::Panic));
        assert_eq!(f.check("worker.panic"), None, "fires exactly once");
        assert_eq!(f.fired("worker.panic"), 1);
        assert_eq!(f.hits("worker.panic"), 4);
        assert!(f.exhausted());
    }

    #[test]
    fn parses_schedules_with_params() {
        let f = Faults::parse("worker.panic@2; cache.append.torn@1:9;engine.cell.slow@4:120")
            .expect("parses");
        assert_eq!(
            f.check("cache.append.torn"),
            Some(FaultAction::Torn { keep: 9 })
        );
        assert_eq!(f.check("worker.panic"), None);
        assert_eq!(f.check("worker.panic"), Some(FaultAction::Panic));
        for _ in 0..3 {
            assert_eq!(f.check("engine.cell.slow"), None);
        }
        assert_eq!(
            f.check("engine.cell.slow"),
            Some(FaultAction::Delay { ms: 120 })
        );
        assert!(f.exhausted());
        assert_eq!(f.fired_total(), 3);
    }

    #[test]
    fn multiple_triggers_on_one_point() {
        let f = Faults::parse("http.respond.500@1;http.respond.500@2").expect("parses");
        assert_eq!(f.check("http.respond.500"), Some(FaultAction::Error));
        assert_eq!(f.check("http.respond.500"), Some(FaultAction::Error));
        assert_eq!(f.check("http.respond.500"), None);
        assert_eq!(f.fired("http.respond.500"), 2);
    }

    #[test]
    fn rejects_malformed_schedules() {
        for (bad, needle) in [
            ("worker.panic", "lacks `@hit`"),
            ("worker.panic@x", "bad hit count"),
            ("worker.panic@0", "1-based"),
            ("cache.append.torn@1:z", "bad param"),
            ("no.such.point@1", "unknown failpoint"),
        ] {
            let e = Faults::parse(bad).expect_err(bad);
            assert!(e.to_string().contains(needle), "`{e}` lacks `{needle}`");
        }
    }

    #[test]
    fn empty_schedule_is_disarmed() {
        let f = Faults::parse("  ").expect("parses");
        assert_eq!(f.check("worker.panic"), None);
        assert!(f.exhausted(), "nothing armed, trivially exhausted");
    }
}
